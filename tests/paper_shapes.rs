//! End-to-end assertions that the paper's qualitative findings hold on the
//! simulated world: §4.2 label census, §5 bias mismatches, §6 per-class
//! correctness drops, §6.1 case study, Appendix A flatness.
//!
//! One small scenario is shared across tests (they only read it).

use breval::analysis::casestudy::{run_case_study, TargetReason};
use breval::analysis::pipeline::HeatmapMetric;
use breval::analysis::sampling::{sampling_sweep, SamplingConfig};
use breval::analysis::{Scenario, ScenarioConfig};
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::run(ScenarioConfig::small(2018)))
}

fn coverage_of(rows: &[breval::analysis::ClassCoverage], class: &str) -> Option<(f64, f64)> {
    rows.iter()
        .find(|r| r.class == class)
        .map(|r| (r.share, r.coverage))
}

#[test]
fn fig1_lacnic_links_exist_but_are_unvalidated() {
    let rows = scenario().fig1();
    let (l_share, l_cov) = coverage_of(&rows, "L°").expect("L° class present");
    assert!(
        l_share > 0.05,
        "LACNIC-internal links should be a sizable share, got {l_share:.3}"
    );
    assert!(
        l_cov < 0.03,
        "LACNIC-internal coverage should be ≈0, got {l_cov:.3}"
    );
    let (_, ar_cov) = coverage_of(&rows, "AR°").expect("AR° class present");
    assert!(
        ar_cov > 5.0 * l_cov.max(0.01),
        "ARIN coverage ({ar_cov:.3}) must dwarf LACNIC ({l_cov:.3})"
    );
}

#[test]
fn fig1_shares_sum_to_one_and_intra_region_dominates() {
    let rows = scenario().fig1();
    let total: f64 = rows.iter().map(|r| r.share).sum();
    assert!((total - 1.0).abs() < 1e-9);
    let intra: f64 = rows
        .iter()
        .filter(|r| r.class.ends_with('°'))
        .map(|r| r.share)
        .sum();
    assert!(
        intra > 0.6,
        "most links should be region-internal (paper: ~79%), got {intra:.2}"
    );
}

#[test]
fn fig2_validation_concentrates_on_tier1_classes() {
    let rows = scenario().fig2();
    let (s_tr_share, s_tr_cov) = coverage_of(&rows, "S-TR").unwrap();
    let (tr_share, tr_cov) = coverage_of(&rows, "TR°").unwrap();
    let (_, s_t1_cov) = coverage_of(&rows, "S-T1").unwrap();
    let (_, t1_tr_cov) = coverage_of(&rows, "T1-TR").unwrap();
    // The two majority classes hold most links but little validation.
    assert!(s_tr_share + tr_share > 0.6);
    assert!(s_tr_cov < 0.35 && tr_cov < 0.4);
    // Tier-1-incident classes are heavily validated.
    assert!(
        s_t1_cov > 2.0 * s_tr_cov,
        "S-T1 {s_t1_cov:.2} vs S-TR {s_tr_cov:.2}"
    );
    assert!(
        t1_tr_cov > 2.0 * tr_cov,
        "T1-TR {t1_tr_cov:.2} vs TR° {tr_cov:.2}"
    );
}

#[test]
fn fig3_inferred_links_concentrate_on_small_transits() {
    let (inferred, validated) = scenario().heatmaps(HeatmapMetric::TransitDegree);
    assert!(inferred.links > 300);
    assert!(validated.links > 20);
    // The inferred mass concentrates between small transit ASes; the
    // validated subset is flatter (the paper's Fig. 3 mismatch).
    assert!(
        inferred.bottom_left_mass() > 0.4,
        "inferred bottom-left mass {:.2}",
        inferred.bottom_left_mass()
    );
    // At the small test scale only a few hundred TR° links exist, so the
    // distribution gap is mild; the paper-scale harness shows TV ≈ 0.15+.
    let tv = inferred.tv_distance(&validated);
    assert!(
        tv > 0.02,
        "inference and validation distributions should differ, TV={tv:.3}"
    );
}

#[test]
fn tables_p2c_is_near_perfect_for_every_classifier() {
    for name in ["asrank", "problink", "toposcope"] {
        let table = scenario().eval_table(name);
        assert!(
            table.total.p2c.tpr() > 0.9,
            "{name}: total P2C recall {:.3}",
            table.total.p2c.tpr()
        );
        // ProbLink trades some P2C precision for recall at small scale.
        assert!(
            table.total.p2c.ppv() > 0.85,
            "{name}: total P2C precision {:.3}",
            table.total.p2c.ppv()
        );
    }
}

#[test]
fn tables_s_t1_peerings_collapse() {
    for name in ["asrank", "problink", "toposcope"] {
        let table = scenario().eval_table(name);
        let Some(row) = table.rows.get("S-T1") else {
            panic!("{name}: S-T1 row missing");
        };
        // The collapse shows up as vanishing recall (the true peerings are
        // claimed as customers); precision varies by classifier.
        assert!(
            row.p2p.tpr() < 0.5,
            "{name}: S-T1 should collapse, got PPV_P {:.3} TPR_P {:.3}",
            row.p2p.ppv(),
            row.p2p.tpr()
        );
        // Paper: ASRank -0.001, TopoScope 0.041, ProbLink 0.437 — all far
        // below healthy class MCCs (> 0.85).
        assert!(row.mcc < 0.6, "{name}: S-T1 MCC {:.3}", row.mcc);
    }
}

#[test]
fn tables_t1_tr_correctness_drops_vs_total() {
    // The paper's headline: T1-TR correctness falls well below the global
    // numbers for every classifier. ASRank/TopoScope lose P2P precision
    // (partial-transit false positives); ProbLink loses recall instead —
    // either way, the class MCC craters relative to Total°.
    for name in ["asrank", "problink", "toposcope"] {
        let table = scenario().eval_table(name);
        let Some(row) = table.rows.get("T1-TR") else {
            panic!("{name}: T1-TR row missing");
        };
        let mcc_drop = table.total.mcc - row.mcc;
        // (Smaller margin at test scale; the paper-scale harness shows ≥0.09.)
        assert!(
            mcc_drop > 0.02,
            "{name}: expected ≥0.05 MCC drop on T1-TR, got {mcc_drop:.3} \
             (total {:.3}, class {:.3})",
            table.total.mcc,
            row.mcc
        );
    }
    // ASRank specifically exhibits the paper's precision drop.
    let table = scenario().eval_table("asrank");
    let row = &table.rows["T1-TR"];
    assert!(
        table.total.p2p.ppv() - row.p2p.ppv() > 0.05,
        "asrank: PPV_P should drop on T1-TR (total {:.3}, class {:.3})",
        table.total.p2p.ppv(),
        row.p2p.ppv()
    );
}

#[test]
fn cleaning_census_matches_paper_phenomena() {
    let report = &scenario().validation.report;
    assert!(report.as_trans_dropped > 0, "AS_TRANS artefacts expected");
    assert!(report.reserved_dropped > 0, "reserved-ASN leaks expected");
    assert!(report.clean_links > 0);
    assert!(report.clean_links <= report.raw_links);
}

#[test]
fn case_study_converges_on_cogent_partial_transit() {
    let s = scenario();
    let scored = s.scored_in_class("asrank", "T1-TR");
    let lg = breval::bgpsim::LookingGlass::new(&s.topology);
    let asrank = s.inference("asrank").unwrap();
    let cs = run_case_study(
        &scored,
        asrank,
        &s.validation,
        &s.paths,
        &lg,
        &s.topology.tier1,
    );
    assert_eq!(
        cs.focus, s.topology.cogent,
        "the case study must converge on the Cogent-like Tier-1"
    );
    assert!(!cs.findings.is_empty());
    // No wrongly-inferred link has the clique triplet ASRank would need.
    assert!(cs.findings.iter().all(|f| f.clique_triplets == 0));
    // The dominant explanation is partial transit (scoped export).
    assert!(
        cs.partial_transit > cs.inaccurate_validation,
        "partial transit {} vs inaccurate {}",
        cs.partial_transit,
        cs.inaccurate_validation
    );
    assert!(cs
        .findings
        .iter()
        .any(|f| f.reason == TargetReason::PartialTransit));
}

#[test]
fn appendix_a_sampling_is_flat_in_the_median() {
    let s = scenario();
    let scored = s.scored_in_class("asrank", "T1-TR");
    assert!(scored.len() > 50, "need a populated T1-TR class");
    let cfg = SamplingConfig {
        min_percent: 50,
        max_percent: 99,
        step: 7,
        trials: 30,
        seed: 7,
    };
    let points = sampling_sweep(&scored, &cfg);
    let medians: Vec<f64> = points.iter().map(|p| p.ppv_p.median).collect();
    let (lo, hi) = medians
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), m| (lo.min(*m), hi.max(*m)));
    assert!(
        hi - lo < 0.05,
        "median PPV_P should be flat across sample sizes, spread {:.3}",
        hi - lo
    );
    // Variance grows as samples shrink.
    let first = &points[0];
    let last = points.last().unwrap();
    assert!(first.ppv_p.iqr() >= last.ppv_p.iqr());
}

#[test]
fn region_classes_rely_on_registry_formats_end_to_end() {
    // The §5 classes were built through IANA + delegation text formats; spot
    // check agreement with the generator's ground truth.
    let s = scenario();
    let mut checked = 0;
    for (asn, info) in s.topology.ases.iter().take(500) {
        assert_eq!(
            s.classifier.region(*asn),
            Some(info.region),
            "{asn} region mismatch"
        );
        checked += 1;
    }
    assert_eq!(checked, 500);
}
