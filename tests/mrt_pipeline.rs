//! The byte-level round trip: simulate → MRT TABLE_DUMP_V2 → parse → infer.
//! A modern consumer gets the same inference as the in-memory pipeline; a
//! legacy consumer (ignoring AS4_PATH) sees AS_TRANS paths — the §4.2
//! spurious-label source.

use breval::asgraph::asn::AS_TRANS;
use breval::asinfer::{AsRank, Classifier};
use breval::bgpsim::snapshot::pathset_from_mrt;
use breval::topogen::{self, TopologyConfig};

#[test]
fn mrt_roundtrip_preserves_inference() {
    let topo = topogen::generate(&TopologyConfig::small(3));
    let snap = breval::bgpsim::simulate(&topo);

    let direct = AsRank::new().infer(&snap.to_pathset(false));

    let bytes = snap.to_mrt(&topo);
    let from_mrt = pathset_from_mrt(&bytes, true).expect("valid dump");
    let via_mrt = AsRank::new().infer(&from_mrt);

    assert_eq!(
        direct.rels, via_mrt.rels,
        "inference must be identical whether paths come from memory or MRT bytes"
    );
    assert_eq!(direct.clique, via_mrt.clique);
}

#[test]
fn legacy_mrt_consumer_sees_as_trans() {
    // Plenty of 16-bit collector sessions so the artefact is seed-robust.
    let topo = topogen::generate(&TopologyConfig {
        vp_two_byte_share: 0.4,
        ..TopologyConfig::small(3)
    });
    let snap = breval::bgpsim::simulate(&topo);
    let bytes = snap.to_mrt(&topo);

    let modern = pathset_from_mrt(&bytes, true).unwrap();
    let legacy = pathset_from_mrt(&bytes, false).unwrap();

    assert!(
        modern
            .paths()
            .iter()
            .all(|p| !p.path.hops().contains(&AS_TRANS)),
        "modern reconstruction must never contain AS_TRANS"
    );
    let n_legacy = legacy
        .paths()
        .iter()
        .filter(|p| p.path.hops().contains(&AS_TRANS))
        .count();
    assert!(
        n_legacy > 0,
        "legacy decoding must produce AS_TRANS paths (16-bit VPs exist)"
    );
}

#[test]
fn corrupted_mrt_fails_gracefully() {
    let topo = topogen::generate(&TopologyConfig::small(3));
    let snap = breval::bgpsim::simulate(&topo);
    let bytes = snap.to_mrt(&topo);

    // Truncations at many offsets: error, never panic.
    for cut in [1usize, 7, 12, 100, bytes.len() / 2, bytes.len() - 1] {
        let _ = pathset_from_mrt(&bytes[..cut.min(bytes.len())], true);
    }
    // Flip bytes throughout the header region.
    for i in (0..bytes.len().min(4096)).step_by(97) {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xFF;
        let _ = pathset_from_mrt(&corrupted, true);
    }
}
