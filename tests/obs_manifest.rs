//! Integration test for the observability layer: a small scenario run must
//! produce a manifest covering every pipeline stage, with wall-clock time
//! recorded and artifact counts that match the `Scenario`'s own fields.
//!
//! Observability state is process-global, so this file keeps everything in
//! a single test function.

use breval::analysis::{Scenario, ScenarioConfig};
use breval::obs;

#[test]
fn small_scenario_manifest_covers_all_stages() {
    obs::set_enabled(true);
    obs::reset();
    let scenario = Scenario::run(ScenarioConfig::small(99));

    // Exercise the cached join: repeated eval_table/scored_in_class calls
    // must compute the underlying join once per classifier.
    let table_a = scenario.eval_table("asrank");
    let table_b = scenario.eval_table("asrank");
    assert_eq!(
        serde_json::to_string(&table_a).unwrap(),
        serde_json::to_string(&table_b).unwrap()
    );
    let _ = scenario.scored_in_class("asrank", "TR°");
    let _ = scenario.scored_in_class("asrank", "S-TR");
    let _ = scenario.eval_table("problink");
    assert_eq!(
        obs::counter_value("scored_join_computed"),
        2,
        "join must run once per classifier (asrank, problink)"
    );

    let manifest = obs::RunManifest::capture("integration", 99);
    obs::set_enabled(false);

    let expected_stages = [
        "scenario_run",
        "scenario_run/generate",
        "scenario_run/simulate",
        "scenario_run/to_pathset",
        "scenario_run/sanitize",
        "scenario_run/path_stats",
        "scenario_run/infer_all",
        "scenario_run/infer_all/infer_asrank",
        "scenario_run/infer_all/infer_problink",
        "scenario_run/infer_all/infer_toposcope",
        "scenario_run/infer_all/infer_gao",
        "scenario_run/compile_validation",
        "scenario_run/clean_validation",
        "scenario_run/link_classifier",
    ];
    for name in expected_stages {
        let stage = manifest
            .stages
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("stage {name} missing from manifest"));
        assert!(stage.calls >= 1, "stage {name} has no calls");
        assert!(stage.wall_ms > 0.0, "stage {name} has zero duration");
    }
    assert!(manifest.stages.len() >= 8);

    // Artifact counts line up with the scenario's own fields.
    assert_eq!(
        manifest.counters["links_inferred"],
        scenario.inferred_links.len() as u64
    );
    assert_eq!(
        manifest.counters["validation_labels_compiled"],
        scenario.validation_raw.len() as u64
    );
    assert_eq!(
        manifest.counters["validation_labels_cleaned"],
        scenario.validation.len() as u64
    );
    assert_eq!(
        manifest.counters["rels_assigned.asrank"],
        scenario.inference("asrank").unwrap().rels.len() as u64
    );
    assert_eq!(
        manifest.counters["rels_assigned.problink"],
        scenario.inference("problink").unwrap().rels.len() as u64
    );
    assert_eq!(
        manifest.counters["rels_assigned.toposcope"],
        scenario.inference("toposcope").unwrap().rels.len() as u64
    );
    assert_eq!(
        manifest.counters["rels_assigned.gao"],
        scenario.inference("gao").unwrap().rels.len() as u64
    );
    assert_eq!(
        manifest.counters["route_observations"],
        scenario.snapshot.observations.len() as u64
    );

    // The per-stage attribution agrees with the global totals.
    let asrank_stage = manifest
        .stages
        .iter()
        .find(|s| s.name == "scenario_run/infer_all/infer_asrank")
        .unwrap();
    assert_eq!(
        asrank_stage.counters["rels_assigned.asrank"],
        manifest.counters["rels_assigned.asrank"]
    );

    // Schema-2 identity fields: version stamp, the capturing machine's
    // parallelism, and the (caller-supplied) thread cap.
    assert_eq!(manifest.schema, obs::MANIFEST_SCHEMA);
    assert_eq!(manifest.schema, 2);
    assert!(
        manifest.hardware_threads >= 1,
        "available_parallelism must resolve on the test machine"
    );
    assert_eq!(manifest.thread_cap, 0, "cap is 0 until with_thread_cap");
    let capped = obs::RunManifest::capture("integration", 99).with_thread_cap(4);
    assert_eq!(capped.thread_cap, 4);

    // The parallel stages tallied item latencies into the pool histogram,
    // with conservative (bucket upper bound) quantiles in order.
    let items = manifest
        .histograms
        .get("parallel_map_item_ns")
        .expect("parallel_map item histogram recorded");
    assert!(items.count > 0, "no parallel_map items tallied");
    assert!(items.p50 <= items.p90 && items.p90 <= items.p99);
    assert!(items.sum > 0);

    // Pool-health counters flowed out of the parallel stages.
    assert_eq!(
        manifest.counters["pool_items_total"], items.count,
        "every parallel_map item is tallied exactly once"
    );

    // The manifest serializes to JSON and renders a table.
    let json = manifest.to_json();
    assert!(json.contains("scenario_run/infer_all/infer_asrank"));
    assert!(json.contains("\"schema\": 2") || json.contains("\"schema\":2"));
    let table = manifest.render_table();
    assert!(table.contains("scenario_run/clean_validation"));

    // Every label the run produced must be in the checked-in registry
    // (crates/obs/labels.txt) — the same contract `xtask lint` (L003) and
    // `xtask sanitize` enforce. A failure here means instrumentation was
    // added without registering its label.
    let registry = obs::LabelRegistry::builtin();
    assert!(!registry.is_empty(), "label registry must parse non-empty");
    for stage in &manifest.stages {
        assert!(
            registry.is_registered_path(&stage.name),
            "stage path {:?} contains an unregistered segment",
            stage.name
        );
        for label in stage.counters.keys() {
            assert!(
                registry.is_registered(label),
                "counter {label:?} (stage {:?}) is not in the obs label registry",
                stage.name
            );
        }
    }
    for label in manifest
        .counters
        .keys()
        .chain(manifest.gauges.keys())
        .chain(manifest.histograms.keys())
    {
        assert!(
            registry.is_registered(label),
            "metric label {label:?} is not in the obs label registry"
        );
    }
}
