//! Full-pipeline determinism: identical seeds produce bit-identical analyses;
//! different seeds produce different worlds.

use breval::analysis::{Scenario, ScenarioConfig};

#[test]
fn same_seed_same_world() {
    let a = Scenario::run(ScenarioConfig::small(7));
    let b = Scenario::run(ScenarioConfig::small(7));
    assert_eq!(a.inferred_links, b.inferred_links);
    assert_eq!(a.validation.labels, b.validation.labels);
    for name in ["asrank", "problink", "toposcope"] {
        assert_eq!(
            a.inference(name).unwrap().rels,
            b.inference(name).unwrap().rels,
            "{name} inference must be deterministic"
        );
    }
    let fa = serde_json::to_string(&a.fig1()).unwrap();
    let fb = serde_json::to_string(&b.fig1()).unwrap();
    assert_eq!(fa, fb);
}

#[test]
fn different_seed_different_world() {
    let a = Scenario::run(ScenarioConfig::small(7));
    let b = Scenario::run(ScenarioConfig::small(8));
    assert_ne!(a.inferred_links, b.inferred_links);
}
