//! Full-pipeline determinism: identical seeds produce bit-identical analyses;
//! different seeds produce different worlds.

use breval::analysis::{Scenario, ScenarioConfig};

#[test]
fn same_seed_same_world() {
    let a = Scenario::run(ScenarioConfig::small(7));
    let b = Scenario::run(ScenarioConfig::small(7));
    assert_eq!(a.inferred_links, b.inferred_links);
    assert_eq!(a.validation.labels, b.validation.labels);
    for name in ["asrank", "problink", "toposcope"] {
        assert_eq!(
            a.inference(name).unwrap().rels,
            b.inference(name).unwrap().rels,
            "{name} inference must be deterministic"
        );
    }
    let fa = serde_json::to_string(&a.fig1()).unwrap();
    let fb = serde_json::to_string(&b.fig1()).unwrap();
    assert_eq!(fa, fb);
}

#[test]
fn different_seed_different_world() {
    let a = Scenario::run(ScenarioConfig::small(7));
    let b = Scenario::run(ScenarioConfig::small(8));
    assert_ne!(a.inferred_links, b.inferred_links);
}

/// Observability must be a pure observer: enabling it may not perturb any
/// analysis output. Same seed, obs off vs on → byte-identical figure and
/// evaluation-table JSON.
#[test]
fn observability_does_not_change_outputs() {
    breval::obs::set_enabled(false);
    let off = Scenario::run(ScenarioConfig::small(11));
    let off_fig1 = serde_json::to_string(&off.fig1()).unwrap();
    let off_table = serde_json::to_string(&off.eval_table("asrank")).unwrap();

    breval::obs::set_enabled(true);
    breval::obs::reset();
    let on = Scenario::run(ScenarioConfig::small(11));
    let on_fig1 = serde_json::to_string(&on.fig1()).unwrap();
    let on_table = serde_json::to_string(&on.eval_table("asrank")).unwrap();
    breval::obs::set_enabled(false);

    assert_eq!(off_fig1, on_fig1, "fig1 JSON must not depend on BREVAL_OBS");
    assert_eq!(
        off_table, on_table,
        "eval_table JSON must not depend on BREVAL_OBS"
    );
}
