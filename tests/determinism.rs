//! Full-pipeline determinism: identical seeds produce bit-identical analyses;
//! different seeds produce different worlds.

use breval::analysis::{Scenario, ScenarioConfig};

#[test]
fn same_seed_same_world() {
    let a = Scenario::run(ScenarioConfig::small(7));
    let b = Scenario::run(ScenarioConfig::small(7));
    assert_eq!(a.inferred_links, b.inferred_links);
    assert_eq!(a.validation.labels, b.validation.labels);
    for name in ["asrank", "problink", "toposcope"] {
        assert_eq!(
            a.inference(name).unwrap().rels,
            b.inference(name).unwrap().rels,
            "{name} inference must be deterministic"
        );
    }
    let fa = serde_json::to_string(&a.fig1()).unwrap();
    let fb = serde_json::to_string(&b.fig1()).unwrap();
    assert_eq!(fa, fb);
}

/// The work-stealing parallel layer must be invisible in the output: a
/// forced single-thread run and a forced multi-thread run of the same seed
/// must produce byte-identical route observations and identical inferences,
/// for multiple seeds.
#[test]
fn parallel_run_matches_single_thread() {
    use breval::analysis::pipeline::HeatmapMetric;
    // Fig. 1/2 coverage, heatmaps: computed while the cap is in force so
    // the newly parallel analysis stages are actually exercised at 1 vs 4
    // threads (not lazily at whatever cap is ambient later).
    let analyses = |s: &Scenario| {
        let mut out = vec![
            serde_json::to_string(&s.fig1()).unwrap(),
            serde_json::to_string(&s.fig2()).unwrap(),
        ];
        for metric in [HeatmapMetric::TransitDegree, HeatmapMetric::Ppdc] {
            out.push(serde_json::to_string(&s.heatmaps(metric)).unwrap());
        }
        out
    };
    // The dense kernels (CSR cone BFS with per-worker scratch, bitset PPDC):
    // force computation while the thread cap is in force and snapshot the
    // full (Asn, size) sequences, ordering included.
    let dense_kernels = |s: &Scenario| {
        let mut out = Vec::new();
        for name in ["asrank", "problink"] {
            out.push(s.cone_sizes_arc(name).iter().collect::<Vec<_>>());
            out.push(s.ppdc_sizes_arc(name).iter().collect::<Vec<_>>());
        }
        out
    };
    for seed in [5u64, 21] {
        // `with_thread_cap` scopes + serialises the process-global cap, so
        // concurrently running tests can't observe each other's override.
        let (single, single_analyses, single_kernels) =
            breval::par::with_thread_cap(Some(1), || {
                let s = Scenario::run(ScenarioConfig::small(seed));
                let a = analyses(&s);
                let k = dense_kernels(&s);
                (s, a, k)
            });
        let (multi, multi_analyses, multi_kernels) = breval::par::with_thread_cap(Some(4), || {
            let s = Scenario::run(ScenarioConfig::small(seed));
            let a = analyses(&s);
            let k = dense_kernels(&s);
            (s, a, k)
        });

        assert_eq!(
            single.snapshot.observations, multi.snapshot.observations,
            "seed {seed}: RibSnapshot observations must be byte-identical"
        );
        for name in ["asrank", "problink", "toposcope", "gao"] {
            assert_eq!(
                single.inference(name).unwrap().rels,
                multi.inference(name).unwrap().rels,
                "seed {seed}: {name} inference must not depend on thread count"
            );
            let a = serde_json::to_string(&*single.scored_arc(name)).unwrap();
            let b = serde_json::to_string(&*multi.scored_arc(name)).unwrap();
            assert_eq!(a, b, "seed {seed}: {name} scored join must match");
        }

        // The newly parallel stages: validation compilation (chunked
        // observation decoding), coverage (chunked classification), and
        // heatmaps (chunked binning) must be byte-identical too.
        assert_eq!(
            single.validation_raw, multi.validation_raw,
            "seed {seed}: compiled validation set must not depend on thread count"
        );
        for (label, (a, b)) in ["fig1", "fig2", "heatmap_transit", "heatmap_ppdc"]
            .iter()
            .zip(single_analyses.iter().zip(&multi_analyses))
        {
            assert_eq!(
                a, b,
                "seed {seed}: {label} JSON must not depend on thread count"
            );
        }
        assert_eq!(
            single_kernels, multi_kernels,
            "seed {seed}: dense cone/PPDC sizes (values and iteration order) \
             must not depend on thread count"
        );
    }
}

#[test]
fn different_seed_different_world() {
    let a = Scenario::run(ScenarioConfig::small(7));
    let b = Scenario::run(ScenarioConfig::small(8));
    assert_ne!(a.inferred_links, b.inferred_links);
}

/// Observability must be a pure observer: enabling it may not perturb any
/// analysis output. Same seed, obs off vs on → byte-identical figure and
/// evaluation-table JSON.
#[test]
fn observability_does_not_change_outputs() {
    breval::obs::set_enabled(false);
    let off = Scenario::run(ScenarioConfig::small(11));
    let off_fig1 = serde_json::to_string(&off.fig1()).unwrap();
    let off_table = serde_json::to_string(&off.eval_table("asrank")).unwrap();

    breval::obs::set_enabled(true);
    breval::obs::reset();
    let on = Scenario::run(ScenarioConfig::small(11));
    let on_fig1 = serde_json::to_string(&on.fig1()).unwrap();
    let on_table = serde_json::to_string(&on.eval_table("asrank")).unwrap();
    breval::obs::set_enabled(false);

    assert_eq!(off_fig1, on_fig1, "fig1 JSON must not depend on BREVAL_OBS");
    assert_eq!(
        off_table, on_table,
        "eval_table JSON must not depend on BREVAL_OBS"
    );
}

/// The event journal must be a pure observer too: with obs on, toggling
/// `BREVAL_OBS_JOURNAL` may not change a single output byte — at a thread
/// cap of 1 and of 4 (the journal's per-worker buffers and span-boundary
/// allocation sampling sit directly on the pool's hot path).
#[test]
fn journal_does_not_change_outputs() {
    let run = |journal: bool, threads: usize| {
        breval::obs::set_enabled(true);
        breval::obs::set_journal_enabled(journal);
        breval::obs::reset();
        let s = breval::par::with_thread_cap(Some(threads), || {
            Scenario::run(ScenarioConfig::small(13))
        });
        breval::obs::set_journal_enabled(false);
        breval::obs::set_enabled(false);
        (
            s.snapshot.observations.clone(),
            serde_json::to_string(&s.fig1()).unwrap(),
            serde_json::to_string(&s.fig2()).unwrap(),
        )
    };
    for threads in [1usize, 4] {
        let off = run(false, threads);
        let on = run(true, threads);
        assert_eq!(
            off.0, on.0,
            "{threads} thread(s): observations must not depend on the journal"
        );
        assert_eq!(
            off.1, on.1,
            "{threads} thread(s): fig1 JSON must not depend on the journal"
        );
        assert_eq!(
            off.2, on.2,
            "{threads} thread(s): fig2 JSON must not depend on the journal"
        );
    }
    // And across thread counts, journal on: still byte-identical.
    assert_eq!(
        run(true, 1),
        run(true, 4),
        "journal-on runs must not depend on thread count"
    );
}
