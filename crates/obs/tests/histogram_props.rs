//! Property-based tests for the log-bucketed [`Histogram`] and its bucket
//! arithmetic — the quantiles reported in `BENCH_obs.json` lean on these
//! invariants.

use breval_obs::{bucket_index, bucket_upper, Histogram};
use proptest::prelude::*;

#[test]
fn bucket_edges_at_zero_and_max() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_upper(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_upper(64), u64::MAX);
    assert_eq!(bucket_upper(65), u64::MAX, "saturates past the last bucket");
    // Power-of-two boundaries: 2^i − 1 closes bucket i, 2^i opens i + 1.
    for i in 1..64usize {
        assert_eq!(bucket_index((1u64 << i) - 1), i);
        assert_eq!(bucket_index(1u64 << i), i + 1);
    }
}

#[test]
fn empty_histogram_is_all_zero() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0);
    }
}

proptest! {
    /// Every value lands in a bucket whose bounds contain it.
    #[test]
    fn value_within_its_bucket_bounds(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(v <= bucket_upper(i));
        if i > 0 {
            prop_assert!(v > bucket_upper(i - 1));
        }
    }

    /// `bucket_index` is monotone: a larger value never maps to a smaller
    /// bucket.
    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Recorded counts round-trip exactly, and each reported quantile is a
    /// conservative (upper) bound on the true quantile value.
    #[test]
    fn count_roundtrip_and_conservative_quantiles(
        mut values in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil().max(1.0) as usize).min(values.len());
            let true_q = values[rank - 1];
            prop_assert!(
                h.quantile(q) >= true_q,
                "q={} reported {} < true {}", q, h.quantile(q), true_q
            );
        }
        // The maximum is bounded by its own bucket.
        let max = *values.last().expect("non-empty");
        prop_assert_eq!(h.quantile(1.0), bucket_upper(bucket_index(max)));
    }

    /// Quantiles are monotone in `q`.
    #[test]
    fn quantiles_monotone_in_q(values in prop::collection::vec(any::<u64>(), 0..100)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(h.quantile(pair[0]) <= h.quantile(pair[1]));
        }
    }

    /// Merging equals recording the concatenation, and quantiles never
    /// shrink under merge (monotone merge).
    #[test]
    fn merge_matches_concatenation(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(v);
        }
        let mut concat = Histogram::new();
        for &v in a.iter().chain(&b) {
            concat.record(v);
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), concat.count());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), concat.quantile(q));
            // Monotone: folding more data in can only hold or raise the max.
            prop_assert!(merged.quantile(1.0) >= ha.quantile(1.0));
            prop_assert!(merged.quantile(1.0) >= hb.quantile(1.0));
        }
    }
}
