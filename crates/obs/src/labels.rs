//! The checked-in observability label registry.
//!
//! Span and counter labels are free-form strings at the call site, which
//! makes them prone to silent drift: a renamed stage changes the
//! `run_manifest.json` schema without any compiler help. The registry in
//! `crates/obs/labels.txt` is the single source of truth for every label
//! the workspace may emit. It is enforced twice:
//!
//! * statically — `cargo run -p xtask -- lint` (rule L003) checks every
//!   `span!`/`counter` call-site literal against it, and
//! * at runtime — the `tests/obs_manifest.rs` integration test asserts a
//!   captured manifest contains only registered labels.

use std::collections::BTreeSet;

/// The registry file contents, embedded so the check needs no filesystem
/// access at runtime.
pub const REGISTRY_TEXT: &str = include_str!("../labels.txt");

/// Parsed form of `crates/obs/labels.txt`: exact label names plus prefix
/// wildcards (`rels_assigned.*`).
#[derive(Debug, Clone, Default)]
pub struct LabelRegistry {
    exact: BTreeSet<String>,
    prefixes: Vec<String>,
}

impl LabelRegistry {
    /// Parses registry text: one label per line, `#` comments (full-line or
    /// inline — `label  # keep: <reason>` annotations ride in the inline
    /// form), `*` suffix for prefix wildcards.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut reg = LabelRegistry::default();
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(prefix) = line.strip_suffix('*') {
                reg.prefixes.push(prefix.to_owned());
            } else {
                reg.exact.insert(line.to_owned());
            }
        }
        reg
    }

    /// The registry compiled into this crate.
    #[must_use]
    pub fn builtin() -> Self {
        Self::parse(REGISTRY_TEXT)
    }

    /// `true` if a single label (no `/`) is registered.
    #[must_use]
    pub fn is_registered(&self, label: &str) -> bool {
        self.exact.contains(label) || self.prefixes.iter().any(|p| label.starts_with(p.as_str()))
    }

    /// `true` if every `/`-separated segment of a span path is registered
    /// (manifest stage names are slash-joined span labels).
    #[must_use]
    pub fn is_registered_path(&self, path: &str) -> bool {
        path.split('/').all(|seg| self.is_registered(seg))
    }

    /// Number of exact entries plus wildcards (used for sanity assertions).
    #[must_use]
    pub fn len(&self) -> usize {
        self.exact.len() + self.prefixes.len()
    }

    /// `true` if the registry has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.prefixes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_exact_and_wildcard_entries() {
        let reg = LabelRegistry::parse("# comment\nfoo\nbar.*\n\n  baz  \n");
        assert!(reg.is_registered("foo"));
        assert!(reg.is_registered("baz"));
        assert!(reg.is_registered("bar.asrank"));
        assert!(!reg.is_registered("qux"));
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }

    #[test]
    fn inline_keep_comments_are_stripped() {
        let reg = LabelRegistry::parse("foo  # keep: emitted via format!\nbar.*  # keep: dyn\n");
        assert!(reg.is_registered("foo"));
        assert!(!reg.is_registered("foo  # keep: emitted via format!"));
        assert!(reg.is_registered("bar.gao"));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn builtin_registry_covers_core_stages() {
        let reg = LabelRegistry::builtin();
        for label in ["scenario_run", "generate", "simulate", "links_inferred"] {
            assert!(reg.is_registered(label), "{label} missing from labels.txt");
        }
        assert!(reg.is_registered("rels_assigned.asrank"));
        assert!(reg.is_registered_path("scenario_run/infer_asrank"));
        assert!(!reg.is_registered_path("scenario_run/bogus_stage"));
    }
}
