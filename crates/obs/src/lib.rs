//! Observability for the breval pipeline: hierarchical span timers, a
//! metrics registry (counters / gauges / histograms), and a run manifest
//! that serializes per-stage timings and artifact counts.
//!
//! # Design
//!
//! All instrumentation is gated on a single process-global switch backed by
//! one `AtomicU8`. When observability is off (the default), every entry
//! point — [`span`], [`counter`], [`gauge_set`], [`histogram_record`] —
//! returns after a single relaxed atomic load and no allocation, so
//! instrumented hot paths cost nothing measurable. The switch is
//! initialised lazily from the `BREVAL_OBS` environment variable
//! (`1`/`true`/`on` enables) and can be forced programmatically with
//! [`set_enabled`].
//!
//! # Spans
//!
//! [`span`] (or the [`span!`] macro) returns an RAII guard. Guards nest via
//! a thread-local stack: a span opened while another is active records
//! under the slash-joined path `parent/child`, so child wall time is
//! visible both on its own row and inside the parent's total. Dropping the
//! guard records one call and its wall time into the global registry.
//!
//! # Metrics
//!
//! [`counter`] adds to a named monotonic counter; while a span is active
//! the increment is also attributed to that span's path, which is how the
//! run manifest associates artifact counts (links inferred, paths dropped,
//! labels cleaned, …) with pipeline stages. [`gauge_set`] stores a
//! last-write-wins float. [`histogram_record`] tallies a value into
//! fixed power-of-two buckets.
//!
//! # Manifest
//!
//! [`RunManifest::capture`] snapshots the registry into a serializable
//! report (one stage record per span path, with calls, wall time,
//! allocation deltas, and the counters attributed to it) that renders to
//! JSON ([`RunManifest::to_json`]) or a human-readable table
//! ([`RunManifest::render_table`]). The manifest is **schema 2**: it
//! carries `schema`, `hardware_threads`, and `thread_cap` so baselines can
//! be compared across machines honestly.
//!
//! # Journal
//!
//! The [`journal`] module adds an opt-in second layer
//! (`BREVAL_OBS_JOURNAL`): per-thread append-only event buffers recording
//! span begin/end and counter events with timestamps and per-thread
//! allocation samples, drained at run end into a Chrome
//! `trace_event`-format timeline by [`journal::write_trace_json`]. Span
//! guards sample the vendored `counting_alloc` thread-local counters at
//! their boundaries whenever observability is on, so per-stage allocation
//! attribution works with or without the journal.

#![forbid(unsafe_code)]

pub mod journal;
pub mod labels;

pub use journal::{
    clock_ns, journal_enabled, set_journal_enabled, trace_json, write_trace_json, JOURNAL_ENV_VAR,
};
pub use labels::{LabelRegistry, REGISTRY_TEXT};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::Serialize;

/// `STATE` values: 0 = uninitialised, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

static REGISTRY: Mutex<Registry> = Mutex::new(Registry::new());

/// Environment variable controlling the global switch.
pub const ENV_VAR: &str = "BREVAL_OBS";

/// Whether observability is currently on. This is the fast path: a single
/// relaxed atomic load once initialised.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var(ENV_VAR) {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off"),
        Err(_) => false,
    };
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces the global switch on or off, overriding `BREVAL_OBS`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clears all recorded spans, metrics, and journaled events. The on/off
/// switches are unchanged.
pub fn reset() {
    *REGISTRY.lock() = Registry::new();
    journal::journal_reset();
}

thread_local! {
    /// Active span paths on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
struct Registry {
    /// Per-span-path call counts and wall time.
    spans: BTreeMap<String, SpanAccum>,
    /// Counter increments attributed to the span path active at the time.
    span_counters: BTreeMap<String, BTreeMap<String, u64>>,
    /// Global counter totals across all spans.
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    const fn new() -> Self {
        Registry {
            spans: BTreeMap::new(),
            span_counters: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

#[derive(Default, Clone, Copy)]
struct SpanAccum {
    calls: u64,
    total_ns: u128,
    /// Allocation events attributed to this span (thread-local deltas
    /// sampled at span boundaries; see [`SpanGuard`]).
    alloc_count: u64,
    /// Bytes requested, same attribution.
    alloc_bytes: u64,
}

/// A log-bucketed (power-of-two) histogram of `u64` values.
///
/// Public so hot loops (e.g. per-item timings in `breval-par`) can tally
/// into a local `Histogram` without taking the registry lock per value,
/// then fold it in once with [`histogram_merge`].
#[derive(Clone)]
pub struct Histogram {
    count: u64,
    sum: u64,
    /// `buckets[i]` counts values with `bucket_index(v) == i`.
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Tallies one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Upper bound of the smallest bucket whose cumulative count reaches
    /// quantile `q` (in `[0, 1]`); `0` for an empty histogram. Quantiles
    /// are therefore conservative: the true quantile is ≤ the reported
    /// bucket bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(64)
    }
}

/// Bucket `0` holds zero; bucket `i >= 1` holds values in
/// `(2^(i-1) - 1, 2^i - 1]`, i.e. upper bound `2^i - 1`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Upper (inclusive) bound of bucket `i` (saturates to `u64::MAX` from
/// bucket 64 up).
#[must_use]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Live state of an open span: its path, start time, and the calling
/// thread's absolute allocation counters at entry.
struct SpanActive {
    path: String,
    start: Instant,
    allocs0: u64,
    bytes0: u64,
}

impl SpanActive {
    fn open(path: String) -> Self {
        let allocs0 = counting_alloc::thread_allocation_count();
        let bytes0 = counting_alloc::thread_allocated_bytes();
        if journal::journal_enabled() {
            journal::record_begin(&path, allocs0, bytes0);
        }
        SpanActive {
            path,
            start: Instant::now(),
            allocs0,
            bytes0,
        }
    }

    /// Closes the span: journals the end event and folds wall time and
    /// allocation deltas into the registry. Consumes `self` by value.
    fn close(self) {
        let elapsed = self.start.elapsed().as_nanos();
        let allocs1 = counting_alloc::thread_allocation_count();
        let bytes1 = counting_alloc::thread_allocated_bytes();
        if journal::journal_enabled() {
            journal::record_end(allocs1, bytes1);
        }
        let mut reg = REGISTRY.lock();
        let accum = reg.spans.entry(self.path).or_default();
        accum.calls += 1;
        accum.total_ns += elapsed;
        accum.alloc_count += allocs1.saturating_sub(self.allocs0);
        accum.alloc_bytes += bytes1.saturating_sub(self.bytes0);
    }
}

/// RAII guard for a timed span; records on drop. Obtained from [`span`].
pub struct SpanGuard {
    /// `None` when observability was off at creation: drop is free.
    active: Option<SpanActive>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Pop our own frame; tolerate a foreign tail from guards
                // dropped out of order.
                if let Some(pos) = stack.iter().rposition(|p| *p == active.path) {
                    stack.remove(pos);
                }
            });
            active.close();
        }
    }
}

/// Opens a timed span named `name`, nested under any span already active on
/// this thread. No-op (single atomic load) when observability is off.
#[must_use]
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let path = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_owned(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        active: Some(SpanActive::open(path)),
    }
}

/// RAII guard for a worker-side journal span (see [`journal_span`]).
pub struct JournalSpanGuard {
    active: Option<SpanActive>,
}

impl Drop for JournalSpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            active.close();
        }
    }
}

/// Opens a timed span named `name` under the current span context
/// **without** entering the span stack: counters fired while it is open
/// keep attributing to the surrounding (usually adopted) context, but the
/// guard still records wall time + allocation deltas under
/// `parent/name` in the registry and emits journal begin/end events for
/// the thread timeline.
///
/// This is the instrument for pool workers: `breval-par` adopts the
/// submitting stage's context on each worker, then wraps the worker's
/// busy slice in `journal_span("pool_worker")` — the trace shows one
/// slice per worker under the stage, and the manifest gains a
/// `<stage>/pool_worker` row whose wall time is the summed worker busy
/// time, while counter attribution to the stage itself is unchanged.
#[must_use]
pub fn journal_span(name: &str) -> JournalSpanGuard {
    if !enabled() {
        return JournalSpanGuard { active: None };
    }
    let path = SPAN_STACK.with(|s| match s.borrow().last() {
        Some(parent) => format!("{parent}/{name}"),
        None => name.to_owned(),
    });
    JournalSpanGuard {
        active: Some(SpanActive::open(path)),
    }
}

/// Opens a timed span; sugar for [`span`] so call sites read as
/// `let _g = breval_obs::span!("stage");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// The slash-joined path of the innermost span active on this thread, if
/// any. Capture this before spawning workers and hand it to
/// [`adopt_context`] on each worker so their spans and counters nest under
/// the submitting stage.
#[must_use]
pub fn current_path() -> Option<String> {
    if !enabled() {
        return None;
    }
    SPAN_STACK.with(|s| s.borrow().last().cloned())
}

/// RAII guard for an adopted span context (see [`adopt_context`]); pops the
/// adopted path from this thread's span stack on drop.
pub struct ContextGuard {
    path: Option<String>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|p| *p == path) {
                    stack.remove(pos);
                }
            });
        }
    }
}

/// Adopts `parent` — a span path captured with [`current_path`] on another
/// thread — as this thread's span context. Unlike [`span`], adoption
/// records no timing of its own: spans opened under it path-join below
/// `parent` exactly as if they ran on the submitting thread, and counters
/// fired while it is innermost attribute to `parent`. No-op when `parent`
/// is `None` or observability is off.
#[must_use]
pub fn adopt_context(parent: Option<&str>) -> ContextGuard {
    let Some(parent) = parent else {
        return ContextGuard { path: None };
    };
    if !enabled() {
        return ContextGuard { path: None };
    }
    let path = parent.to_owned();
    SPAN_STACK.with(|s| s.borrow_mut().push(path.clone()));
    ContextGuard { path: Some(path) }
}

/// Total wall time recorded so far for the span path `path`, in
/// milliseconds (0 if the path was never recorded). Reading a delta of this
/// around a pipeline phase is the sanctioned way for binaries to report
/// wall-clock without touching `std::time` directly (lint L004).
#[must_use]
pub fn span_wall_ms(path: &str) -> f64 {
    REGISTRY
        .lock()
        .spans
        .get(path)
        .map_or(0.0, |a| a.total_ns as f64 / 1e6)
}

/// Adds `delta` to the counter `name`. While a span is active on this
/// thread, the increment is also attributed to that span's path.
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    if journal::journal_enabled() {
        journal::record_counter(name, delta);
    }
    let path = SPAN_STACK.with(|s| s.borrow().last().cloned());
    let mut reg = REGISTRY.lock();
    *reg.counters.entry(name.to_owned()).or_insert(0) += delta;
    if let Some(path) = path {
        *reg.span_counters
            .entry(path)
            .or_default()
            .entry(name.to_owned())
            .or_insert(0) += delta;
    }
}

/// Current global total of counter `name` (0 if never incremented).
#[must_use]
pub fn counter_value(name: &str) -> u64 {
    REGISTRY.lock().counters.get(name).copied().unwrap_or(0)
}

/// Sets gauge `name` to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    REGISTRY.lock().gauges.insert(name.to_owned(), value);
}

/// Records `value` into histogram `name` (power-of-two buckets).
pub fn histogram_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock();
    reg.histograms
        .entry(name.to_owned())
        .or_default()
        .record(value);
}

/// Folds a locally-tallied [`Histogram`] into the global histogram `name`
/// under one registry lock — the bulk counterpart of [`histogram_record`]
/// for per-worker tallies. No-op when observability is off or `local` is
/// empty.
pub fn histogram_merge(name: &str, local: &Histogram) {
    if !enabled() || local.count == 0 {
        return;
    }
    let mut reg = REGISTRY.lock();
    reg.histograms
        .entry(name.to_owned())
        .or_default()
        .merge(local);
}

/// One pipeline stage in a [`RunManifest`]: a span path with its call
/// count, wall time, and the counters attributed to it.
#[derive(Debug, Clone, Serialize)]
pub struct StageRecord {
    /// Slash-joined span path, e.g. `scenario_run/infer_asrank`.
    pub name: String,
    /// Number of completed span entries.
    pub calls: u64,
    /// Total wall time across all calls, in milliseconds.
    pub wall_ms: f64,
    /// Allocation events attributed to this span (0 unless the binary
    /// installs `counting_alloc` as its global allocator).
    pub alloc_count: u64,
    /// Bytes requested, same attribution and caveat.
    pub alloc_bytes: u64,
    /// Counter increments attributed while this span was innermost.
    pub counters: BTreeMap<String, u64>,
}

/// Serializable snapshot of one histogram, with conservative log-bucket
/// quantiles (each `pNN` is the inclusive upper bound of the bucket
/// containing that quantile).
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Manifest schema version emitted by this crate. History:
/// 1 — implicit/unversioned (spans + counters only);
/// 2 — adds `schema`/`hardware_threads`/`thread_cap`, per-stage
///     `alloc_count`/`alloc_bytes`, histogram quantiles.
pub const MANIFEST_SCHEMA: u32 = 2;

/// A full observability report for one run: configuration identity plus
/// per-stage timings, counters, gauges, and histograms.
#[derive(Debug, Clone, Serialize)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_SCHEMA`]).
    pub schema: u32,
    /// Human-readable run label, e.g. the scenario name.
    pub scenario: String,
    /// RNG seed the run was configured with.
    pub seed: u64,
    /// `std::thread::available_parallelism()` on the capturing machine —
    /// baselines recorded on wider machines are not comparable without it.
    pub hardware_threads: u64,
    /// Effective worker-thread cap the run was configured with
    /// ([`RunManifest::with_thread_cap`]; 0 = not recorded). When
    /// `hardware_threads < thread_cap` the run oversubscribed the machine
    /// and timings should be read accordingly.
    pub thread_cap: u64,
    /// Free-form configuration key/values recorded by the caller.
    pub config: BTreeMap<String, String>,
    /// One record per span path, sorted by path.
    pub stages: Vec<StageRecord>,
    /// Global counter totals across all stages.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last written value).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RunManifest {
    /// Snapshots the global registry into a manifest. The registry is left
    /// untouched; call [`reset`] to start a fresh run.
    #[must_use]
    pub fn capture(scenario: &str, seed: u64) -> Self {
        let reg = REGISTRY.lock();
        let mut paths: Vec<&String> = reg.spans.keys().collect();
        for p in reg.span_counters.keys() {
            if !reg.spans.contains_key(p) {
                paths.push(p);
            }
        }
        paths.sort();
        let stages = paths
            .into_iter()
            .map(|path| {
                let accum = reg.spans.get(path).copied().unwrap_or_default();
                StageRecord {
                    name: path.clone(),
                    calls: accum.calls,
                    wall_ms: accum.total_ns as f64 / 1e6,
                    alloc_count: accum.alloc_count,
                    alloc_bytes: accum.alloc_bytes,
                    counters: reg.span_counters.get(path).cloned().unwrap_or_default(),
                }
            })
            .collect();
        let histograms = reg
            .histograms
            .iter()
            .map(|(name, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (bucket_upper(i), c))
                    .collect();
                (
                    name.clone(),
                    HistogramSnapshot {
                        count: h.count,
                        sum: h.sum,
                        p50: h.quantile(0.50),
                        p90: h.quantile(0.90),
                        p99: h.quantile(0.99),
                        buckets,
                    },
                )
            })
            .collect();
        RunManifest {
            schema: MANIFEST_SCHEMA,
            scenario: scenario.to_owned(),
            seed,
            hardware_threads: std::thread::available_parallelism().map_or(0, |n| n.get() as u64),
            thread_cap: 0,
            config: BTreeMap::new(),
            stages,
            counters: reg.counters.clone(),
            gauges: reg.gauges.clone(),
            histograms,
        }
    }

    /// Adds a configuration key/value to the manifest.
    pub fn with_config(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.config.insert(key.to_owned(), value.to_string());
        self
    }

    /// Records the effective worker-thread cap the run was configured with
    /// (e.g. `breval_par::max_threads()`).
    #[must_use]
    pub fn with_thread_cap(mut self, cap: u64) -> Self {
        self.thread_cap = cap;
        self
    }

    /// Pretty-printed JSON.
    ///
    /// # Panics
    /// Never in practice: the manifest contains only JSON-safe types.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Renders a fixed-width human-readable stage table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run manifest: scenario={} seed={}\n",
            self.scenario, self.seed
        ));
        for (k, v) in &self.config {
            out.push_str(&format!("  config {k} = {v}\n"));
        }
        out.push_str(&format!(
            "{:<44} {:>6} {:>12} {:>10} {:>12}  counters\n",
            "stage", "calls", "wall_ms", "allocs", "alloc_bytes"
        ));
        for stage in &self.stages {
            let counters = stage
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{:<44} {:>6} {:>12.3} {:>10} {:>12}  {}\n",
                stage.name,
                stage.calls,
                stage.wall_ms,
                stage.alloc_count,
                stage.alloc_bytes,
                counters
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge {name} = {value}\n"));
        }
        out
    }

    /// Writes pretty JSON to `path`, creating parent directories.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Convenience epilogue for binaries and examples: when observability is
/// enabled, captures a manifest, writes it to `results/run_manifest.json`
/// (relative to the working directory), and prints the stage table to
/// stderr. No-op when observability is off.
pub fn write_run_manifest(label: &str, seed: u64) {
    if !enabled() {
        return;
    }
    let manifest = RunManifest::capture(label, seed);
    let path = std::path::Path::new("results").join("run_manifest.json");
    match manifest.write_json(&path) {
        Ok(()) => {
            // breval-lint: allow(L005) -- opt-in diagnostics sink (BREVAL_OBS=1); stderr keeps stdout machine-readable
            eprintln!("{}", manifest.render_table());
            // breval-lint: allow(L005) -- opt-in diagnostics sink (BREVAL_OBS=1); stderr keeps stdout machine-readable
            eprintln!("run manifest written to {}", path.display());
        }
        // breval-lint: allow(L005) -- best-effort warning; manifest write failure must not kill an experiment run
        Err(e) => eprintln!("obs: failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The registry and switch are process-global, so tests that touch them
    /// serialise on this lock (shared with `journal::tests`).
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn nested_spans_aggregate_under_parent_paths() {
        let _t = TEST_LOCK.lock();
        set_enabled(true);
        reset();
        {
            let _outer = span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
                counter("widgets", 3);
            }
            {
                let _inner = span!("inner");
                counter("widgets", 2);
            }
        }
        let m = RunManifest::capture("test", 0);
        let names: Vec<&str> = m.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "outer/inner"]);
        let outer = &m.stages[0];
        let inner = &m.stages[1];
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 2);
        // Parent wall time covers its children.
        assert!(outer.wall_ms >= inner.wall_ms);
        assert!(inner.wall_ms > 0.0);
        // Counters attribute to the innermost active span and to the total.
        assert_eq!(inner.counters.get("widgets"), Some(&5));
        assert_eq!(counter_value("widgets"), 5);
        set_enabled(false);
    }

    #[test]
    fn adopted_context_nests_spans_and_counters_across_threads() {
        let _t = TEST_LOCK.lock();
        set_enabled(true);
        reset();
        {
            let _outer = span!("outer");
            let parent = current_path();
            assert_eq!(parent.as_deref(), Some("outer"));
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _ctx = adopt_context(parent.as_deref());
                    let _inner = span!("inner");
                    counter("widgets", 4);
                });
            });
        }
        let m = RunManifest::capture("test", 0);
        let names: Vec<&str> = m.stages.iter().map(|s| s.name.as_str()).collect();
        // The worker's span nested under the adopted path; adoption itself
        // recorded no extra stage.
        assert_eq!(names, vec!["outer", "outer/inner"]);
        let inner = &m.stages[1];
        assert_eq!(inner.calls, 1);
        assert_eq!(inner.counters.get("widgets"), Some(&4));
        // span_wall_ms reads the recorded accumulations.
        assert!(span_wall_ms("outer") > 0.0);
        assert!(span_wall_ms("outer/inner") > 0.0);
        assert_eq!(span_wall_ms("no_such_path"), 0.0);
        set_enabled(false);
    }

    #[test]
    fn adopt_context_is_inert_when_disabled_or_parentless() {
        let _t = TEST_LOCK.lock();
        set_enabled(true);
        reset();
        {
            let _ctx = adopt_context(None);
            assert_eq!(current_path(), None);
        }
        set_enabled(false);
        {
            let _ctx = adopt_context(Some("ghost"));
            let _g = span!("ghost_child");
        }
        set_enabled(true);
        let m = RunManifest::capture("test", 0);
        assert!(m.stages.is_empty());
        set_enabled(false);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let _t = TEST_LOCK.lock();
        set_enabled(true);
        reset();
        // 0 → bucket upper 0; 1 → upper 1; 2,3 → upper 3; 4 → upper 7.
        for v in [0, 1, 2, 3, 4] {
            histogram_record("sizes", v);
        }
        let m = RunManifest::capture("test", 0);
        let h = &m.histograms["sizes"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 10);
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1)]);
        set_enabled(false);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _t = TEST_LOCK.lock();
        set_enabled(false);
        reset();
        {
            let _g = span!("ghost");
            counter("ghost_counter", 7);
            gauge_set("ghost_gauge", 1.0);
            histogram_record("ghost_hist", 9);
        }
        set_enabled(true);
        let m = RunManifest::capture("test", 0);
        assert!(m.stages.is_empty());
        assert!(m.counters.is_empty());
        assert!(m.gauges.is_empty());
        assert!(m.histograms.is_empty());
        assert_eq!(counter_value("ghost_counter"), 0);
        set_enabled(false);
    }

    #[test]
    fn manifest_serializes_and_renders() {
        let _t = TEST_LOCK.lock();
        set_enabled(true);
        reset();
        {
            let _g = span!("stage_a");
            counter("items", 4);
        }
        gauge_set("ratio", 0.5);
        let m = RunManifest::capture("unit", 42).with_config("mode", "small");
        let json = m.to_json();
        assert!(json.contains("\"scenario\": \"unit\""));
        assert!(json.contains("\"stage_a\""));
        assert!(json.contains("\"items\": 4"));
        let table = m.render_table();
        assert!(table.contains("stage_a"));
        assert!(table.contains("items=4"));
        assert!(table.contains("config mode = small"));
        set_enabled(false);
    }
}
