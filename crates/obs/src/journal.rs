//! Event journal: per-thread append-only buffers of span-begin / span-end /
//! counter events, drained at run end into a Chrome `trace_event`-format
//! JSON timeline (`chrome://tracing` / Perfetto).
//!
//! # Design
//!
//! The aggregate registry in the crate root answers "how much, in total?";
//! the journal answers "when, and on which thread?". Every thread that
//! records an event lazily registers one [`ThreadBuf`] — an append-only
//! `Vec<Event>` behind a mutex that only the owning thread and the drain
//! contend on — in a global list. Recording an event is: one relaxed
//! atomic load (the journal switch), one monotonic-clock read against the
//! process [`epoch`], two thread-local allocation-counter reads, and a
//! `Vec::push`. No event is ever written when the journal is off, so the
//! aggregate-only configuration keeps its old cost.
//!
//! Timestamps exist only inside this crate (lint L004): other crates read
//! time through [`clock_ns`], which returns nanoseconds since the process
//! epoch and a constant `0` when observability is off — callers therefore
//! cannot observe wall-clock without opting into observability.
//!
//! # Drain model
//!
//! Nothing is written during the run. [`write_trace_json`] snapshots every
//! thread's buffer, pairs `Begin`/`End` events (they nest LIFO per thread —
//! guards are RAII), and emits one complete (`"ph":"X"`) trace event per
//! span slice with its allocation delta in `args`, plus `"M"` metadata
//! naming each thread track. The writer hand-serialises JSON so the trace
//! format does not depend on the vendored serde's feature set.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::enabled;

/// Environment variable controlling the journal switch (`1`/`true`/`on`
/// enables; requires `BREVAL_OBS` to be on as well).
pub const JOURNAL_ENV_VAR: &str = "BREVAL_OBS_JOURNAL";

/// `JOURNAL` values: 0 = uninitialised, 1 = off, 2 = on.
static JOURNAL: AtomicU8 = AtomicU8::new(0);

/// Whether the event journal is on. Always false while observability as a
/// whole is off: the journal is a refinement of the registry, not a
/// separate instrument.
#[inline]
pub fn journal_enabled() -> bool {
    if !enabled() {
        return false;
    }
    match JOURNAL.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var(JOURNAL_ENV_VAR) {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off"),
        Err(_) => false,
    };
    JOURNAL.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces the journal switch on or off, overriding `BREVAL_OBS_JOURNAL`.
pub fn set_journal_enabled(on: bool) {
    JOURNAL.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process time origin for all journal timestamps.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch, or `0` when observability is off.
///
/// This is the one sanctioned monotonic-clock reader for crates outside
/// `crates/obs` (lint L004 bans `std::time` elsewhere): `breval-par` times
/// `parallel_map` items through it. The zero-when-disabled contract means
/// no code path can smuggle timing into outputs without `BREVAL_OBS` set.
#[must_use]
pub fn clock_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One journal record. Alloc fields are absolute per-thread samples
/// (`counting_alloc` thread-locals); the drain computes deltas.
enum Event {
    Begin {
        ts_ns: u64,
        name: String,
        allocs: u64,
        bytes: u64,
    },
    End {
        ts_ns: u64,
        allocs: u64,
        bytes: u64,
    },
    Counter {
        ts_ns: u64,
        name: String,
        delta: u64,
    },
}

/// One thread's append-only event buffer. The mutex is uncontended in the
/// steady state (only the owning thread pushes); the drain locks each
/// buffer once at run end.
struct ThreadBuf {
    tid: u64,
    name: String,
    events: Mutex<Vec<Event>>,
}

/// All buffers ever registered, in thread-registration order. Buffers are
/// kept alive past thread exit so the drain sees completed workers.
static THREAD_BUFS: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static MY_BUF: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

fn with_buf(f: impl FnOnce(&ThreadBuf)) {
    MY_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                name: std::thread::current()
                    .name()
                    .unwrap_or("unnamed")
                    .to_owned(),
                events: Mutex::new(Vec::new()),
            });
            THREAD_BUFS.lock().push(Arc::clone(&buf));
            buf
        });
        f(buf);
    });
}

/// Records a span-begin for the calling thread. `allocs`/`bytes` are the
/// thread's absolute allocation counters at entry.
pub(crate) fn record_begin(path: &str, allocs: u64, bytes: u64) {
    let ts_ns = clock_ns();
    with_buf(|buf| {
        buf.events.lock().push(Event::Begin {
            ts_ns,
            name: path.to_owned(),
            allocs,
            bytes,
        });
    });
}

/// Records a span-end for the calling thread (pairs with the most recent
/// unmatched begin on the same thread).
pub(crate) fn record_end(allocs: u64, bytes: u64) {
    let ts_ns = clock_ns();
    with_buf(|buf| {
        buf.events.lock().push(Event::End {
            ts_ns,
            allocs,
            bytes,
        });
    });
}

/// Records a counter increment as an instant event.
pub(crate) fn record_counter(name: &str, delta: u64) {
    let ts_ns = clock_ns();
    with_buf(|buf| {
        buf.events.lock().push(Event::Counter {
            ts_ns,
            name: name.to_owned(),
            delta,
        });
    });
}

/// Discards all journaled events (buffers stay registered). Called by
/// [`crate::reset`] so a fresh run starts with an empty timeline.
pub(crate) fn journal_reset() {
    for buf in THREAD_BUFS.lock().iter() {
        buf.events.lock().clear();
    }
}

/// Appends `s` JSON-escaped (without surrounding quotes) to `out`.
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Microseconds with sub-microsecond precision, as Chrome's `ts`/`dur`
/// fields expect.
fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Renders the journal as a Chrome `trace_event`-format JSON document
/// (object form: `{"traceEvents": [...]}`) without consuming the buffers.
///
/// Per thread track: one `"M"` `thread_name` metadata event, one `"X"`
/// complete event per begin/end pair (with `allocs` / `alloc_bytes` deltas
/// in `args`), and one `"i"` instant event per counter increment. Open
/// spans (begin without end at drain time) are dropped.
#[must_use]
pub fn trace_json() -> String {
    let bufs: Vec<Arc<ThreadBuf>> = THREAD_BUFS.lock().clone();
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push_event = |out: &mut String, body: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(body);
    };
    for buf in &bufs {
        let events = buf.events.lock();
        if events.is_empty() {
            continue;
        }
        let mut meta = String::new();
        meta.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"",
            buf.tid
        ));
        push_escaped(&mut meta, &buf.name);
        meta.push_str("\"}}");
        push_event(&mut out, &meta);
        // Begin/End pair LIFO per thread (RAII guards), so a simple stack
        // of open begins reconstructs the slices.
        let mut open: Vec<(&str, u64, u64, u64)> = Vec::new();
        for ev in events.iter() {
            match ev {
                Event::Begin {
                    ts_ns,
                    name,
                    allocs,
                    bytes,
                } => open.push((name, *ts_ns, *allocs, *bytes)),
                Event::End {
                    ts_ns,
                    allocs,
                    bytes,
                } => {
                    let Some((name, t0, a0, b0)) = open.pop() else {
                        continue; // unmatched end: guard from a pre-drain run
                    };
                    let mut e = String::new();
                    e.push_str(&format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"name\":\"",
                        buf.tid,
                        us(t0),
                        us(ts_ns.saturating_sub(t0)),
                    ));
                    push_escaped(&mut e, name);
                    e.push_str(&format!(
                        "\",\"args\":{{\"allocs\":{},\"alloc_bytes\":{}}}}}",
                        allocs.saturating_sub(a0),
                        bytes.saturating_sub(b0),
                    ));
                    push_event(&mut out, &e);
                }
                Event::Counter { ts_ns, name, delta } => {
                    let mut e = String::new();
                    e.push_str(&format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"name\":\"",
                        buf.tid,
                        us(*ts_ns),
                    ));
                    push_escaped(&mut e, name);
                    e.push_str(&format!("\",\"args\":{{\"delta\":{delta}}}}}"));
                    push_event(&mut out, &e);
                }
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Writes [`trace_json`] to `path`, creating parent directories.
pub fn write_trace_json(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The journal, like the registry, is process-global; tests here reuse
    // the crate-level TEST_LOCK through the public API where possible.

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn clock_is_zero_when_disabled_and_monotone_when_on() {
        let _t = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(false);
        assert_eq!(clock_ns(), 0);
        crate::set_enabled(true);
        let a = clock_ns();
        let b = clock_ns();
        assert!(b >= a, "journal clock must be monotone");
        crate::set_enabled(false);
    }

    #[test]
    fn journal_records_nested_slices_and_counters() {
        let _t = crate::tests::TEST_LOCK.lock();
        crate::set_enabled(true);
        crate::set_journal_enabled(true);
        crate::reset();
        {
            let _outer = crate::span("jouter");
            crate::counter("jwidgets", 2);
            {
                let _inner = crate::span("jinner");
            }
            {
                let _w = crate::journal_span("jworker");
            }
        }
        let json = trace_json();
        crate::set_journal_enabled(false);
        crate::set_enabled(false);
        // One complete event per span slice, full paths as names, plus the
        // counter instant event and the thread-name metadata.
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"jouter\""));
        assert!(json.contains("\"name\":\"jouter/jinner\""));
        assert!(json.contains("\"name\":\"jouter/jworker\""));
        assert!(json.contains("\"name\":\"jwidgets\""));
        assert!(json.contains("\"delta\":2"));
        assert!(json.contains("\"ph\":\"X\""));
        // Resetting clears the timeline.
        crate::reset();
        let empty = trace_json();
        assert!(!empty.contains("jouter"));
    }
}
