//! Generator configuration.

use asregistry::RirRegion;
use serde::{Deserialize, Serialize};

/// Per-region scalar knob (indexed in [`RirRegion::ALL`] order:
/// AF, AP, AR, L, R).
pub type PerRegion = [f64; 5];

/// Returns the entry of a [`PerRegion`] array for `region`.
#[must_use]
pub fn per_region(values: &PerRegion, region: RirRegion) -> f64 {
    let idx = RirRegion::ALL
        .iter()
        .position(|r| *r == region)
        .expect("RirRegion::ALL is exhaustive");
    values[idx]
}

/// Full generator configuration. `Default` produces the paper-scale scenario
/// used by the experiment harness (≈12k ASes, ≈45k links).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// RNG seed; every run with the same config is bit-identical.
    pub seed: u64,

    // ---- population sizes -------------------------------------------------
    /// Number of Tier-1 (clique) ASes. The first 12 use well-known ASNs.
    pub n_tier1: usize,
    /// Number of transit ASes below the clique.
    pub n_transit: usize,
    /// Number of stub ASes.
    pub n_stub: usize,
    /// Number of hypergiants (large content networks).
    pub n_hypergiant: usize,
    /// Number of special stubs (anycast DNS / research / cloud / CDN) that
    /// peer directly with Tier-1s.
    pub n_special_stub: usize,

    // ---- regional structure ----------------------------------------------
    /// Share of transit+stub ASes per region (AF, AP, AR, L, R order).
    pub region_weights: PerRegion,
    /// Probability that a 16-bit pool is exhausted for a new AS in the region,
    /// i.e. the AS receives a 32-bit ASN (AF, AP, AR, L, R order).
    pub four_byte_asn_prob: PerRegion,
    /// Probability that a customer picks a provider outside its own region.
    pub cross_region_provider_prob: f64,
    /// Number of IXP-style peering meshes per region (AF, AP, AR, L, R order).
    pub ixps_per_region: [usize; 5],
    /// Mean number of peering partners an IXP member picks at one IXP
    /// (AF, AP, AR, L, R order). LACNIC and RIPE are dense.
    pub ixp_peering_degree: PerRegion,
    /// Fraction of IXP members that are stubs (the rest are transits).
    pub ixp_stub_share: f64,
    /// Fraction of ASNs later transferred to a different RIR (delegation-file
    /// refinement exercises the §5 mapping).
    pub transfer_prob: f64,

    // ---- hierarchy shape ---------------------------------------------------
    /// Fraction of transit ASes that are "large" (directly below the clique).
    pub large_transit_share: f64,
    /// Probability that a stub connects directly to a Tier-1 as a customer.
    pub stub_direct_t1_prob: f64,
    /// Probability that each provider slot of a small transit goes directly
    /// to a Tier-1.
    pub transit_direct_t1_prob: f64,
    /// Preferential-attachment damping exponent (1.0 = classic Barabási;
    /// lower spreads customers across providers). Tier-1s must end up with
    /// the highest transit degrees, as in the real Internet.
    pub pa_exponent: f64,
    /// Mean provider count for stubs (≥1; multihoming).
    pub stub_mean_providers: f64,
    /// Mean provider count for small transit ASes.
    pub transit_mean_providers: f64,

    // ---- hypergiants -------------------------------------------------------
    /// Mean number of *other* large transits a large transit peers with
    /// globally (private interconnects between regional carriers).
    pub large_transit_peering: f64,
    /// Mean number of global peerings for smaller transit ASes.
    pub small_transit_peering: f64,
    /// Mean number of transit ASes a hypergiant peers with.
    pub hypergiant_transit_peers: f64,
    /// Mean number of stubs a hypergiant peers with.
    pub hypergiant_stub_peers: f64,
    /// Probability a hypergiant peers with any given Tier-1.
    pub hypergiant_t1_peer_prob: f64,

    // ---- complex relationships (§4.2 / §6.1) -------------------------------
    /// Fraction of the Cogent-like Tier-1's transit customers on a
    /// partial-transit contract (scoped export, `174:990`-style tagging).
    pub cogent_partial_transit_share: f64,
    /// Same for the other Tier-1s (much rarer).
    pub t1_partial_transit_share: f64,
    /// Extra partial-transit probability for cross-region P2C links whose
    /// customer is in LACNIC (the `AR-L` degradation mechanism).
    pub lacnic_partial_transit_share: f64,
    /// Fraction of transit-transit peering links that are per-PoP hybrid.
    pub hybrid_link_share: f64,
    /// Fraction of ASes that belong to a multi-AS organisation.
    pub sibling_as_share: f64,

    // ---- validation-source behaviour ---------------------------------------
    /// Probability that an AS documents its BGP communities publicly
    /// (AF, AP, AR, L, R order). This is the root cause of coverage bias.
    pub publish_prob_region: PerRegion,
    /// Absolute publication probability for Tier-1s (region-independent:
    /// every Tier-1 runs a documented NOC).
    pub publish_prob_tier1: f64,
    /// Multiplier for transit ASes with at least
    /// [`TopologyConfig::publish_large_customer_threshold`] customers —
    /// big carriers run documented NOCs.
    pub publish_mult_large_transit: f64,
    /// Multiplier for smaller transit ASes.
    pub publish_mult_transit: f64,
    /// Multiplier for stubs.
    pub publish_mult_stub: f64,
    /// Multiplier for hypergiants.
    pub publish_mult_hypergiant: f64,
    /// Customer-count threshold separating large from small transits for
    /// publication purposes.
    pub publish_large_customer_threshold: usize,

    // ---- vantage points -----------------------------------------------------
    /// Number of collector-peer vantage points.
    pub n_vantage_points: usize,
    /// Share of vantage points per region (AF, AP, AR, L, R order) —
    /// collector infrastructure is R/AR-heavy in reality.
    pub vp_region_weights: PerRegion,
    /// Fraction of VPs that are stubs rather than transits.
    pub vp_stub_share: f64,
    /// Number of hypergiants peering with the collector (Google, Cloudflare
    /// etc. feed RouteViews in reality).
    pub vp_hypergiants: usize,
    /// Fraction of VPs whose collector session is 16-bit-only (`AS_TRANS`
    /// artefact source).
    pub vp_two_byte_share: f64,
    /// Fraction of VPs that export full tables (the rest export partial
    /// feeds: only customer routes).
    pub vp_full_feed_share: f64,

    // ---- misc ---------------------------------------------------------------
    /// Mean number of prefixes an AS originates.
    pub mean_prefixes_per_as: f64,
    /// Mean number of prefixes a *transit* AS originates (transits hold more
    /// address space and engineer it per prefix).
    pub transit_mean_prefixes: f64,
    /// Probability that a multihomed AS pins one of its prefixes to a single
    /// provider (per-prefix traffic engineering). This is what exposes each
    /// provider link of a multihomed AS on collector-visible best paths.
    pub te_pin_prob: f64,
    /// Probability that a LACNIC AS uses heavy path prepending (Marcos et al.
    /// report strong regional differences).
    pub lacnic_prepend_prob: f64,
    /// Baseline prepending probability elsewhere.
    pub base_prepend_prob: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 2018,

            n_tier1: 12,
            n_transit: 1700,
            n_stub: 9200,
            n_hypergiant: 12,
            n_special_stub: 22,

            //                 AF     AP     AR     L      R
            region_weights: [0.06, 0.16, 0.18, 0.16, 0.44],
            four_byte_asn_prob: [0.50, 0.35, 0.10, 0.60, 0.45],
            cross_region_provider_prob: 0.13,
            ixps_per_region: [1, 3, 4, 4, 9],
            ixp_peering_degree: [5.0, 8.0, 9.0, 13.0, 11.0],
            ixp_stub_share: 0.45,
            transfer_prob: 0.012,

            large_transit_share: 0.16,
            stub_direct_t1_prob: 0.26,
            transit_direct_t1_prob: 0.45,
            pa_exponent: 0.6,
            stub_mean_providers: 1.6,
            transit_mean_providers: 2.1,

            large_transit_peering: 7.0,
            small_transit_peering: 0.9,
            hypergiant_transit_peers: 95.0,
            hypergiant_stub_peers: 40.0,
            hypergiant_t1_peer_prob: 0.10,

            cogent_partial_transit_share: 0.25,
            t1_partial_transit_share: 0.015,
            lacnic_partial_transit_share: 0.13,
            hybrid_link_share: 0.03,
            sibling_as_share: 0.035,

            //                    AF     AP     AR     L       R
            publish_prob_region: [0.04, 0.08, 0.70, 0.006, 0.27],
            publish_prob_tier1: 0.85,
            publish_mult_large_transit: 0.50,
            publish_mult_transit: 0.08,
            publish_mult_stub: 0.04,
            publish_mult_hypergiant: 0.50,
            publish_large_customer_threshold: 10,

            n_vantage_points: 240,
            //                  AF     AP     AR     L      R
            vp_region_weights: [0.02, 0.10, 0.33, 0.03, 0.52],
            vp_stub_share: 0.22,
            vp_hypergiants: 2,
            vp_two_byte_share: 0.08,
            vp_full_feed_share: 0.75,

            mean_prefixes_per_as: 1.0,
            transit_mean_prefixes: 3.0,
            te_pin_prob: 0.65,
            lacnic_prepend_prob: 0.45,
            base_prepend_prob: 0.12,
        }
    }
}

impl TopologyConfig {
    /// A small configuration for unit/integration tests (≈1.3k ASes); keeps
    /// every mechanism active but runs in milliseconds.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        TopologyConfig {
            seed,
            n_tier1: 8,
            n_transit: 220,
            n_stub: 1000,
            n_hypergiant: 6,
            n_special_stub: 10,
            ixps_per_region: [1, 1, 2, 2, 3],
            n_vantage_points: 60,
            ..TopologyConfig::default()
        }
    }

    /// A scale-tier configuration with `total` ASes (used by `scalebench` at
    /// 10k / 100k / 1M). Keeps the default mechanism knobs; only the
    /// population scales: ~15 % transits, the rest stubs. Per-region ASN
    /// *extension* pools absorb populations beyond the base registry pools.
    #[must_use]
    pub fn scaled(total: usize, seed: u64) -> Self {
        let n_tier1 = 16;
        let n_hypergiant = 15;
        let n_special_stub = 30;
        let fixed = n_tier1 + n_hypergiant + n_special_stub;
        let n_transit = (((total.saturating_sub(fixed)) as f64) * 0.15).round() as usize;
        let n_stub = total.saturating_sub(fixed + n_transit);
        TopologyConfig {
            seed,
            n_tier1,
            n_transit,
            n_stub,
            n_hypergiant,
            n_special_stub,
            n_vantage_points: 300,
            ..TopologyConfig::default()
        }
    }

    /// Total AS count implied by the population knobs.
    #[must_use]
    pub fn total_ases(&self) -> usize {
        self.n_tier1 + self.n_transit + self.n_stub + self.n_hypergiant + self.n_special_stub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        let c = TopologyConfig::default();
        assert!(c.total_ases() > 10_000);
        assert!((c.region_weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((c.vp_region_weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_region_indexing() {
        let v: PerRegion = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(per_region(&v, RirRegion::Afrinic), 1.0);
        assert_eq!(per_region(&v, RirRegion::Apnic), 2.0);
        assert_eq!(per_region(&v, RirRegion::Arin), 3.0);
        assert_eq!(per_region(&v, RirRegion::Lacnic), 4.0);
        assert_eq!(per_region(&v, RirRegion::RipeNcc), 5.0);
    }

    #[test]
    fn small_config_is_smaller() {
        assert!(TopologyConfig::small(1).total_ases() < TopologyConfig::default().total_ases());
    }

    #[test]
    fn scaled_config_hits_requested_total() {
        for total in [10_000usize, 100_000, 1_000_000] {
            let c = TopologyConfig::scaled(total, 1);
            assert_eq!(c.total_ases(), total);
            assert!(c.n_stub > c.n_transit);
        }
    }
}
