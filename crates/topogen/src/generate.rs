//! The topology generator.
//!
//! Construction order guarantees an acyclic provider hierarchy: Tier-1s first,
//! then large transits, small transits, hypergiants, special stubs, stubs —
//! every customer only ever selects providers created before it.
//!
//! The builder is **streaming**: links are emitted into the output map as
//! they are decided, provider candidates live in resident weighted pools
//! ([`crate::picker::PoolSet`]) instead of per-AS cloned candidate vectors,
//! and the relationship post-passes (partial transit, hybrid links) rewrite
//! the link map in place instead of materialising O(E) snapshots. Output is
//! byte-identical to the pre-streaming builder at every seed and size the
//! shipped configs reach (`tests/byteident.rs` pins the digests).

use crate::alloc::AsnAllocator;
use crate::config::{per_region, TopologyConfig};
use crate::model::{AsInfo, CollectorPeer, SpecialRole, TierClass, Topology};
use crate::picker::{
    pool_stub_region, pool_transit_region, PoolSet, POOL_ALL_TRANSIT, POOL_LARGE_TRANSIT,
};
use asgraph::{Asn, GtRel, Link, Rel};
use asregistry::{org::OrgId, RirRegion};
use bgpwire::Ipv4Prefix;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Well-known Tier-1 ASNs used for the first clique members (flavour +
/// stable case-study targets; AS174 is the Cogent-like partial-transit AS).
const KNOWN_TIER1: [(u32, RirRegion); 12] = [
    (174, RirRegion::Arin),
    (701, RirRegion::Arin),
    (1299, RirRegion::RipeNcc),
    (2914, RirRegion::Arin),
    (3257, RirRegion::RipeNcc),
    (3320, RirRegion::RipeNcc),
    (3356, RirRegion::Arin),
    (3491, RirRegion::Arin),
    (5511, RirRegion::RipeNcc),
    (6453, RirRegion::Arin),
    (6461, RirRegion::Arin),
    (7018, RirRegion::Arin),
];

/// Well-known hypergiant ASNs (content networks).
const KNOWN_HYPERGIANTS: [(u32, RirRegion); 12] = [
    (15169, RirRegion::Arin),
    (16509, RirRegion::Arin),
    (8075, RirRegion::Arin),
    (20940, RirRegion::RipeNcc),
    (13335, RirRegion::Arin),
    (2906, RirRegion::Arin),
    (22822, RirRegion::Arin),
    (54113, RirRegion::Arin),
    (32934, RirRegion::Arin),
    (16276, RirRegion::RipeNcc),
    (714, RirRegion::Arin),
    (46489, RirRegion::Arin),
];

fn region_idx(region: RirRegion) -> usize {
    RirRegion::ALL
        .iter()
        .position(|r| *r == region)
        .expect("RirRegion::ALL is exhaustive")
}

/// Reusable DFS scratch for the sibling-stage provider-cycle check: the
/// `ConeScratch` epoch trick — bumping the epoch invalidates the whole
/// visited array in O(1), so thousands of reachability queries share one
/// allocation.
struct ReachScratch {
    visited: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
}

impl ReachScratch {
    fn new(n: usize) -> Self {
        ReachScratch {
            visited: vec![0; n],
            epoch: 0,
            stack: Vec::new(),
        }
    }

    /// `true` if `to` is reachable from `from` over `adj` (provider→customer
    /// edges). Same answer as an exhaustive set-based DFS; consumes no RNG.
    fn reaches(&mut self, adj: &[Vec<u32>], from: u32, to: u32) -> bool {
        if self.epoch == u32::MAX {
            self.visited.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.stack.clear();
        self.stack.push(from);
        while let Some(cur) = self.stack.pop() {
            if cur == to {
                return true;
            }
            let i = cur as usize;
            if self.visited[i] == self.epoch {
                continue;
            }
            self.visited[i] = self.epoch;
            self.stack.extend(&adj[i]);
        }
        false
    }
}

struct Builder<'c> {
    cfg: &'c TopologyConfig,
    rng: ChaCha8Rng,
    alloc: AsnAllocator,
    ases: BTreeMap<Asn, AsInfo>,
    links: BTreeMap<Link, GtRel>,
    customer_count: BTreeMap<Asn, usize>,
    pools: PoolSet,
    prefix_counter: u32,
    org_counter: u32,
    // Populated by the stages, consumed by the finish step.
    tier1: Vec<Asn>,
    cogent: Asn,
    n_large_transit: usize,
    hypergiants: Vec<Asn>,
    all_stubs: Vec<Asn>,
    ixps: Vec<crate::model::Ixp>,
}

impl<'c> Builder<'c> {
    fn new(cfg: &'c TopologyConfig) -> Self {
        let reserved: Vec<Asn> = KNOWN_TIER1
            .iter()
            .chain(KNOWN_HYPERGIANTS.iter())
            .map(|(a, _)| Asn(*a))
            .collect();
        Builder {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            alloc: AsnAllocator::new(&reserved),
            ases: BTreeMap::new(),
            links: BTreeMap::new(),
            customer_count: BTreeMap::new(),
            pools: PoolSet::new(),
            prefix_counter: 0,
            org_counter: 0,
            tier1: Vec::new(),
            cogent: Asn(0),
            n_large_transit: 0,
            hypergiants: Vec::new(),
            all_stubs: Vec::new(),
            ixps: Vec::new(),
        }
    }

    /// Poisson-ish count: Knuth for small means, normal approximation above.
    fn sample_count(&mut self, mean: f64) -> usize {
        if mean <= 0.0 {
            return 0;
        }
        if mean < 25.0 {
            let l = (-mean).exp();
            let mut k = 0usize;
            let mut p = 1.0;
            loop {
                p *= self.rng.random::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
                if k > 1000 {
                    return k;
                }
            }
        } else {
            // Box–Muller normal approximation.
            let u1: f64 = self.rng.random::<f64>().max(1e-12);
            let u2: f64 = self.rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mean + mean.sqrt() * z).round().max(0.0) as usize
        }
    }

    fn sample_region(&mut self) -> RirRegion {
        let x: f64 = self.rng.random();
        let mut acc = 0.0;
        for (i, r) in RirRegion::ALL.into_iter().enumerate() {
            acc += self.cfg.region_weights[i];
            if x < acc {
                return r;
            }
        }
        RirRegion::RipeNcc
    }

    fn sample_vp_region(&mut self) -> RirRegion {
        let x: f64 = self.rng.random();
        let mut acc = 0.0;
        for (i, r) in RirRegion::ALL.into_iter().enumerate() {
            acc += self.cfg.vp_region_weights[i];
            if x < acc {
                return r;
            }
        }
        RirRegion::RipeNcc
    }

    fn sample_country(&mut self, region: RirRegion) -> String {
        let codes = region.country_codes();
        codes[self.rng.random_range(0..codes.len())].to_owned()
    }

    fn next_org(&mut self) -> OrgId {
        self.org_counter += 1;
        OrgId(format!("@org-{:05}", self.org_counter))
    }

    fn next_prefixes(&mut self, mean: f64) -> Vec<Ipv4Prefix> {
        let n = (1 + self.sample_count((mean - 1.0).max(0.0))).min(8);
        (0..n)
            .map(|_| {
                self.prefix_counter += 1;
                // Lay prefixes out as /24s starting at 1.0.0.0.
                Ipv4Prefix::new(0x0100_0000 + self.prefix_counter * 256, 24).expect("24 ≤ 32")
            })
            .collect()
    }

    /// Publication probability given the AS's final size — run as a
    /// post-pass once customer counts are known: community documentation is
    /// a big-carrier habit.
    fn publish_probability(&self, region: RirRegion, tier: TierClass, customers: usize) -> f64 {
        if tier == TierClass::Tier1 {
            return self.cfg.publish_prob_tier1.clamp(0.0, 1.0);
        }
        let base = per_region(&self.cfg.publish_prob_region, region);
        let mult = match tier {
            // breval-lint: allow(L009) -- Tier1 is early-returned above; exhaustive-match invariant
            TierClass::Tier1 => unreachable!("handled above"),
            TierClass::Transit => {
                if customers >= self.cfg.publish_large_customer_threshold {
                    self.cfg.publish_mult_large_transit
                } else {
                    self.cfg.publish_mult_transit
                }
            }
            TierClass::Stub => self.cfg.publish_mult_stub,
            TierClass::Hypergiant => self.cfg.publish_mult_hypergiant,
        };
        (base * mult).clamp(0.0, 1.0)
    }

    /// Creates an AS. `fixed_asn` pins a well-known number; otherwise the
    /// allocator draws from the regional pools (possibly in a *different*
    /// region when the ASN was transferred).
    fn create_as(
        &mut self,
        region: RirRegion,
        tier: TierClass,
        special: Option<SpecialRole>,
        fixed_asn: Option<Asn>,
    ) -> Asn {
        // Inter-RIR transfer: the ASN was originally allocated elsewhere.
        let allocated_region =
            if fixed_asn.is_none() && self.rng.random_bool(self.cfg.transfer_prob) {
                let others: Vec<RirRegion> = RirRegion::ALL
                    .into_iter()
                    .filter(|r| *r != region)
                    .collect();
                others[self.rng.random_range(0..others.len())]
            } else {
                region
            };
        let asn = match fixed_asn {
            Some(a) => a,
            None => {
                let p4 = per_region(&self.cfg.four_byte_asn_prob, allocated_region);
                self.alloc
                    .allocate(allocated_region, p4, &mut self.rng)
                    .expect("ASN pools sized for the configured population")
            }
        };
        let country = self.sample_country(region);
        let org = self.next_org();
        // Decided by the post-pass once sizes are known.
        let publishes_communities = false;
        let prepend_p = if region == RirRegion::Lacnic {
            self.cfg.lacnic_prepend_prob
        } else {
            self.cfg.base_prepend_prob
        };
        // Path prepending is an edge-network TE habit; Tier-1s never prepend
        // (a prepending Tier-1 would systematically hide its customer links
        // from every lateral best path).
        let prepends = tier != TierClass::Tier1 && self.rng.random_bool(prepend_p);
        let mean_prefixes = match tier {
            TierClass::Transit | TierClass::Tier1 => self.cfg.transit_mean_prefixes,
            _ => self.cfg.mean_prefixes_per_as,
        };
        let prefixes = self.next_prefixes(mean_prefixes);
        // Routing-hygiene behaviour flags (Appendix C feature 12): MANRS
        // membership correlates with running a documented NOC; serial
        // hijacking is rare and concentrated among small networks.
        let manrs = self.rng.random_bool(match tier {
            TierClass::Tier1 => 0.6,
            TierClass::Transit => 0.18,
            TierClass::Hypergiant => 0.5,
            TierClass::Stub => 0.05,
        });
        let hijacker = tier == TierClass::Stub && self.rng.random_bool(0.004);
        self.ases.insert(
            asn,
            AsInfo {
                asn,
                region,
                allocated_region,
                country,
                org,
                tier,
                special,
                prefix_te: vec![None; prefixes.len()],
                prefixes,
                publishes_communities,
                prepends,
                manrs,
                hijacker,
            },
        );
        asn
    }

    /// The preferential-attachment weight of `asn` — the exact expression
    /// the pre-streaming builder evaluated per candidate on every pick; now
    /// evaluated once per customer-count change and cached in the pools.
    fn weight_of(&self, asn: Asn) -> f64 {
        let count = self.customer_count.get(&asn).copied().unwrap_or(0);
        ((count + 1) as f64).powf(self.cfg.pa_exponent)
    }

    /// Adds a link unless it already exists (first relationship wins).
    fn add_link(&mut self, a: Asn, b: Asn, rel: GtRel) -> bool {
        let Some(link) = Link::new(a, b) else {
            return false;
        };
        if self.links.contains_key(&link) {
            return false;
        }
        if let Rel::P2c { provider } = rel.base {
            if link.other(provider).is_some() {
                *self.customer_count.entry(provider).or_insert(0) += 1;
                let w = self.weight_of(provider);
                self.pools.set_weight(provider, w);
            }
        }
        self.links.insert(link, rel);
        true
    }

    fn p2c(&mut self, provider: Asn, customer: Asn) -> bool {
        self.add_link(provider, customer, GtRel::simple(Rel::P2c { provider }))
    }

    fn p2p(&mut self, a: Asn, b: Asn) -> bool {
        self.add_link(a, b, GtRel::simple(Rel::P2p))
    }

    /// Registers `asn` in pool `pool` with its current weight.
    fn enroll(&mut self, pool: usize, asn: Asn) {
        let w = self.weight_of(asn);
        self.pools.push(pool, asn, w);
    }

    /// Emits a full settlement-free mesh over `members` — bounded by the
    /// member count (used for the Tier-1 clique only).
    fn emit_clique(&mut self, members: &[Asn]) {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                self.p2p(members[i], members[j]);
            }
        }
    }

    /// Emits a sparse Poisson mesh: each member draws ~`degree` random
    /// partners. Link count is O(members × degree), never the full mesh.
    fn emit_poisson_mesh(&mut self, members: &[Asn], degree: f64) {
        let m = members.len();
        for i in 0..m {
            let k = self.sample_count(degree).min(m - 1);
            for _ in 0..k {
                let j = self.rng.random_range(0..m);
                if i != j {
                    self.p2p(members[i], members[j]);
                }
            }
        }
    }

    // ---- 1. Tier-1 clique ---------------------------------------------------
    fn stage_tier1(&mut self) {
        for i in 0..self.cfg.n_tier1 {
            let asn = if let Some(&(num, region)) = KNOWN_TIER1.get(i) {
                self.create_as(region, TierClass::Tier1, None, Some(Asn(num)))
            } else {
                let region = if i % 2 == 0 {
                    RirRegion::Arin
                } else {
                    RirRegion::RipeNcc
                };
                self.create_as(region, TierClass::Tier1, None, None)
            };
            self.tier1.push(asn);
        }
        // breval-lint: allow(L009) -- the Tier-1 seeding loop requires n_tier1 >= 1 by config contract
        self.cogent = self.tier1[0];
        let clique = self.tier1.clone();
        self.emit_clique(&clique);
    }

    // ---- 2. Transit hierarchy -----------------------------------------------
    fn stage_transits(&mut self) {
        let n_large = ((self.cfg.n_transit as f64) * self.cfg.large_transit_share).round() as usize;
        self.n_large_transit = n_large;
        for i in 0..self.cfg.n_transit {
            let region = self.sample_region();
            let asn = self.create_as(region, TierClass::Transit, None, None);
            if i < n_large {
                // Large transit: 2–3 Tier-1 providers, chosen uniformly.
                let n_prov = 2 + usize::from(self.rng.random_bool(0.5));
                let mut t1_pool = self.tier1.clone();
                t1_pool.shuffle(&mut self.rng);
                for provider in t1_pool.into_iter().take(n_prov) {
                    self.p2c(provider, asn);
                }
                // Many large transits additionally *peer* with Tier-1s they do
                // not buy from (regional incumbents, settlement-free).
                if self.rng.random_bool(0.85) {
                    let n_peerings = 2 + self.sample_count(0.9);
                    for _ in 0..n_peerings {
                        let t1 = self.tier1[self.rng.random_range(0..self.tier1.len())];
                        self.p2p(t1, asn);
                    }
                }
                self.enroll(POOL_LARGE_TRANSIT, asn);
            } else {
                // Small transit: providers among earlier transits (same region
                // preferred) and occasionally a Tier-1 directly.
                let n_prov = (1 + self
                    .sample_count((self.cfg.transit_mean_providers - 1.0).max(0.0)))
                .min(4);
                for _ in 0..n_prov {
                    if self.rng.random_bool(self.cfg.transit_direct_t1_prob) {
                        let t1 = self.tier1[self.rng.random_range(0..self.tier1.len())];
                        self.p2c(t1, asn);
                        continue;
                    }
                    let cross = self.rng.random_bool(self.cfg.cross_region_provider_prob);
                    let pool = if cross {
                        POOL_ALL_TRANSIT
                    } else {
                        pool_transit_region(region_idx(region))
                    };
                    let pool = if self.pools.is_empty(pool) {
                        POOL_LARGE_TRANSIT
                    } else {
                        pool
                    };
                    if let Some(provider) = self.pools.pick(pool, &mut self.rng) {
                        if provider != asn {
                            self.p2c(provider, asn);
                        }
                    }
                }
            }
            self.enroll(pool_transit_region(region_idx(region)), asn);
            self.enroll(POOL_ALL_TRANSIT, asn);
        }
    }

    // ---- 2b. Global peering among transits ----------------------------------
    // Large transits interconnect globally (transatlantic private peering);
    // smaller transits do so occasionally.
    fn stage_transit_peering(&mut self) {
        let n_large = self.n_large_transit;
        for i in 0..n_large {
            let k = self.sample_count(self.cfg.large_transit_peering);
            for _ in 0..k {
                let j = self.rng.random_range(0..n_large);
                if i != j {
                    let (a, b) = (
                        self.pools.items(POOL_LARGE_TRANSIT)[i],
                        self.pools.items(POOL_LARGE_TRANSIT)[j],
                    );
                    self.p2p(a, b);
                }
            }
        }
        // The small transits are exactly the tail of the all-transit pool
        // (large ones were created first), so no O(n²) membership filter.
        let n_all = self.pools.items(POOL_ALL_TRANSIT).len();
        for si in n_large..n_all {
            let s = self.pools.items(POOL_ALL_TRANSIT)[si];
            let k = self.sample_count(self.cfg.small_transit_peering);
            for _ in 0..k {
                let peer = self.pools.items(POOL_ALL_TRANSIT)[self.rng.random_range(0..n_all)];
                if peer != s {
                    self.p2p(s, peer);
                }
            }
        }
    }

    // ---- 3. Hypergiants -----------------------------------------------------
    fn stage_hypergiants(&mut self) {
        for i in 0..self.cfg.n_hypergiant {
            let (region, fixed) = if let Some(&(num, region)) = KNOWN_HYPERGIANTS.get(i) {
                (region, Some(Asn(num)))
            } else {
                (self.sample_region(), None)
            };
            let asn = self.create_as(region, TierClass::Hypergiant, Some(SpecialRole::Cdn), fixed);
            // 1–2 Tier-1 transit providers for global reachability.
            let n_prov = 1 + usize::from(self.rng.random_bool(0.4));
            let mut t1_pool = self.tier1.clone();
            t1_pool.shuffle(&mut self.rng);
            for provider in t1_pool.iter().take(n_prov) {
                self.p2c(*provider, asn);
            }
            // Occasional settlement-free peering with remaining Tier-1s.
            for t1 in &t1_pool[n_prov..] {
                if self.rng.random_bool(self.cfg.hypergiant_t1_peer_prob) {
                    self.p2p(*t1, asn);
                }
            }
            // Dense peering with transits.
            let n_all = self.pools.items(POOL_ALL_TRANSIT).len();
            let n_tr = self
                .sample_count(self.cfg.hypergiant_transit_peers)
                .min(n_all);
            let mut pool = self.pools.items(POOL_ALL_TRANSIT).to_vec();
            pool.shuffle(&mut self.rng);
            for peer in pool.into_iter().take(n_tr) {
                self.p2p(peer, asn);
            }
            self.hypergiants.push(asn);
        }
    }

    // ---- 4. Special stubs (peer with Tier-1s; ground-truth P2P) -------------
    fn stage_special_stubs(&mut self) {
        let roles = [
            SpecialRole::AnycastDns,
            SpecialRole::Research,
            SpecialRole::Cloud,
            SpecialRole::Cdn,
        ];
        for i in 0..self.cfg.n_special_stub {
            let region = self.sample_region();
            let role = roles[i % roles.len()];
            let asn = self.create_as(region, TierClass::Stub, Some(role), None);
            let n_peers = (2 + self.sample_count(1.0)).min(self.tier1.len());
            let mut t1_pool = self.tier1.clone();
            t1_pool.shuffle(&mut self.rng);
            for t1 in t1_pool.iter().take(n_peers) {
                self.p2p(*t1, asn);
            }
            // One transit provider keeps them multi-connected.
            if let Some(provider) = self.pools.pick(POOL_LARGE_TRANSIT, &mut self.rng) {
                self.p2c(provider, asn);
            }
        }
    }

    // ---- 5. Stubs -----------------------------------------------------------
    fn stage_stubs(&mut self) {
        for _ in 0..self.cfg.n_stub {
            let region = self.sample_region();
            let asn = self.create_as(region, TierClass::Stub, None, None);
            let n_prov =
                (1 + self.sample_count((self.cfg.stub_mean_providers - 1.0).max(0.0))).min(4);
            for k in 0..n_prov {
                if k == 0 && self.rng.random_bool(self.cfg.stub_direct_t1_prob) {
                    let t1 = self.tier1[self.rng.random_range(0..self.tier1.len())];
                    self.p2c(t1, asn);
                    continue;
                }
                let cross = self.rng.random_bool(self.cfg.cross_region_provider_prob);
                let pool = if cross {
                    POOL_ALL_TRANSIT
                } else {
                    pool_transit_region(region_idx(region))
                };
                let pool = if self.pools.is_empty(pool) {
                    POOL_ALL_TRANSIT
                } else {
                    pool
                };
                if let Some(provider) = self.pools.pick(pool, &mut self.rng) {
                    self.p2c(provider, asn);
                }
            }
            self.enroll(pool_stub_region(region_idx(region)), asn);
            self.all_stubs.push(asn);
        }
    }

    // ---- 5b. Hypergiant–stub peering (stubs exist only now) ------------------
    fn stage_hypergiant_stub_peering(&mut self) {
        for hi in 0..self.hypergiants.len() {
            let hg = self.hypergiants[hi];
            let k = self
                .sample_count(self.cfg.hypergiant_stub_peers)
                .min(self.all_stubs.len());
            let mut pool = self.all_stubs.clone();
            pool.shuffle(&mut self.rng);
            for stub in pool.into_iter().take(k) {
                self.p2p(hg, stub);
            }
        }
    }

    // ---- 6. IXP peering meshes ----------------------------------------------
    fn stage_ixps(&mut self) {
        for (ri, region) in RirRegion::ALL.into_iter().enumerate() {
            let n_ixps = self.cfg.ixps_per_region[ri];
            if n_ixps == 0 {
                continue;
            }
            let degree = self.cfg.ixp_peering_degree[ri];
            for _ in 0..n_ixps {
                // Membership: most regional transits, a slice of regional
                // stubs.
                let mut members: Vec<Asn> = Vec::new();
                let p = (2.2 / n_ixps as f64).min(1.0);
                let n_transits = self.pools.items(pool_transit_region(ri)).len();
                for ti in 0..n_transits {
                    if self.rng.random_bool(p) {
                        members.push(self.pools.items(pool_transit_region(ri))[ti]);
                    }
                }
                let stub_target = ((members.len() as f64) * self.cfg.ixp_stub_share
                    / (1.0 - self.cfg.ixp_stub_share))
                    .round() as usize;
                let mut stub_pool = self.pools.items(pool_stub_region(ri)).to_vec();
                stub_pool.shuffle(&mut self.rng);
                members.extend(stub_pool.into_iter().take(stub_target));
                if members.len() < 3 {
                    continue;
                }
                self.ixps.push(crate::model::Ixp {
                    region,
                    members: members.iter().copied().collect(),
                });
                // Each member peers with ~Poisson(degree) random other
                // members — a bounded emitter, never the full mesh.
                self.emit_poisson_mesh(&members, degree);
            }
        }
    }

    // ---- 7. Partial-transit programs (§6.1 mechanism) ------------------------
    // Rewrites relationships in place: no O(E) link snapshot.
    fn stage_partial_transit(&mut self) {
        let cfg = self.cfg;
        let cogent = self.cogent;
        let tier1: BTreeSet<Asn> = self.tier1.iter().copied().collect();
        let Builder {
            links, ases, rng, ..
        } = self;
        for (link, rel) in links.iter_mut() {
            let Rel::P2c { provider } = rel.base else {
                continue;
            };
            let Some(customer) = link.other(provider) else {
                continue;
            };
            let customer_tier = ases.get(&customer).map(|i| i.tier);
            let customer_region = ases.get(&customer).map(|i| i.region);
            let provider_region = ases.get(&provider).map(|i| i.region);
            let provider_is_t1 = tier1.contains(&provider);

            let mut p = 0.0;
            if provider == cogent && customer_tier == Some(TierClass::Transit) {
                p = cfg.cogent_partial_transit_share;
            } else if provider_is_t1 && customer_tier == Some(TierClass::Transit) {
                p = cfg.t1_partial_transit_share;
            }
            // LACNIC customers of out-of-region providers often buy partial
            // transit (the AR-L degradation mechanism).
            if customer_region == Some(RirRegion::Lacnic)
                && provider_region.is_some()
                && provider_region != Some(RirRegion::Lacnic)
            {
                let extra = if customer_tier == Some(TierClass::Transit) {
                    cfg.lacnic_partial_transit_share
                } else {
                    cfg.lacnic_partial_transit_share / 2.0
                };
                p = p.max(extra);
            }
            if p > 0.0 && rng.random_bool(p.min(1.0)) {
                *rel = GtRel::partial(provider);
            }
        }
    }

    // ---- 8. Hybrid links (per-PoP differing relationships) -------------------
    // Also an in-place rewrite over the transit-transit links.
    fn stage_hybrid_links(&mut self) {
        let share = self.cfg.hybrid_link_share;
        let Builder {
            links, ases, rng, ..
        } = self;
        for (link, rel) in links.iter_mut() {
            let transit_transit = ases.get(&link.a()).map(|i| i.tier) == Some(TierClass::Transit)
                && ases.get(&link.b()).map(|i| i.tier) == Some(TierClass::Transit);
            if !transit_transit {
                continue;
            }
            match rel.base {
                // P2P at most PoPs, P2C at a minority PoP (the a-side
                // provides).
                Rel::P2p if rng.random_bool(share) => {
                    let provider = link.a();
                    *rel = GtRel::hybrid(Rel::P2p, Rel::P2c { provider });
                }
                // P2C contract at most PoPs, settlement-free at one (Giotsas
                // et al. 2014 report both mixes).
                Rel::P2c { provider } if rng.random_bool(share / 2.0) => {
                    *rel = GtRel::hybrid(Rel::P2c { provider }, Rel::P2p);
                }
                _ => {}
            }
        }
    }

    // ---- 9. Sibling organisations --------------------------------------------
    // Multi-AS organisations are carrier families first (Verizon runs
    // 701/702/703), enterprises second: draw two thirds of the sibling pool
    // from transits, the rest from stubs.
    fn stage_siblings(&mut self) {
        let n_all_transit = self.pools.items(POOL_ALL_TRANSIT).len();
        let n_sibling_ases = (((n_all_transit + self.all_stubs.len()) as f64)
            * self.cfg.sibling_as_share)
            .round() as usize;
        let mut transit_pool = self.pools.items(POOL_ALL_TRANSIT).to_vec();
        transit_pool.shuffle(&mut self.rng);
        let mut stub_pool = self.all_stubs.clone();
        stub_pool.shuffle(&mut self.rng);
        let mut sibling_candidates: Vec<Asn> = transit_pool
            .into_iter()
            .take(n_sibling_ases * 2 / 3)
            .chain(stub_pool.into_iter().take(n_sibling_ases / 3))
            .collect();
        sibling_candidates.shuffle(&mut self.rng);
        let mut pool = sibling_candidates.into_iter();
        // Dense-id provider→customer adjacency so far, for cycle checks on
        // the intra-org transit links added below.
        let index: BTreeMap<Asn, u32> = self
            .ases
            .keys()
            .enumerate()
            .map(|(i, a)| (*a, i as u32))
            .collect();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); index.len()];
        for (link, rel) in &self.links {
            if let Rel::P2c { provider } = rel.base {
                if let Some(customer) = link.other(provider) {
                    adj[index[&provider] as usize].push(index[&customer]);
                }
            }
        }
        let mut scratch = ReachScratch::new(index.len());
        loop {
            let group: Vec<Asn> = (&mut pool)
                .take(2 + self.rng.random_range(0..3usize))
                .collect();
            if group.len() < 2 {
                break;
            }
            // Merge organisations: everyone takes the first member's org.
            // breval-lint: allow(L009) -- group.len() >= 2 enforced by the break above
            let org = self.ases.get(&group[0]).map(|i| i.org.clone());
            if let Some(org) = org {
                for asn in &group[1..] {
                    if let Some(info) = self.ases.get_mut(asn) {
                        info.org = org.clone();
                    }
                }
            }
            // Links between consecutive members: half are plain S2S, half are
            // intra-org *transit* (parent AS provides to the subsidiary) — the
            // latter get tagged and validated like any P2C link, which is how
            // sibling relationships end up inside validation data (§4.2). An
            // intra-org transit link may only point "downhill": if the
            // would-be customer already (transitively) provides to the
            // would-be provider, the P2C direction would close a provider
            // cycle — fall back to S2S.
            for w in group.windows(2) {
                if self.rng.random_bool(0.6) {
                    let wants_transit = self.rng.random_bool(0.5);
                    let (pi, ci) = (index[&w[0]], index[&w[1]]);
                    let rel = if wants_transit && !scratch.reaches(&adj, ci, pi) {
                        adj[pi as usize].push(ci);
                        GtRel::simple(Rel::P2c { provider: w[0] })
                    } else {
                        GtRel::simple(Rel::S2s)
                    };
                    self.add_link(w[0], w[1], rel);
                }
            }
        }
    }

    // ---- 10. Community-dictionary publication (post-pass; sizes known) -------
    fn stage_publication(&mut self) {
        let meta: Vec<(Asn, RirRegion, TierClass)> = self
            .ases
            .values()
            .map(|info| (info.asn, info.region, info.tier))
            .collect();
        for (asn, region, tier) in meta {
            let customers = self.customer_count.get(&asn).copied().unwrap_or(0);
            let p = self.publish_probability(region, tier, customers);
            let decision = self.rng.random_bool(p);
            // The Cogent-like Tier-1 always documents its communities — the
            // §6.1 mechanism depends on its customer tags being decodable
            // (the real AS174's dictionary is in RADB).
            let publishes = decision || asn == self.cogent;
            if let Some(info) = self.ases.get_mut(&asn) {
                info.publishes_communities = publishes;
            }
        }
    }

    // ---- 10b. Per-prefix traffic engineering (needs final provider counts) ---
    fn stage_traffic_engineering(&mut self) {
        let provider_counts: BTreeMap<Asn, usize> = {
            let mut counts: BTreeMap<Asn, usize> = BTreeMap::new();
            for (link, rel) in &self.links {
                if let Rel::P2c { provider } = rel.base {
                    if let Some(customer) = link.other(provider) {
                        *counts.entry(customer).or_insert(0) += 1;
                    }
                }
            }
            counts
        };
        let meta: Vec<(Asn, usize)> = self
            .ases
            .values()
            .map(|i| (i.asn, i.prefixes.len()))
            .collect();
        for (asn, n_prefixes) in meta {
            let n_providers = provider_counts.get(&asn).copied().unwrap_or(0);
            let te: Vec<Option<u8>> = (0..n_prefixes)
                .map(|_| {
                    if n_providers >= 2
                        && n_prefixes >= 2
                        && self.rng.random_bool(self.cfg.te_pin_prob)
                    {
                        Some(self.rng.random_range(0..n_providers) as u8)
                    } else {
                        None
                    }
                })
                .collect();
            if let Some(info) = self.ases.get_mut(&asn) {
                info.prefix_te = te;
            }
        }
    }

    // ---- 11. Vantage points --------------------------------------------------
    fn stage_vantage_points(&mut self) -> Vec<CollectorPeer> {
        let mut collector_peers: Vec<CollectorPeer> = Vec::with_capacity(self.cfg.n_vantage_points);
        let mut vp_set: BTreeSet<Asn> = BTreeSet::new();
        // Route collectors peer with every Tier-1 (as RouteViews + RIS
        // combined do) and a couple of hypergiants.
        let seeds: Vec<Asn> = self
            .tier1
            .iter()
            .chain(self.hypergiants.iter().take(self.cfg.vp_hypergiants))
            .copied()
            .collect();
        for asn in seeds {
            vp_set.insert(asn);
            collector_peers.push(CollectorPeer {
                asn,
                full_feed: true,
                two_byte_only: false,
            });
        }
        let mut guard = 0;
        while collector_peers.len() < self.cfg.n_vantage_points
            && guard < self.cfg.n_vantage_points * 50
        {
            guard += 1;
            let region = self.sample_vp_region();
            let want_stub = self.rng.random_bool(self.cfg.vp_stub_share);
            let pool = if want_stub {
                pool_stub_region(region_idx(region))
            } else {
                pool_transit_region(region_idx(region))
            };
            if self.pools.is_empty(pool) {
                continue;
            }
            // Collectors attract big networks: preferential attachment again.
            let Some(asn) = self.pools.pick(pool, &mut self.rng) else {
                continue;
            };
            if !vp_set.insert(asn) {
                continue;
            }
            let two_byte_only =
                !asn.is_four_byte() && self.rng.random_bool(self.cfg.vp_two_byte_share);
            collector_peers.push(CollectorPeer {
                asn,
                full_feed: self.rng.random_bool(self.cfg.vp_full_feed_share),
                two_byte_only,
            });
        }
        collector_peers
    }
}

/// Generates a topology from `cfg`. Deterministic under `cfg.seed`.
#[must_use]
pub fn generate(cfg: &TopologyConfig) -> Topology {
    let _span = breval_obs::span!("generate");
    let mut b = Builder::new(cfg);
    b.stage_tier1();
    b.stage_transits();
    b.stage_transit_peering();
    b.stage_hypergiants();
    b.stage_special_stubs();
    b.stage_stubs();
    b.stage_hypergiant_stub_peering();
    b.stage_ixps();
    b.stage_partial_transit();
    b.stage_hybrid_links();
    b.stage_siblings();
    b.stage_publication();
    b.stage_traffic_engineering();
    let collector_peers = b.stage_vantage_points();

    breval_obs::counter("topology_ases", b.ases.len() as u64);
    breval_obs::counter("topology_links", b.links.len() as u64);
    breval_obs::counter("topology_collector_peers", collector_peers.len() as u64);
    Topology {
        ases: b.ases,
        links: b.links,
        tier1: b.tier1.into_iter().collect(),
        hypergiants: b.hypergiants.into_iter().collect(),
        cogent: b.cogent,
        collector_peers,
        ixps: b.ixps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Topology {
        generate(&TopologyConfig::small(42))
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&TopologyConfig::small(7));
        let b = generate(&TopologyConfig::small(7));
        assert_eq!(a.as_count(), b.as_count());
        assert_eq!(a.link_count(), b.link_count());
        let la: Vec<_> = a.links.keys().collect();
        let lb: Vec<_> = b.links.keys().collect();
        assert_eq!(la, lb);
        let c = generate(&TopologyConfig::small(8));
        assert_ne!(
            a.links.keys().collect::<Vec<_>>(),
            c.links.keys().collect::<Vec<_>>(),
            "different seeds should differ"
        );
    }

    #[test]
    fn population_matches_config() {
        let cfg = TopologyConfig::small(42);
        let t = generate(&cfg);
        assert_eq!(t.as_count(), cfg.total_ases());
        assert_eq!(t.tier1.len(), cfg.n_tier1);
        assert_eq!(t.hypergiants.len(), cfg.n_hypergiant);
        assert_eq!(t.ases_of_tier(TierClass::Transit).len(), cfg.n_transit);
    }

    #[test]
    fn tier1_forms_p2p_clique() {
        let t = small();
        let t1: Vec<Asn> = t.tier1.iter().copied().collect();
        for i in 0..t1.len() {
            for j in (i + 1)..t1.len() {
                let link = Link::new(t1[i], t1[j]).unwrap();
                let rel = t.gt_rel(link).expect("clique link missing");
                assert_eq!(rel.base, Rel::P2p);
            }
        }
    }

    #[test]
    fn provider_hierarchy_is_acyclic() {
        let t = small();
        let graph = t.ground_truth_graph().unwrap();
        // DFS over provider→customer edges looking for a cycle.
        let mut state: BTreeMap<Asn, u8> = BTreeMap::new(); // 1=open, 2=done
        fn visit(g: &asgraph::AsGraph, a: Asn, state: &mut BTreeMap<Asn, u8>) -> bool {
            match state.get(&a) {
                Some(1) => return false, // cycle
                Some(2) => return true,
                _ => {}
            }
            state.insert(a, 1);
            for c in g.customers(a) {
                if !visit(g, c, state) {
                    return false;
                }
            }
            state.insert(a, 2);
            true
        }
        for asn in graph.ases() {
            assert!(visit(&graph, asn, &mut state), "provider cycle detected");
        }
    }

    #[test]
    fn every_as_is_connected_upward() {
        let t = small();
        let graph = t.ground_truth_graph().unwrap();
        // Every non-Tier-1 AS must have at least one provider or peer
        // (reachability precondition for propagation).
        for (asn, info) in &t.ases {
            if info.tier == TierClass::Tier1 {
                continue;
            }
            assert!(
                !graph.providers(*asn).is_empty() || !graph.peers(*asn).is_empty(),
                "{asn} has no upstream"
            );
        }
    }

    #[test]
    fn cogent_runs_partial_transit() {
        let t = small();
        let partial: Vec<_> = t.links.iter().filter(|(_, r)| r.partial_transit).collect();
        assert!(!partial.is_empty(), "no partial-transit links generated");
        let cogent_partial = partial
            .iter()
            .filter(|(l, r)| r.base.provider() == Some(t.cogent) && l.contains(t.cogent))
            .count();
        assert!(
            cogent_partial > 0,
            "cogent has no partial-transit customers"
        );
    }

    #[test]
    fn special_stubs_peer_with_tier1() {
        let t = small();
        let special: Vec<&AsInfo> = t
            .ases
            .values()
            .filter(|i| i.tier == TierClass::Stub && i.special.is_some())
            .collect();
        assert!(!special.is_empty());
        let mut peered = 0;
        for info in &special {
            for t1 in &t.tier1 {
                if let Some(link) = Link::new(info.asn, *t1) {
                    if t.gt_rel(link).map(|r| r.base) == Some(Rel::P2p) {
                        peered += 1;
                    }
                }
            }
        }
        assert!(
            peered >= special.len(),
            "special stubs should peer with T1s"
        );
    }

    #[test]
    fn lacnic_region_has_population_and_low_publication() {
        let t = generate(&TopologyConfig::small(3));
        let lacnic: Vec<&AsInfo> = t
            .ases
            .values()
            .filter(|i| i.region == RirRegion::Lacnic)
            .collect();
        let arin: Vec<&AsInfo> = t
            .ases
            .values()
            .filter(|i| i.region == RirRegion::Arin)
            .collect();
        assert!(lacnic.len() > 50);
        let l_pub =
            lacnic.iter().filter(|i| i.publishes_communities).count() as f64 / lacnic.len() as f64;
        let ar_pub =
            arin.iter().filter(|i| i.publishes_communities).count() as f64 / arin.len() as f64;
        assert!(
            l_pub < ar_pub / 5.0,
            "LACNIC publication rate ({l_pub:.3}) must be far below ARIN ({ar_pub:.3})"
        );
    }

    #[test]
    fn registry_artifacts_reconstruct_regions() {
        let t = small();
        let iana = t.iana_table();
        let files = t.delegation_files("20180405");
        let map = asregistry::RegionMap::build(iana, &files);
        let mut checked = 0;
        for info in t.ases.values() {
            assert_eq!(
                map.region(info.asn),
                Some(info.region),
                "{} region mismatch",
                info.asn
            );
            checked += 1;
        }
        assert!(checked > 1000);
        // Transfers exist and the delegation refinement handles them.
        assert!(!t.transferred_asns().is_empty());
    }

    #[test]
    fn as2org_identifies_siblings() {
        let t = small();
        let org = t.as2org();
        let sibling_links: Vec<Link> = t
            .links
            .iter()
            .filter(|(_, r)| r.base == Rel::S2s)
            .map(|(l, _)| *l)
            .collect();
        assert!(!sibling_links.is_empty(), "no sibling links generated");
        for link in sibling_links {
            assert!(org.is_sibling_link(link), "{link} not detected as sibling");
        }
    }

    #[test]
    fn vantage_points_are_valid_ases() {
        let t = small();
        assert!(t.collector_peers.len() >= 50);
        for vp in &t.collector_peers {
            assert!(t.ases.contains_key(&vp.asn), "VP {} unknown", vp.asn);
            if vp.two_byte_only {
                assert!(!vp.asn.is_four_byte());
            }
        }
        // Some of each flavour.
        assert!(t.collector_peers.iter().any(|v| v.full_feed));
        assert!(t.collector_peers.iter().any(|v| !v.full_feed));
    }

    #[test]
    fn four_byte_asns_exist() {
        let t = small();
        let four = t.ases.keys().filter(|a| a.is_four_byte()).count();
        assert!(
            four > t.as_count() / 10,
            "need a sizable 32-bit population, got {four}"
        );
    }

    #[test]
    fn hybrid_links_exist_and_are_complex() {
        let t = generate(&TopologyConfig {
            hybrid_link_share: 0.05,
            ..TopologyConfig::small(42)
        });
        let hybrid = t.links.values().filter(|r| r.hybrid_alt.is_some()).count();
        assert!(hybrid > 0);
        assert!(t.complex_links().len() >= hybrid);
    }

    #[test]
    fn scaled_config_generates_and_stays_acyclic() {
        // A scale tier beyond the shipped configs: exercises the Fenwick
        // pick path end-to-end (pools larger than the exact-path cutoff are
        // covered by scalebench; here we check the scaled constructor's
        // population plumbing at a size unit tests can afford).
        let cfg = TopologyConfig::scaled(4_000, 5);
        let t = generate(&cfg);
        assert_eq!(t.as_count(), cfg.total_ases());
        assert!(t.link_count() > t.as_count());
        let graph = t.ground_truth_graph().expect("scaled topology is valid");
        let _ = graph;
    }
}
