//! The topology generator.
//!
//! Construction order guarantees an acyclic provider hierarchy: Tier-1s first,
//! then large transits, small transits, hypergiants, special stubs, stubs —
//! every customer only ever selects providers created before it.

use crate::alloc::AsnAllocator;
use crate::config::{per_region, TopologyConfig};
use crate::model::{AsInfo, CollectorPeer, SpecialRole, TierClass, Topology};
use asgraph::{Asn, GtRel, Link, Rel};
use asregistry::{org::OrgId, RirRegion};
use bgpwire::Ipv4Prefix;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Well-known Tier-1 ASNs used for the first clique members (flavour +
/// stable case-study targets; AS174 is the Cogent-like partial-transit AS).
const KNOWN_TIER1: [(u32, RirRegion); 12] = [
    (174, RirRegion::Arin),
    (701, RirRegion::Arin),
    (1299, RirRegion::RipeNcc),
    (2914, RirRegion::Arin),
    (3257, RirRegion::RipeNcc),
    (3320, RirRegion::RipeNcc),
    (3356, RirRegion::Arin),
    (3491, RirRegion::Arin),
    (5511, RirRegion::RipeNcc),
    (6453, RirRegion::Arin),
    (6461, RirRegion::Arin),
    (7018, RirRegion::Arin),
];

/// Well-known hypergiant ASNs (content networks).
const KNOWN_HYPERGIANTS: [(u32, RirRegion); 12] = [
    (15169, RirRegion::Arin),
    (16509, RirRegion::Arin),
    (8075, RirRegion::Arin),
    (20940, RirRegion::RipeNcc),
    (13335, RirRegion::Arin),
    (2906, RirRegion::Arin),
    (22822, RirRegion::Arin),
    (54113, RirRegion::Arin),
    (32934, RirRegion::Arin),
    (16276, RirRegion::RipeNcc),
    (714, RirRegion::Arin),
    (46489, RirRegion::Arin),
];

struct Builder<'c> {
    cfg: &'c TopologyConfig,
    rng: ChaCha8Rng,
    alloc: AsnAllocator,
    ases: BTreeMap<Asn, AsInfo>,
    links: BTreeMap<Link, GtRel>,
    customer_count: BTreeMap<Asn, usize>,
    prefix_counter: u32,
    org_counter: u32,
}

impl<'c> Builder<'c> {
    fn new(cfg: &'c TopologyConfig) -> Self {
        let reserved: Vec<Asn> = KNOWN_TIER1
            .iter()
            .chain(KNOWN_HYPERGIANTS.iter())
            .map(|(a, _)| Asn(*a))
            .collect();
        Builder {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            alloc: AsnAllocator::new(&reserved),
            ases: BTreeMap::new(),
            links: BTreeMap::new(),
            customer_count: BTreeMap::new(),
            prefix_counter: 0,
            org_counter: 0,
        }
    }

    /// Poisson-ish count: Knuth for small means, normal approximation above.
    fn sample_count(&mut self, mean: f64) -> usize {
        if mean <= 0.0 {
            return 0;
        }
        if mean < 25.0 {
            let l = (-mean).exp();
            let mut k = 0usize;
            let mut p = 1.0;
            loop {
                p *= self.rng.random::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
                if k > 1000 {
                    return k;
                }
            }
        } else {
            // Box–Muller normal approximation.
            let u1: f64 = self.rng.random::<f64>().max(1e-12);
            let u2: f64 = self.rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mean + mean.sqrt() * z).round().max(0.0) as usize
        }
    }

    fn sample_region(&mut self) -> RirRegion {
        let x: f64 = self.rng.random();
        let mut acc = 0.0;
        for (i, r) in RirRegion::ALL.into_iter().enumerate() {
            acc += self.cfg.region_weights[i];
            if x < acc {
                return r;
            }
        }
        RirRegion::RipeNcc
    }

    fn sample_vp_region(&mut self) -> RirRegion {
        let x: f64 = self.rng.random();
        let mut acc = 0.0;
        for (i, r) in RirRegion::ALL.into_iter().enumerate() {
            acc += self.cfg.vp_region_weights[i];
            if x < acc {
                return r;
            }
        }
        RirRegion::RipeNcc
    }

    fn sample_country(&mut self, region: RirRegion) -> String {
        let codes = region.country_codes();
        codes[self.rng.random_range(0..codes.len())].to_owned()
    }

    fn next_org(&mut self) -> OrgId {
        self.org_counter += 1;
        OrgId(format!("@org-{:05}", self.org_counter))
    }

    fn next_prefixes(&mut self, mean: f64) -> Vec<Ipv4Prefix> {
        let n = (1 + self.sample_count((mean - 1.0).max(0.0))).min(8);
        (0..n)
            .map(|_| {
                self.prefix_counter += 1;
                // Lay prefixes out as /24s starting at 1.0.0.0.
                Ipv4Prefix::new(0x0100_0000 + self.prefix_counter * 256, 24).expect("24 ≤ 32")
            })
            .collect()
    }

    /// Publication probability given the AS's final size — run as a
    /// post-pass once customer counts are known: community documentation is
    /// a big-carrier habit.
    fn publish_probability(&self, region: RirRegion, tier: TierClass, customers: usize) -> f64 {
        if tier == TierClass::Tier1 {
            return self.cfg.publish_prob_tier1.clamp(0.0, 1.0);
        }
        let base = per_region(&self.cfg.publish_prob_region, region);
        let mult = match tier {
            // breval-lint: allow(L009) -- Tier1 is early-returned above; exhaustive-match invariant
            TierClass::Tier1 => unreachable!("handled above"),
            TierClass::Transit => {
                if customers >= self.cfg.publish_large_customer_threshold {
                    self.cfg.publish_mult_large_transit
                } else {
                    self.cfg.publish_mult_transit
                }
            }
            TierClass::Stub => self.cfg.publish_mult_stub,
            TierClass::Hypergiant => self.cfg.publish_mult_hypergiant,
        };
        (base * mult).clamp(0.0, 1.0)
    }

    /// Creates an AS. `fixed_asn` pins a well-known number; otherwise the
    /// allocator draws from the regional pools (possibly in a *different*
    /// region when the ASN was transferred).
    fn create_as(
        &mut self,
        region: RirRegion,
        tier: TierClass,
        special: Option<SpecialRole>,
        fixed_asn: Option<Asn>,
    ) -> Asn {
        // Inter-RIR transfer: the ASN was originally allocated elsewhere.
        let allocated_region =
            if fixed_asn.is_none() && self.rng.random_bool(self.cfg.transfer_prob) {
                let others: Vec<RirRegion> = RirRegion::ALL
                    .into_iter()
                    .filter(|r| *r != region)
                    .collect();
                others[self.rng.random_range(0..others.len())]
            } else {
                region
            };
        let asn = match fixed_asn {
            Some(a) => a,
            None => {
                let p4 = per_region(&self.cfg.four_byte_asn_prob, allocated_region);
                self.alloc
                    .allocate(allocated_region, p4, &mut self.rng)
                    .expect("ASN pools sized for the configured population")
            }
        };
        let country = self.sample_country(region);
        let org = self.next_org();
        // Decided by the post-pass once sizes are known.
        let publishes_communities = false;
        let prepend_p = if region == RirRegion::Lacnic {
            self.cfg.lacnic_prepend_prob
        } else {
            self.cfg.base_prepend_prob
        };
        // Path prepending is an edge-network TE habit; Tier-1s never prepend
        // (a prepending Tier-1 would systematically hide its customer links
        // from every lateral best path).
        let prepends = tier != TierClass::Tier1 && self.rng.random_bool(prepend_p);
        let mean_prefixes = match tier {
            TierClass::Transit | TierClass::Tier1 => self.cfg.transit_mean_prefixes,
            _ => self.cfg.mean_prefixes_per_as,
        };
        let prefixes = self.next_prefixes(mean_prefixes);
        // Routing-hygiene behaviour flags (Appendix C feature 12): MANRS
        // membership correlates with running a documented NOC; serial
        // hijacking is rare and concentrated among small networks.
        let manrs = self.rng.random_bool(match tier {
            TierClass::Tier1 => 0.6,
            TierClass::Transit => 0.18,
            TierClass::Hypergiant => 0.5,
            TierClass::Stub => 0.05,
        });
        let hijacker = tier == TierClass::Stub && self.rng.random_bool(0.004);
        self.ases.insert(
            asn,
            AsInfo {
                asn,
                region,
                allocated_region,
                country,
                org,
                tier,
                special,
                prefix_te: vec![None; prefixes.len()],
                prefixes,
                publishes_communities,
                prepends,
                manrs,
                hijacker,
            },
        );
        asn
    }

    /// Adds a link unless it already exists (first relationship wins).
    fn add_link(&mut self, a: Asn, b: Asn, rel: GtRel) -> bool {
        let Some(link) = Link::new(a, b) else {
            return false;
        };
        if self.links.contains_key(&link) {
            return false;
        }
        if let Rel::P2c { provider } = rel.base {
            if let Some(customer) = link.other(provider) {
                *self.customer_count.entry(provider).or_insert(0) += 1;
                let _ = customer;
            }
        }
        self.links.insert(link, rel);
        true
    }

    fn p2c(&mut self, provider: Asn, customer: Asn) -> bool {
        self.add_link(provider, customer, GtRel::simple(Rel::P2c { provider }))
    }

    fn p2p(&mut self, a: Asn, b: Asn) -> bool {
        self.add_link(a, b, GtRel::simple(Rel::P2p))
    }

    /// Weighted provider choice with preferential attachment
    /// (weight = customers + 1).
    fn choose_provider(&mut self, candidates: &[Asn]) -> Option<Asn> {
        if candidates.is_empty() {
            return None;
        }
        let exp = self.cfg.pa_exponent;
        let weights: Vec<f64> = candidates
            .iter()
            .map(|a| ((self.customer_count.get(a).copied().unwrap_or(0) + 1) as f64).powf(exp))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut x = self.rng.random::<f64>() * total;
        for (a, w) in candidates.iter().zip(&weights) {
            x -= w;
            if x <= 0.0 {
                return Some(*a);
            }
        }
        candidates.last().copied()
    }
}

/// Generates a topology from `cfg`. Deterministic under `cfg.seed`.
#[must_use]
pub fn generate(cfg: &TopologyConfig) -> Topology {
    let _span = breval_obs::span!("generate");
    let mut b = Builder::new(cfg);

    // ---- 1. Tier-1 clique ---------------------------------------------------
    let mut tier1: Vec<Asn> = Vec::with_capacity(cfg.n_tier1);
    for i in 0..cfg.n_tier1 {
        let asn = if let Some(&(num, region)) = KNOWN_TIER1.get(i) {
            b.create_as(region, TierClass::Tier1, None, Some(Asn(num)))
        } else {
            let region = if i % 2 == 0 {
                RirRegion::Arin
            } else {
                RirRegion::RipeNcc
            };
            b.create_as(region, TierClass::Tier1, None, None)
        };
        tier1.push(asn);
    }
    // breval-lint: allow(L009) -- the Tier-1 seeding loop requires n_tier1 >= 1 by config contract
    let cogent = tier1[0];
    for i in 0..tier1.len() {
        for j in (i + 1)..tier1.len() {
            b.p2p(tier1[i], tier1[j]);
        }
    }

    // ---- 2. Transit hierarchy -------------------------------------------------
    let n_large = ((cfg.n_transit as f64) * cfg.large_transit_share).round() as usize;
    let mut large_transit: Vec<Asn> = Vec::with_capacity(n_large);
    let mut transits_by_region: BTreeMap<RirRegion, Vec<Asn>> = BTreeMap::new();
    let mut all_transit: Vec<Asn> = Vec::with_capacity(cfg.n_transit);

    for i in 0..cfg.n_transit {
        let region = b.sample_region();
        let asn = b.create_as(region, TierClass::Transit, None, None);
        if i < n_large {
            // Large transit: 2–3 Tier-1 providers, chosen uniformly.
            let n_prov = 2 + usize::from(b.rng.random_bool(0.5));
            let mut t1_pool = tier1.clone();
            t1_pool.shuffle(&mut b.rng);
            for provider in t1_pool.into_iter().take(n_prov) {
                b.p2c(provider, asn);
            }
            // Many large transits additionally *peer* with Tier-1s they do
            // not buy from (regional incumbents, settlement-free).
            if b.rng.random_bool(0.85) {
                let n_peerings = 2 + b.sample_count(0.9);
                for _ in 0..n_peerings {
                    let t1 = tier1[b.rng.random_range(0..tier1.len())];
                    b.p2p(t1, asn);
                }
            }
            large_transit.push(asn);
        } else {
            // Small transit: providers among earlier transits (same region
            // preferred) and occasionally a Tier-1 directly.
            let n_prov = (1 + b.sample_count((cfg.transit_mean_providers - 1.0).max(0.0))).min(4);
            for _ in 0..n_prov {
                if b.rng.random_bool(cfg.transit_direct_t1_prob) {
                    let t1 = tier1[b.rng.random_range(0..tier1.len())];
                    b.p2c(t1, asn);
                    continue;
                }
                let cross = b.rng.random_bool(cfg.cross_region_provider_prob);
                let pool: Vec<Asn> = if cross {
                    all_transit.clone()
                } else {
                    transits_by_region.get(&region).cloned().unwrap_or_default()
                };
                let pool: Vec<Asn> = if pool.is_empty() {
                    large_transit.clone()
                } else {
                    pool
                };
                if let Some(provider) = b.choose_provider(&pool) {
                    if provider != asn {
                        b.p2c(provider, asn);
                    }
                }
            }
        }
        transits_by_region.entry(region).or_default().push(asn);
        all_transit.push(asn);
    }

    // ---- 2b. Global peering among transits ---------------------------------------
    // Large transits interconnect globally (transatlantic private peering);
    // smaller transits do so occasionally.
    for i in 0..large_transit.len() {
        let k = b.sample_count(cfg.large_transit_peering);
        for _ in 0..k {
            let j = b.rng.random_range(0..large_transit.len());
            if i != j {
                b.p2p(large_transit[i], large_transit[j]);
            }
        }
    }
    let smalls: Vec<Asn> = all_transit
        .iter()
        .copied()
        .filter(|a| !large_transit.contains(a))
        .collect();
    for &s in &smalls {
        let k = b.sample_count(cfg.small_transit_peering);
        for _ in 0..k {
            let peer = all_transit[b.rng.random_range(0..all_transit.len())];
            if peer != s {
                b.p2p(s, peer);
            }
        }
    }

    // ---- 3. Hypergiants ---------------------------------------------------------
    let mut hypergiants: Vec<Asn> = Vec::with_capacity(cfg.n_hypergiant);
    for i in 0..cfg.n_hypergiant {
        let (region, fixed) = if let Some(&(num, region)) = KNOWN_HYPERGIANTS.get(i) {
            (region, Some(Asn(num)))
        } else {
            (b.sample_region(), None)
        };
        let asn = b.create_as(region, TierClass::Hypergiant, Some(SpecialRole::Cdn), fixed);
        // 1–2 Tier-1 transit providers for global reachability.
        let n_prov = 1 + usize::from(b.rng.random_bool(0.4));
        let mut t1_pool = tier1.clone();
        t1_pool.shuffle(&mut b.rng);
        for provider in t1_pool.iter().take(n_prov) {
            b.p2c(*provider, asn);
        }
        // Occasional settlement-free peering with remaining Tier-1s.
        for t1 in &t1_pool[n_prov..] {
            if b.rng.random_bool(cfg.hypergiant_t1_peer_prob) {
                b.p2p(*t1, asn);
            }
        }
        // Dense peering with transits.
        let n_tr = b
            .sample_count(cfg.hypergiant_transit_peers)
            .min(all_transit.len());
        let mut pool = all_transit.clone();
        pool.shuffle(&mut b.rng);
        for peer in pool.into_iter().take(n_tr) {
            b.p2p(peer, asn);
        }
        hypergiants.push(asn);
    }

    // ---- 4. Special stubs (peer with Tier-1s; ground-truth P2P) ---------------
    let roles = [
        SpecialRole::AnycastDns,
        SpecialRole::Research,
        SpecialRole::Cloud,
        SpecialRole::Cdn,
    ];
    let mut special_stubs = Vec::with_capacity(cfg.n_special_stub);
    for i in 0..cfg.n_special_stub {
        let region = b.sample_region();
        let role = roles[i % roles.len()];
        let asn = b.create_as(region, TierClass::Stub, Some(role), None);
        let n_peers = (2 + b.sample_count(1.0)).min(tier1.len());
        let mut t1_pool = tier1.clone();
        t1_pool.shuffle(&mut b.rng);
        for t1 in t1_pool.iter().take(n_peers) {
            b.p2p(*t1, asn);
        }
        // One transit provider keeps them multi-connected.
        if let Some(provider) = b.choose_provider(&large_transit) {
            b.p2c(provider, asn);
        }
        special_stubs.push(asn);
    }

    // ---- 5. Stubs -----------------------------------------------------------------
    let mut stubs_by_region: BTreeMap<RirRegion, Vec<Asn>> = BTreeMap::new();
    let mut all_stubs: Vec<Asn> = Vec::with_capacity(cfg.n_stub);
    for _ in 0..cfg.n_stub {
        let region = b.sample_region();
        let asn = b.create_as(region, TierClass::Stub, None, None);
        let n_prov = (1 + b.sample_count((cfg.stub_mean_providers - 1.0).max(0.0))).min(4);
        for k in 0..n_prov {
            if k == 0 && b.rng.random_bool(cfg.stub_direct_t1_prob) {
                let t1 = tier1[b.rng.random_range(0..tier1.len())];
                b.p2c(t1, asn);
                continue;
            }
            let cross = b.rng.random_bool(cfg.cross_region_provider_prob);
            let pool: Vec<Asn> = if cross {
                all_transit.clone()
            } else {
                transits_by_region.get(&region).cloned().unwrap_or_default()
            };
            let pool = if pool.is_empty() {
                all_transit.clone()
            } else {
                pool
            };
            if let Some(provider) = b.choose_provider(&pool) {
                b.p2c(provider, asn);
            }
        }
        stubs_by_region.entry(region).or_default().push(asn);
        all_stubs.push(asn);
    }

    // ---- 5b. Hypergiant–stub peering (stubs exist only now) --------------------------
    for hg in &hypergiants {
        let k = b
            .sample_count(cfg.hypergiant_stub_peers)
            .min(all_stubs.len());
        let mut pool = all_stubs.clone();
        pool.shuffle(&mut b.rng);
        for stub in pool.into_iter().take(k) {
            b.p2p(*hg, stub);
        }
    }

    // ---- 6. IXP peering meshes ------------------------------------------------------
    let mut ixps: Vec<crate::model::Ixp> = Vec::new();
    for (ri, region) in RirRegion::ALL.into_iter().enumerate() {
        let n_ixps = cfg.ixps_per_region[ri];
        if n_ixps == 0 {
            continue;
        }
        let transits = transits_by_region.get(&region).cloned().unwrap_or_default();
        let stubs = stubs_by_region.get(&region).cloned().unwrap_or_default();
        let degree = cfg.ixp_peering_degree[ri];
        for _ in 0..n_ixps {
            // Membership: most regional transits, a slice of regional stubs.
            let mut members: Vec<Asn> = Vec::new();
            for t in &transits {
                if b.rng.random_bool((2.2 / n_ixps as f64).min(1.0)) {
                    members.push(*t);
                }
            }
            let stub_target = ((members.len() as f64) * cfg.ixp_stub_share
                / (1.0 - cfg.ixp_stub_share))
                .round() as usize;
            let mut stub_pool = stubs.clone();
            stub_pool.shuffle(&mut b.rng);
            members.extend(stub_pool.into_iter().take(stub_target));
            if members.len() < 3 {
                continue;
            }
            ixps.push(crate::model::Ixp {
                region,
                members: members.iter().copied().collect(),
            });
            // Each member peers with ~Poisson(degree) random other members.
            let m = members.len();
            for i in 0..m {
                let k = b.sample_count(degree).min(m - 1);
                for _ in 0..k {
                    let j = b.rng.random_range(0..m);
                    if i != j {
                        b.p2p(members[i], members[j]);
                    }
                }
            }
        }
    }

    // ---- 7. Partial-transit programs (§6.1 mechanism) -------------------------------
    let links_snapshot: Vec<(Link, Rel)> = b.links.iter().map(|(l, r)| (*l, r.base)).collect();
    for (link, rel) in &links_snapshot {
        let Rel::P2c { provider } = rel else { continue };
        let Some(customer) = link.other(*provider) else {
            continue;
        };
        let customer_tier = b.ases.get(&customer).map(|i| i.tier);
        let customer_region = b.ases.get(&customer).map(|i| i.region);
        let provider_region = b.ases.get(provider).map(|i| i.region);
        let provider_is_t1 = tier1.contains(provider);

        let mut p = 0.0;
        if *provider == cogent && customer_tier == Some(TierClass::Transit) {
            p = cfg.cogent_partial_transit_share;
        } else if provider_is_t1 && customer_tier == Some(TierClass::Transit) {
            p = cfg.t1_partial_transit_share;
        }
        // LACNIC customers of out-of-region providers often buy partial
        // transit (the AR-L degradation mechanism).
        if customer_region == Some(RirRegion::Lacnic)
            && provider_region.is_some()
            && provider_region != Some(RirRegion::Lacnic)
        {
            let extra = if customer_tier == Some(TierClass::Transit) {
                cfg.lacnic_partial_transit_share
            } else {
                cfg.lacnic_partial_transit_share / 2.0
            };
            p = p.max(extra);
        }
        if p > 0.0 && b.rng.random_bool(p.min(1.0)) {
            b.links.insert(*link, GtRel::partial(*provider));
        }
    }

    // ---- 8. Hybrid links (per-PoP differing relationships) --------------------------
    let transit_links: Vec<(Link, Rel)> = b
        .links
        .iter()
        .filter(|(link, _)| {
            b.ases.get(&link.a()).map(|i| i.tier) == Some(TierClass::Transit)
                && b.ases.get(&link.b()).map(|i| i.tier) == Some(TierClass::Transit)
        })
        .map(|(l, r)| (*l, r.base))
        .collect();
    for (link, base) in transit_links {
        match base {
            // P2P at most PoPs, P2C at a minority PoP (the a-side provides).
            Rel::P2p if b.rng.random_bool(cfg.hybrid_link_share) => {
                let provider = link.a();
                b.links
                    .insert(link, GtRel::hybrid(Rel::P2p, Rel::P2c { provider }));
            }
            // P2C contract at most PoPs, settlement-free at one (Giotsas et
            // al. 2014 report both mixes).
            Rel::P2c { provider } if b.rng.random_bool(cfg.hybrid_link_share / 2.0) => {
                b.links
                    .insert(link, GtRel::hybrid(Rel::P2c { provider }, Rel::P2p));
            }
            _ => {}
        }
    }

    // ---- 9. Sibling organisations ---------------------------------------------------
    // Multi-AS organisations are carrier families first (Verizon runs
    // 701/702/703), enterprises second: draw two thirds of the sibling pool
    // from transits, the rest from stubs.
    let n_sibling_ases =
        (((all_transit.len() + all_stubs.len()) as f64) * cfg.sibling_as_share).round() as usize;
    let mut transit_pool = all_transit.clone();
    transit_pool.shuffle(&mut b.rng);
    let mut stub_pool = all_stubs.clone();
    stub_pool.shuffle(&mut b.rng);
    let mut sibling_candidates: Vec<Asn> = transit_pool
        .into_iter()
        .take(n_sibling_ases * 2 / 3)
        .chain(stub_pool.into_iter().take(n_sibling_ases / 3))
        .collect();
    sibling_candidates.shuffle(&mut b.rng);
    let mut pool = sibling_candidates.into_iter();
    // Provider→customer adjacency so far, for cycle checks on the intra-org
    // transit links added below.
    let mut customer_adj: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
    for (link, rel) in &b.links {
        if let Rel::P2c { provider } = rel.base {
            if let Some(customer) = link.other(provider) {
                customer_adj.entry(provider).or_default().push(customer);
            }
        }
    }
    let reaches = |adj: &BTreeMap<Asn, Vec<Asn>>, from: Asn, to: Asn| -> bool {
        let mut seen: BTreeSet<Asn> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            if !seen.insert(cur) {
                continue;
            }
            if let Some(customers) = adj.get(&cur) {
                stack.extend(customers.iter().copied());
            }
        }
        false
    };
    loop {
        let group: Vec<Asn> = (&mut pool)
            .take(2 + b.rng.random_range(0..3usize))
            .collect();
        if group.len() < 2 {
            break;
        }
        // Merge organisations: everyone takes the first member's org.
        // breval-lint: allow(L009) -- group.len() >= 2 enforced by the break above
        let org = b.ases.get(&group[0]).map(|i| i.org.clone());
        if let Some(org) = org {
            for asn in &group[1..] {
                if let Some(info) = b.ases.get_mut(asn) {
                    info.org = org.clone();
                }
            }
        }
        // Links between consecutive members: half are plain S2S, half are
        // intra-org *transit* (parent AS provides to the subsidiary) — the
        // latter get tagged and validated like any P2C link, which is how
        // sibling relationships end up inside validation data (§4.2). An
        // intra-org transit link may only point "downhill": if the would-be
        // customer already (transitively) provides to the would-be provider,
        // the P2C direction would close a provider cycle — fall back to S2S.
        for w in group.windows(2) {
            if b.rng.random_bool(0.6) {
                let wants_transit = b.rng.random_bool(0.5);
                let rel = if wants_transit && !reaches(&customer_adj, w[1], w[0]) {
                    customer_adj.entry(w[0]).or_default().push(w[1]);
                    GtRel::simple(Rel::P2c { provider: w[0] })
                } else {
                    GtRel::simple(Rel::S2s)
                };
                b.add_link(w[0], w[1], rel);
            }
        }
    }

    // ---- 10. Community-dictionary publication (post-pass; sizes known) ---------------
    let publish_decisions: Vec<(Asn, bool)> = b
        .ases
        .values()
        .map(|info| (info.asn, info.region, info.tier))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|(asn, region, tier)| {
            let customers = b.customer_count.get(&asn).copied().unwrap_or(0);
            let p = b.publish_probability(region, tier, customers);
            let decision = b.rng.random_bool(p);
            // The Cogent-like Tier-1 always documents its communities — the
            // §6.1 mechanism depends on its customer tags being decodable
            // (the real AS174's dictionary is in RADB).
            (asn, decision || asn == cogent)
        })
        .collect();
    for (asn, publishes) in publish_decisions {
        if let Some(info) = b.ases.get_mut(&asn) {
            info.publishes_communities = publishes;
        }
    }

    // ---- 10b. Per-prefix traffic engineering (needs final provider counts) -----------
    let provider_counts: BTreeMap<Asn, usize> = {
        let mut counts: BTreeMap<Asn, usize> = BTreeMap::new();
        for (link, rel) in &b.links {
            if let Rel::P2c { provider } = rel.base {
                if let Some(customer) = link.other(provider) {
                    *counts.entry(customer).or_insert(0) += 1;
                }
            }
        }
        counts
    };
    let te_decisions: Vec<(Asn, Vec<Option<u8>>)> = b
        .ases
        .values()
        .map(|i| (i.asn, i.prefixes.len()))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|(asn, n_prefixes)| {
            let n_providers = provider_counts.get(&asn).copied().unwrap_or(0);
            let te = (0..n_prefixes)
                .map(|_| {
                    if n_providers >= 2 && n_prefixes >= 2 && b.rng.random_bool(cfg.te_pin_prob) {
                        Some(b.rng.random_range(0..n_providers) as u8)
                    } else {
                        None
                    }
                })
                .collect();
            (asn, te)
        })
        .collect();
    for (asn, te) in te_decisions {
        if let Some(info) = b.ases.get_mut(&asn) {
            info.prefix_te = te;
        }
    }

    // ---- 11. Vantage points -----------------------------------------------------------
    let mut collector_peers: Vec<CollectorPeer> = Vec::with_capacity(cfg.n_vantage_points);
    let mut vp_set: BTreeSet<Asn> = BTreeSet::new();
    // Route collectors peer with every Tier-1 (as RouteViews + RIS combined
    // do) and a couple of hypergiants.
    for asn in tier1
        .iter()
        .chain(hypergiants.iter().take(cfg.vp_hypergiants))
    {
        vp_set.insert(*asn);
        collector_peers.push(CollectorPeer {
            asn: *asn,
            full_feed: true,
            two_byte_only: false,
        });
    }
    let mut guard = 0;
    while collector_peers.len() < cfg.n_vantage_points && guard < cfg.n_vantage_points * 50 {
        guard += 1;
        let region = b.sample_vp_region();
        let want_stub = b.rng.random_bool(cfg.vp_stub_share);
        let pool = if want_stub {
            stubs_by_region.get(&region).cloned().unwrap_or_default()
        } else {
            transits_by_region.get(&region).cloned().unwrap_or_default()
        };
        if pool.is_empty() {
            continue;
        }
        // Collectors attract big networks: preferential attachment again.
        let Some(asn) = b.choose_provider(&pool) else {
            continue;
        };
        if !vp_set.insert(asn) {
            continue;
        }
        let two_byte_only = !asn.is_four_byte() && b.rng.random_bool(cfg.vp_two_byte_share);
        collector_peers.push(CollectorPeer {
            asn,
            full_feed: b.rng.random_bool(cfg.vp_full_feed_share),
            two_byte_only,
        });
    }

    breval_obs::counter("topology_ases", b.ases.len() as u64);
    breval_obs::counter("topology_links", b.links.len() as u64);
    breval_obs::counter("topology_collector_peers", collector_peers.len() as u64);
    Topology {
        ases: b.ases,
        links: b.links,
        tier1: tier1.into_iter().collect(),
        hypergiants: hypergiants.into_iter().collect(),
        cogent,
        collector_peers,
        ixps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Topology {
        generate(&TopologyConfig::small(42))
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&TopologyConfig::small(7));
        let b = generate(&TopologyConfig::small(7));
        assert_eq!(a.as_count(), b.as_count());
        assert_eq!(a.link_count(), b.link_count());
        let la: Vec<_> = a.links.keys().collect();
        let lb: Vec<_> = b.links.keys().collect();
        assert_eq!(la, lb);
        let c = generate(&TopologyConfig::small(8));
        assert_ne!(
            a.links.keys().collect::<Vec<_>>(),
            c.links.keys().collect::<Vec<_>>(),
            "different seeds should differ"
        );
    }

    #[test]
    fn population_matches_config() {
        let cfg = TopologyConfig::small(42);
        let t = generate(&cfg);
        assert_eq!(t.as_count(), cfg.total_ases());
        assert_eq!(t.tier1.len(), cfg.n_tier1);
        assert_eq!(t.hypergiants.len(), cfg.n_hypergiant);
        assert_eq!(t.ases_of_tier(TierClass::Transit).len(), cfg.n_transit);
    }

    #[test]
    fn tier1_forms_p2p_clique() {
        let t = small();
        let t1: Vec<Asn> = t.tier1.iter().copied().collect();
        for i in 0..t1.len() {
            for j in (i + 1)..t1.len() {
                let link = Link::new(t1[i], t1[j]).unwrap();
                let rel = t.gt_rel(link).expect("clique link missing");
                assert_eq!(rel.base, Rel::P2p);
            }
        }
    }

    #[test]
    fn provider_hierarchy_is_acyclic() {
        let t = small();
        let graph = t.ground_truth_graph().unwrap();
        // DFS over provider→customer edges looking for a cycle.
        let mut state: BTreeMap<Asn, u8> = BTreeMap::new(); // 1=open, 2=done
        fn visit(g: &asgraph::AsGraph, a: Asn, state: &mut BTreeMap<Asn, u8>) -> bool {
            match state.get(&a) {
                Some(1) => return false, // cycle
                Some(2) => return true,
                _ => {}
            }
            state.insert(a, 1);
            for c in g.customers(a) {
                if !visit(g, c, state) {
                    return false;
                }
            }
            state.insert(a, 2);
            true
        }
        for asn in graph.ases() {
            assert!(visit(&graph, asn, &mut state), "provider cycle detected");
        }
    }

    #[test]
    fn every_as_is_connected_upward() {
        let t = small();
        let graph = t.ground_truth_graph().unwrap();
        // Every non-Tier-1 AS must have at least one provider or peer
        // (reachability precondition for propagation).
        for (asn, info) in &t.ases {
            if info.tier == TierClass::Tier1 {
                continue;
            }
            assert!(
                !graph.providers(*asn).is_empty() || !graph.peers(*asn).is_empty(),
                "{asn} has no upstream"
            );
        }
    }

    #[test]
    fn cogent_runs_partial_transit() {
        let t = small();
        let partial: Vec<_> = t.links.iter().filter(|(_, r)| r.partial_transit).collect();
        assert!(!partial.is_empty(), "no partial-transit links generated");
        let cogent_partial = partial
            .iter()
            .filter(|(l, r)| r.base.provider() == Some(t.cogent) && l.contains(t.cogent))
            .count();
        assert!(
            cogent_partial > 0,
            "cogent has no partial-transit customers"
        );
    }

    #[test]
    fn special_stubs_peer_with_tier1() {
        let t = small();
        let special: Vec<&AsInfo> = t
            .ases
            .values()
            .filter(|i| i.tier == TierClass::Stub && i.special.is_some())
            .collect();
        assert!(!special.is_empty());
        let mut peered = 0;
        for info in &special {
            for t1 in &t.tier1 {
                if let Some(link) = Link::new(info.asn, *t1) {
                    if t.gt_rel(link).map(|r| r.base) == Some(Rel::P2p) {
                        peered += 1;
                    }
                }
            }
        }
        assert!(
            peered >= special.len(),
            "special stubs should peer with T1s"
        );
    }

    #[test]
    fn lacnic_region_has_population_and_low_publication() {
        let t = generate(&TopologyConfig::small(3));
        let lacnic: Vec<&AsInfo> = t
            .ases
            .values()
            .filter(|i| i.region == RirRegion::Lacnic)
            .collect();
        let arin: Vec<&AsInfo> = t
            .ases
            .values()
            .filter(|i| i.region == RirRegion::Arin)
            .collect();
        assert!(lacnic.len() > 50);
        let l_pub =
            lacnic.iter().filter(|i| i.publishes_communities).count() as f64 / lacnic.len() as f64;
        let ar_pub =
            arin.iter().filter(|i| i.publishes_communities).count() as f64 / arin.len() as f64;
        assert!(
            l_pub < ar_pub / 5.0,
            "LACNIC publication rate ({l_pub:.3}) must be far below ARIN ({ar_pub:.3})"
        );
    }

    #[test]
    fn registry_artifacts_reconstruct_regions() {
        let t = small();
        let iana = t.iana_table();
        let files = t.delegation_files("20180405");
        let map = asregistry::RegionMap::build(iana, &files);
        let mut checked = 0;
        for info in t.ases.values() {
            assert_eq!(
                map.region(info.asn),
                Some(info.region),
                "{} region mismatch",
                info.asn
            );
            checked += 1;
        }
        assert!(checked > 1000);
        // Transfers exist and the delegation refinement handles them.
        assert!(!t.transferred_asns().is_empty());
    }

    #[test]
    fn as2org_identifies_siblings() {
        let t = small();
        let org = t.as2org();
        let sibling_links: Vec<Link> = t
            .links
            .iter()
            .filter(|(_, r)| r.base == Rel::S2s)
            .map(|(l, _)| *l)
            .collect();
        assert!(!sibling_links.is_empty(), "no sibling links generated");
        for link in sibling_links {
            assert!(org.is_sibling_link(link), "{link} not detected as sibling");
        }
    }

    #[test]
    fn vantage_points_are_valid_ases() {
        let t = small();
        assert!(t.collector_peers.len() >= 50);
        for vp in &t.collector_peers {
            assert!(t.ases.contains_key(&vp.asn), "VP {} unknown", vp.asn);
            if vp.two_byte_only {
                assert!(!vp.asn.is_four_byte());
            }
        }
        // Some of each flavour.
        assert!(t.collector_peers.iter().any(|v| v.full_feed));
        assert!(t.collector_peers.iter().any(|v| !v.full_feed));
    }

    #[test]
    fn four_byte_asns_exist() {
        let t = small();
        let four = t.ases.keys().filter(|a| a.is_four_byte()).count();
        assert!(
            four > t.as_count() / 10,
            "need a sizable 32-bit population, got {four}"
        );
    }

    #[test]
    fn hybrid_links_exist_and_are_complex() {
        let t = generate(&TopologyConfig {
            hybrid_link_share: 0.05,
            ..TopologyConfig::small(42)
        });
        let hybrid = t.links.values().filter(|r| r.hybrid_alt.is_some()).count();
        assert!(hybrid > 0);
        assert!(t.complex_links().len() >= hybrid);
    }
}
