//! The generated topology model.

use asgraph::{AsGraph, Asn, GtRel, Link};
use asregistry::{
    delegation::{DelegationFile, DelegationRecord, DelegationStatus},
    org::{As2Org, OrgId},
    RirRegion,
};
use bgpwire::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Coarse position in the routing hierarchy (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TierClass {
    /// Provider-free clique member.
    Tier1,
    /// Sells transit but is not in the clique.
    Transit,
    /// No customers.
    Stub,
    /// Large content network (no customers, huge peering surface).
    Hypergiant,
}

/// Special business models for stubs that peer with Tier-1s — the §6 `S-T1`
/// P2P class ("research ASes, anycast-based DNS providers, content delivery
/// networks, and cloud providers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecialRole {
    /// Anycast DNS operator.
    AnycastDns,
    /// Research / academic network.
    Research,
    /// Cloud provider.
    Cloud,
    /// Content delivery network.
    Cdn,
}

/// Per-AS ground-truth metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Current service region (after transfers).
    pub region: RirRegion,
    /// Region of the original IANA block allocation (differs from `region`
    /// iff the ASN was transferred between RIRs).
    pub allocated_region: RirRegion,
    /// ISO-3166 country code.
    pub country: String,
    /// Owning organisation.
    pub org: OrgId,
    /// Hierarchy class.
    pub tier: TierClass,
    /// Special business model, if any.
    pub special: Option<SpecialRole>,
    /// Prefixes originated by this AS.
    pub prefixes: Vec<Ipv4Prefix>,
    /// Per-prefix traffic engineering: `Some(k)` pins `prefixes[i]` to the
    /// AS's `k mod n_providers`-th provider (announced only there); `None`
    /// announces everywhere. Parallel to `prefixes`.
    pub prefix_te: Vec<Option<u8>>,
    /// `true` if the AS documents its BGP communities publicly (IRR/website) —
    /// the precondition for appearing in community-based validation data.
    pub publishes_communities: bool,
    /// `true` if the AS habitually prepends its path on provider exports.
    pub prepends: bool,
    /// `true` if the AS participates in MANRS (routing-hygiene signal, the
    /// paper's Appendix C feature 12).
    pub manrs: bool,
    /// `true` if the AS exhibits serial-hijacker behaviour (Testart et al.
    /// 2019; the other half of Appendix C feature 12).
    pub hijacker: bool,
}

/// An IXP-style peering mesh (the PeeringDB substitute for Appendix C
/// feature 10: common IXPs of a link's endpoints).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ixp {
    /// Service region the IXP operates in.
    pub region: RirRegion,
    /// Member ASes.
    pub members: BTreeSet<Asn>,
}

/// A route-collector peering session (vantage point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectorPeer {
    /// The vantage-point AS.
    pub asn: Asn,
    /// `true`: exports its full best-route table; `false`: customer routes
    /// only (partial feed).
    pub full_feed: bool,
    /// `true` if the collector session is 16-bit-only (produces `AS_TRANS`
    /// substitutions for 4-byte ASNs on the wire).
    pub two_byte_only: bool,
}

/// The complete generated world: ground-truth graph + metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Per-AS metadata.
    pub ases: BTreeMap<Asn, AsInfo>,
    /// Ground-truth links with (possibly complex) relationships.
    pub links: BTreeMap<Link, GtRel>,
    /// The Tier-1 clique.
    pub tier1: BTreeSet<Asn>,
    /// The hypergiant set.
    pub hypergiants: BTreeSet<Asn>,
    /// The Cogent-like Tier-1 running a partial-transit program.
    pub cogent: Asn,
    /// Route-collector vantage points.
    pub collector_peers: Vec<CollectorPeer>,
    /// The IXP meshes generated per region (PeeringDB substitute).
    pub ixps: Vec<Ixp>,
}

impl Topology {
    /// Per-AS info lookup.
    #[must_use]
    pub fn info(&self, asn: Asn) -> Option<&AsInfo> {
        self.ases.get(&asn)
    }

    /// The service region of `asn` (ground truth).
    #[must_use]
    pub fn region_of(&self, asn: Asn) -> Option<RirRegion> {
        self.ases.get(&asn).map(|i| i.region)
    }

    /// Number of ASes.
    #[must_use]
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Number of ground-truth links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The ground-truth relationship of `link`.
    #[must_use]
    pub fn gt_rel(&self, link: Link) -> Option<&GtRel> {
        self.links.get(&link)
    }

    /// Builds the plain [`AsGraph`] over the *base* relationships (hybrid
    /// minority labels and partial-transit flags dropped).
    pub fn ground_truth_graph(&self) -> Result<AsGraph, asgraph::GraphError> {
        AsGraph::from_rels(self.links.iter().map(|(l, r)| (*l, r.base)))
    }

    /// All links whose ground truth is complex (partial transit or hybrid).
    #[must_use]
    pub fn complex_links(&self) -> Vec<Link> {
        self.links
            .iter()
            .filter(|(_, r)| r.is_complex())
            .map(|(l, _)| *l)
            .collect()
    }

    /// Emits the synthetic IANA initial-assignment table covering this
    /// topology's ASN pools.
    #[must_use]
    pub fn iana_table(&self) -> asregistry::IanaAsnTable {
        crate::alloc::iana_table()
    }

    /// Emits one extended delegation file per RIR, reflecting each AS's
    /// *current* (post-transfer) service region — parsing these through
    /// `asregistry` reproduces the paper's two-step region mapping.
    #[must_use]
    pub fn delegation_files(&self, date: &str) -> Vec<DelegationFile> {
        let mut files: BTreeMap<RirRegion, DelegationFile> = RirRegion::ALL
            .into_iter()
            .map(|r| (r, DelegationFile::new(r, date)))
            .collect();
        for info in self.ases.values() {
            let file = files.get_mut(&info.region).expect("all regions present");
            file.records.push(DelegationRecord {
                cc: info.country.clone(),
                start: info.asn,
                count: 1,
                date: date.to_owned(),
                status: DelegationStatus::Allocated,
                opaque_id: info.org.0.clone(),
            });
        }
        files.into_values().collect()
    }

    /// Emits the AS2Org dataset.
    #[must_use]
    pub fn as2org(&self) -> As2Org {
        let mut m = As2Org::new();
        let mut seen: BTreeSet<&OrgId> = BTreeSet::new();
        for info in self.ases.values() {
            if seen.insert(&info.org) {
                m.add_org(
                    info.org.clone(),
                    format!("org-{}", info.org.0.trim_start_matches('@')),
                    info.country.clone(),
                );
            }
            m.assign(info.asn, info.org.clone());
        }
        m
    }

    /// ASes of a given tier, sorted.
    #[must_use]
    pub fn ases_of_tier(&self, tier: TierClass) -> Vec<Asn> {
        self.ases
            .values()
            .filter(|i| i.tier == tier)
            .map(|i| i.asn)
            .collect()
    }

    /// ASNs that were transferred between regions (allocated ≠ current).
    #[must_use]
    pub fn transferred_asns(&self) -> Vec<Asn> {
        self.ases
            .values()
            .filter(|i| i.region != i.allocated_region)
            .map(|i| i.asn)
            .collect()
    }

    /// FNV-1a 64 digest over the full topology (every AS record, link,
    /// vantage point, and IXP, via the deterministic `Debug` rendering,
    /// streamed — no intermediate string). Used by the generator's
    /// byte-identity regression tests and `scalebench` to pin the streaming
    /// builder to the historical output at existing seeds and sizes.
    #[must_use]
    pub fn digest(&self) -> u64 {
        crate::model::debug_digest(self)
    }
}

/// Streams `value`'s `Debug` rendering through an FNV-1a 64 hasher — a
/// byte-identity fingerprint with no intermediate buffer. Downstream crates
/// (bgpsim, bench) reuse it to pin their own outputs in regression tests.
#[must_use]
pub fn debug_digest<T: std::fmt::Debug>(value: &T) -> u64 {
    struct FnvWriter(u64);
    impl std::fmt::Write for FnvWriter {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Ok(())
        }
    }
    let mut w = FnvWriter(0xCBF2_9CE4_8422_2325);
    use std::fmt::Write as _;
    write!(w, "{value:?}").expect("FnvWriter never fails");
    w.0
}
