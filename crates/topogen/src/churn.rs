//! Topology evolution over time.
//!
//! §7 of the paper argues the routing ecosystem's "intrinsic, continuous
//! change" could be exploited to over-sample validation data — if one knows
//! how long relationships stay unchanged. This module provides the change
//! process: a seeded month-over-month evolution of a generated topology
//! (provider switches, de-peering, new peering, partial-transit contract
//! flips), preserving the invariants the propagation engine relies on
//! (acyclic provider hierarchy, upward connectivity).

use crate::model::{TierClass, Topology};
use asgraph::{Asn, GtRel, Link, Rel};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Per-step churn probabilities (a "step" ≈ one month).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Seed for the churn process (varied per step by the caller or via
    /// [`evolve_steps`]).
    pub seed: u64,
    /// Probability that a multihomed customer replaces one provider.
    pub provider_switch_prob: f64,
    /// Probability that a peering link dissolves.
    pub depeering_prob: f64,
    /// Number of new peering links per step, as a fraction of existing ones.
    pub new_peering_rate: f64,
    /// Probability that a partial-transit contract upgrades to full transit
    /// (or a full Tier-1 transit contract downgrades to partial).
    pub partial_flip_prob: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 1,
            provider_switch_prob: 0.015,
            depeering_prob: 0.01,
            new_peering_rate: 0.012,
            partial_flip_prob: 0.03,
        }
    }
}

/// What changed in one step.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Provider links replaced (old removed, new added).
    pub provider_switches: usize,
    /// Peerings dissolved.
    pub depeerings: usize,
    /// Peerings created.
    pub new_peerings: usize,
    /// Partial-transit flags flipped.
    pub partial_flips: usize,
}

impl ChurnReport {
    /// Total changed links.
    #[must_use]
    pub fn total(&self) -> usize {
        // A provider switch changes two links (one removed, one added).
        2 * self.provider_switches + self.depeerings + self.new_peerings + self.partial_flips
    }
}

/// Evolves `topology` by one step. Deterministic under `cfg.seed`.
#[must_use]
pub fn evolve(topology: &Topology, cfg: &ChurnConfig) -> (Topology, ChurnReport) {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut next = topology.clone();
    let mut report = ChurnReport::default();

    let graph = match topology.ground_truth_graph() {
        Ok(g) => g,
        Err(_) => return (next, report),
    };
    let transits: Vec<Asn> = topology.ases_of_tier(TierClass::Transit);

    // Live provider→customer adjacency, updated as switches land, so that a
    // later switch cannot close a cycle opened by an earlier one in the same
    // step.
    let mut customer_adj: std::collections::BTreeMap<Asn, Vec<Asn>> = Default::default();
    for (link, rel) in &topology.links {
        if let Rel::P2c { provider } = rel.base {
            if let Some(customer) = link.other(provider) {
                customer_adj.entry(provider).or_default().push(customer);
            }
        }
    }
    let reaches = |adj: &std::collections::BTreeMap<Asn, Vec<Asn>>, from: Asn, to: Asn| -> bool {
        let mut seen: std::collections::BTreeSet<Asn> = Default::default();
        let mut stack = vec![from];
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            if !seen.insert(cur) {
                continue;
            }
            if let Some(customers) = adj.get(&cur) {
                stack.extend(customers.iter().copied());
            }
        }
        false
    };

    // ---- provider switches ---------------------------------------------------
    let customers: Vec<Asn> = topology
        .ases
        .values()
        .filter(|i| matches!(i.tier, TierClass::Transit | TierClass::Stub))
        .map(|i| i.asn)
        .collect();
    for &customer in &customers {
        if !rng.random_bool(cfg.provider_switch_prob) {
            continue;
        }
        let providers = graph.providers(customer);
        if providers.len() < 2 {
            continue; // single-homed customers keep their lifeline
        }
        let old = providers[rng.random_range(0..providers.len())];
        // New provider: a transit in any region, not already a neighbor, and
        // not reachable through the customer's *current* cone (checked
        // against the live adjacency, keeping the hierarchy acyclic even
        // across multiple switches in one step).
        let mut candidates: Vec<Asn> = transits
            .iter()
            .copied()
            .filter(|t| {
                *t != customer
                    && Link::new(*t, customer)
                        .map(|l| !next.links.contains_key(&l))
                        .unwrap_or(false)
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        candidates.shuffle(&mut rng);
        let Some(&new) = candidates
            .iter()
            .find(|t| !reaches(&customer_adj, customer, **t))
        else {
            continue;
        };
        let Some(old_link) = Link::new(old, customer) else {
            continue;
        };
        let Some(new_link) = Link::new(new, customer) else {
            continue;
        };
        next.links.remove(&old_link);
        next.links
            .insert(new_link, GtRel::simple(Rel::P2c { provider: new }));
        if let Some(list) = customer_adj.get_mut(&old) {
            list.retain(|c| *c != customer);
        }
        customer_adj.entry(new).or_default().push(customer);
        report.provider_switches += 1;
    }

    // ---- de-peering -------------------------------------------------------------
    let peerings: Vec<Link> = topology
        .links
        .iter()
        .filter(|(_, r)| r.base == Rel::P2p)
        .map(|(l, _)| *l)
        .collect();
    for link in &peerings {
        // Never dissolve the Tier-1 mesh (those contracts are sticky).
        if topology.tier1.contains(&link.a()) && topology.tier1.contains(&link.b()) {
            continue;
        }
        if rng.random_bool(cfg.depeering_prob) {
            next.links.remove(link);
            report.depeerings += 1;
        }
    }

    // ---- new peering ---------------------------------------------------------------
    let targets = ((peerings.len() as f64) * cfg.new_peering_rate).round() as usize;
    let mut guard = 0;
    while report.new_peerings < targets && guard < targets * 20 {
        guard += 1;
        let a = transits[rng.random_range(0..transits.len())];
        let b = transits[rng.random_range(0..transits.len())];
        let Some(link) = Link::new(a, b) else {
            continue;
        };
        if next.links.contains_key(&link) {
            continue;
        }
        next.links.insert(link, GtRel::simple(Rel::P2p));
        report.new_peerings += 1;
    }

    // ---- partial-transit contract flips -----------------------------------------------
    let t1_p2c: Vec<(Link, GtRel)> = topology
        .links
        .iter()
        .filter(|(l, r)| {
            r.base
                .provider()
                .map(|p| topology.tier1.contains(&p) && l.contains(p))
                .unwrap_or(false)
        })
        .map(|(l, r)| (*l, r.clone()))
        .collect();
    for (link, gt) in t1_p2c {
        if !rng.random_bool(cfg.partial_flip_prob) {
            continue;
        }
        let mut flipped = gt.clone();
        flipped.partial_transit = !gt.partial_transit;
        next.links.insert(link, flipped);
        report.partial_flips += 1;
    }

    (next, report)
}

/// Evolves a topology through `steps` snapshots (seed varied per step).
/// Returns the sequence `[t0, t1, …, t_steps]` and per-step reports.
#[must_use]
pub fn evolve_steps(
    topology: &Topology,
    cfg: &ChurnConfig,
    steps: usize,
) -> (Vec<Topology>, Vec<ChurnReport>) {
    let mut snapshots = vec![topology.clone()];
    let mut reports = Vec::with_capacity(steps);
    for step in 0..steps {
        let step_cfg = ChurnConfig {
            seed: cfg.seed.wrapping_add(step as u64 + 1),
            ..*cfg
        };
        let (next, report) = evolve(snapshots.last().expect("non-empty"), &step_cfg);
        snapshots.push(next);
        reports.push(report);
    }
    (snapshots, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyConfig;

    fn base() -> Topology {
        crate::generate(&TopologyConfig::small(5))
    }

    #[test]
    fn evolve_changes_something_and_is_deterministic() {
        let t0 = base();
        let cfg = ChurnConfig::default();
        let (t1a, ra) = evolve(&t0, &cfg);
        let (t1b, rb) = evolve(&t0, &cfg);
        assert_eq!(ra, rb);
        assert_eq!(
            t1a.links.keys().collect::<Vec<_>>(),
            t1b.links.keys().collect::<Vec<_>>()
        );
        assert!(ra.total() > 0, "default churn must change links");
    }

    #[test]
    fn hierarchy_stays_acyclic_after_churn() {
        let t0 = base();
        let (snapshots, _) = evolve_steps(&t0, &ChurnConfig::default(), 5);
        for (i, t) in snapshots.iter().enumerate() {
            let g = t
                .ground_truth_graph()
                .unwrap_or_else(|e| panic!("snapshot {i}: conflicting links after churn: {e}"));
            // DFS cycle check over provider→customer edges.
            let mut state: std::collections::BTreeMap<Asn, u8> = Default::default();
            fn visit(
                g: &asgraph::AsGraph,
                a: Asn,
                state: &mut std::collections::BTreeMap<Asn, u8>,
            ) -> bool {
                match state.get(&a) {
                    Some(1) => return false,
                    Some(2) => return true,
                    _ => {}
                }
                state.insert(a, 1);
                for c in g.customers(a) {
                    if !visit(g, c, state) {
                        return false;
                    }
                }
                state.insert(a, 2);
                true
            }
            for asn in g.ases() {
                assert!(visit(&g, asn, &mut state), "cycle after churn step {i}");
            }
        }
    }

    #[test]
    fn tier1_mesh_survives() {
        let t0 = base();
        let aggressive = ChurnConfig {
            depeering_prob: 0.5,
            ..ChurnConfig::default()
        };
        let (t1, _) = evolve(&t0, &aggressive);
        let t1s: Vec<Asn> = t0.tier1.iter().copied().collect();
        for i in 0..t1s.len() {
            for j in (i + 1)..t1s.len() {
                let link = Link::new(t1s[i], t1s[j]).unwrap();
                assert!(t1.links.contains_key(&link), "T1 mesh link {link} dropped");
            }
        }
    }

    #[test]
    fn partial_flips_change_contracts() {
        let t0 = base();
        let cfg = ChurnConfig {
            partial_flip_prob: 0.5,
            ..ChurnConfig::default()
        };
        let (t1, report) = evolve(&t0, &cfg);
        assert!(report.partial_flips > 0);
        let changed = t0
            .links
            .iter()
            .filter(|(l, r)| {
                t1.links
                    .get(l)
                    .map(|r2| r2.partial_transit != r.partial_transit)
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(changed, report.partial_flips);
    }

    #[test]
    fn multi_step_accumulates_change() {
        let t0 = base();
        let (snapshots, reports) = evolve_steps(&t0, &ChurnConfig::default(), 3);
        assert_eq!(snapshots.len(), 4);
        assert_eq!(reports.len(), 3);
        // Later snapshots differ from the base more than earlier ones.
        let diff = |t: &Topology| t.links.keys().filter(|l| !t0.links.contains_key(l)).count();
        assert!(diff(&snapshots[3]) >= diff(&snapshots[1]));
    }
}
