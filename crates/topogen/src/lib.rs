//! # topogen — synthetic Internet topology generator
//!
//! Generates a seeded, Internet-like AS-level topology with **ground-truth**
//! business relationships. This substitutes for the real (unobservable)
//! Internet: the paper's bias mechanisms are structural, so the generator
//! exposes an explicit knob for each of them:
//!
//! * a Tier-1 clique with a *partial-transit* program on a Cogent-like member
//!   (the §6.1 mechanism),
//! * a regional transit hierarchy + stubs with preferential attachment,
//! * hypergiants with dense settlement-free peering,
//! * per-region IXP peering meshes (LACNIC's dense local peering is what makes
//!   `L°` ~14 % of links while staying invisible to validation),
//! * special stubs (anycast DNS, research, cloud, CDN) that *peer* with
//!   Tier-1s — the `S-T1` P2P class all classifiers fail on,
//! * per-PoP hybrid links and same-organisation sibling links (§4.2),
//! * per-(region, tier) BGP-community *publication* probabilities — the causal
//!   source of validation-coverage bias, and
//! * 16-/32-bit ASN allocation per region, feeding the `AS_TRANS` artefacts.
//!
//! The output [`Topology`] also emits registry artefacts (IANA table, RIR
//! delegation files, AS2Org) in their real text formats via `asregistry`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod churn;
pub mod config;
pub mod generate;
pub mod model;
mod picker;

pub use churn::{evolve, evolve_steps, ChurnConfig, ChurnReport};
pub use config::TopologyConfig;
pub use generate::generate;
pub use model::{debug_digest, AsInfo, CollectorPeer, Ixp, SpecialRole, TierClass, Topology};
