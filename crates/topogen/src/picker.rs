//! Weighted preferential-attachment pools for the streaming builder.
//!
//! The pre-streaming generator cloned its candidate vectors (all transits,
//! regional transits, regional stubs, …) on **every** provider pick and
//! recomputed every weight from scratch — O(n) allocation + O(n) powf per
//! pick, O(n²) over a full run. [`PoolSet`] keeps each candidate pool
//! resident with cached weights that are updated incrementally as customer
//! counts grow, so a pick is:
//!
//! * **exact path** (pool ≤ [`EXACT_PICK_MAX`]): one RNG draw and a linear
//!   scan over the *cached* weights. The cached weight is produced by the
//!   identical `((count + 1) as f64).powf(exp)` expression the old code
//!   evaluated inline, and the scan folds the same values in the same order,
//!   so the selected item is bit-for-bit the one the old generator chose —
//!   every historical seed/size reproduces byte-identically (all pools in
//!   the default paper-scale config stay far below the threshold).
//! * **tree path** (larger pools): one RNG draw and an O(log n) descend of a
//!   Fenwick prefix-sum tree. Floating-point summation order differs from
//!   the linear fold, so this path is reserved for the new large-scale
//!   regime where no historical baseline exists.
//!
//! Both paths consume exactly one `f64` draw per pick (and none for an empty
//! pool), so the generator's RNG stream is independent of which path runs.

use asgraph::Asn;
use rand::Rng;
use std::collections::BTreeMap;

/// Largest pool the exact (historical, linear-scan) pick still covers.
/// Every pool reachable by the shipped configs (`default` ≈ 1.7k transits,
/// `small` ≈ 220) is far below this; only new `scaled` configs exceed it.
pub(crate) const EXACT_PICK_MAX: usize = 16_384;

/// One weighted candidate pool.
struct WeightedPool {
    items: Vec<Asn>,
    weights: Vec<f64>,
    /// 1-indexed Fenwick tree over `weights` (index 0 unused).
    tree: Vec<f64>,
    /// Item index per member, for incremental weight updates.
    pos: BTreeMap<Asn, u32>,
}

impl WeightedPool {
    fn new() -> Self {
        WeightedPool {
            items: Vec::new(),
            weights: Vec::new(),
            tree: vec![0.0],
            pos: BTreeMap::new(),
        }
    }

    /// Prefix sum of weights `1..=i` (tree indexing).
    fn prefix(&self, mut i: usize) -> f64 {
        let mut s = 0.0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Adds `delta` at tree position `i`.
    fn tree_add(&mut self, mut i: usize, delta: f64) {
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn push(&mut self, asn: Asn, weight: f64) {
        let i = self.items.len() + 1; // tree index of the new item
        self.items.push(asn);
        self.weights.push(weight);
        self.pos.insert(asn, i as u32 - 1);
        // A fresh tree node covers the range (i - lowbit(i), i]; seed it with
        // the already-present portion of that range before adding the weight.
        let covered = self.prefix(i - 1) - self.prefix(i - (i & i.wrapping_neg()));
        self.tree.push(covered);
        self.tree_add(i, weight);
    }

    fn set_weight(&mut self, idx: usize, weight: f64) {
        let delta = weight - self.weights[idx];
        self.weights[idx] = weight;
        self.tree_add(idx + 1, delta);
    }

    fn pick<R: Rng>(&self, rng: &mut R) -> Option<Asn> {
        let n = self.items.len();
        if n == 0 {
            return None;
        }
        if n <= EXACT_PICK_MAX {
            // Historical algorithm over cached weights: same values, same
            // order, same fold — bit-identical selection.
            let total: f64 = self.weights.iter().sum();
            let mut x = rng.random::<f64>() * total;
            for (a, w) in self.items.iter().zip(&self.weights) {
                x -= w;
                if x <= 0.0 {
                    return Some(*a);
                }
            }
            return self.items.last().copied();
        }
        // Fenwick descend: find the first index whose cumulative weight
        // exceeds the draw. One draw, O(log n), no allocation.
        let total = self.prefix(n);
        let mut rem = rng.random::<f64>() * total;
        let mut step = 1usize << (usize::BITS - 1 - n.leading_zeros());
        let mut pos = 0usize;
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= rem {
                rem -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        Some(self.items[pos.min(n - 1)])
    }
}

/// The builder's resident candidate pools, addressed by dense pool ids.
pub(crate) struct PoolSet {
    pools: Vec<WeightedPool>,
}

/// Pool id: all transit ASes, in creation order.
pub(crate) const POOL_ALL_TRANSIT: usize = 0;
/// Pool id: large (directly-below-clique) transits.
pub(crate) const POOL_LARGE_TRANSIT: usize = 1;

/// Pool id of the regional transit pool (`ri` indexes `RirRegion::ALL`).
pub(crate) fn pool_transit_region(ri: usize) -> usize {
    2 + ri
}

/// Pool id of the regional stub pool (`ri` indexes `RirRegion::ALL`).
pub(crate) fn pool_stub_region(ri: usize) -> usize {
    7 + ri
}

const POOL_COUNT: usize = 12;

impl PoolSet {
    pub(crate) fn new() -> Self {
        PoolSet {
            pools: (0..POOL_COUNT).map(|_| WeightedPool::new()).collect(),
        }
    }

    /// Appends `asn` to `pool` with its current weight.
    pub(crate) fn push(&mut self, pool: usize, asn: Asn, weight: f64) {
        self.pools[pool].push(asn, weight);
    }

    /// Updates `asn`'s cached weight in every pool that contains it.
    pub(crate) fn set_weight(&mut self, asn: Asn, weight: f64) {
        for p in &mut self.pools {
            if let Some(&i) = p.pos.get(&asn) {
                p.set_weight(i as usize, weight);
            }
        }
    }

    /// Weighted pick from `pool`; `None` (and no RNG draw) when empty.
    pub(crate) fn pick<R: Rng>(&self, pool: usize, rng: &mut R) -> Option<Asn> {
        self.pools[pool].pick(rng)
    }

    pub(crate) fn is_empty(&self, pool: usize) -> bool {
        self.pools[pool].items.is_empty()
    }

    /// The pool's members in insertion order.
    pub(crate) fn items(&self, pool: usize) -> &[Asn] {
        &self.pools[pool].items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// The historical inline algorithm, verbatim.
    fn old_pick(rng: &mut ChaCha8Rng, items: &[Asn], weights: &[f64]) -> Option<Asn> {
        if items.is_empty() {
            return None;
        }
        let total: f64 = weights.iter().sum();
        let mut x = rng.random::<f64>() * total;
        for (a, w) in items.iter().zip(weights) {
            x -= w;
            if x <= 0.0 {
                return Some(*a);
            }
        }
        items.last().copied()
    }

    #[test]
    fn exact_path_matches_historical_algorithm() {
        let mut pool = WeightedPool::new();
        let mut weights = Vec::new();
        let mut items = Vec::new();
        for i in 0..500u32 {
            let w = ((i % 17 + 1) as f64).powf(0.6);
            pool.push(Asn(i + 1), w);
            items.push(Asn(i + 1));
            weights.push(w);
        }
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..2_000 {
            assert_eq!(pool.pick(&mut a), old_pick(&mut b, &items, &weights));
        }
    }

    #[test]
    fn exact_path_matches_after_weight_updates() {
        let mut pool = WeightedPool::new();
        for i in 0..200u32 {
            pool.push(Asn(i + 1), 1.0f64.powf(0.6));
        }
        // Grow some members the way the builder does.
        let mut weights = vec![1.0f64.powf(0.6); 200];
        for (count, idx) in [(3usize, 7usize), (10, 7), (40, 199), (2, 0)] {
            let w = ((count + 1) as f64).powf(0.6);
            pool.set_weight(idx, w);
            weights[idx] = w;
        }
        let items: Vec<Asn> = (0..200u32).map(|i| Asn(i + 1)).collect();
        let mut a = ChaCha8Rng::seed_from_u64(4);
        let mut b = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..1_000 {
            assert_eq!(pool.pick(&mut a), old_pick(&mut b, &items, &weights));
        }
    }

    #[test]
    fn tree_path_tracks_weight_distribution() {
        // Above EXACT_PICK_MAX the Fenwick path runs; check it samples
        // roughly proportionally (one heavy item among uniform ones).
        let mut pool = WeightedPool::new();
        let n = EXACT_PICK_MAX + 100;
        for i in 0..n as u32 {
            pool.push(Asn(i + 1), 1.0);
        }
        let heavy = Asn(1234);
        pool.set_weight(1233, (n / 4) as f64);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let hits = (0..20_000)
            .filter(|_| pool.pick(&mut rng) == Some(heavy))
            .count();
        // Expected share ≈ (n/4) / (n - 1 + n/4) ≈ 0.2.
        assert!((2_000..6_000).contains(&hits), "heavy item drew {hits}");
    }

    #[test]
    fn empty_pool_draws_nothing() {
        let pool = WeightedPool::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(pool.pick(&mut rng), None);
        let untouched = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            rng.clone().random::<u64>(),
            untouched.clone().random::<u64>()
        );
    }

    #[test]
    fn fenwick_prefix_sums_survive_interleaved_push_and_update() {
        let mut pool = WeightedPool::new();
        for i in 0..1_000u32 {
            pool.push(Asn(i + 1), f64::from(i % 7 + 1));
            if i % 3 == 0 {
                pool.set_weight((i / 2) as usize, f64::from(i % 5 + 1));
            }
        }
        let direct: f64 = pool.weights.iter().sum();
        assert!((pool.prefix(1_000) - direct).abs() < 1e-6);
        for probe in [1usize, 2, 63, 64, 65, 511, 999, 1_000] {
            let direct: f64 = pool.weights[..probe].iter().sum();
            assert!((pool.prefix(probe) - direct).abs() < 1e-6, "prefix {probe}");
        }
    }
}
