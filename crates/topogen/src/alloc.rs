//! Regional ASN allocation pools and the synthetic IANA table.
//!
//! Each region owns one 16-bit and one 32-bit pool (mirroring how IANA hands
//! 1024-blocks to RIRs). The allocator draws from the 16-bit pool until a
//! per-region probability sends a registrant to the 32-bit pool — LACNIC and
//! RIPE assign mostly 32-bit ASNs today, ARIN mostly legacy 16-bit ones. The
//! 32-bit population is what makes `AS_TRANS` substitution (and the §4.2
//! spurious labels) happen at 16-bit vantage points.

use asgraph::Asn;
use asregistry::{iana::BlockAuthority, IanaAsnTable, RirRegion};
use rand::Rng;
use std::collections::BTreeSet;

/// One region's allocation pools.
#[derive(Debug, Clone, Copy)]
pub struct RegionPools {
    /// The owning region.
    pub region: RirRegion,
    /// 16-bit pool (inclusive).
    pub pool16: (u32, u32),
    /// 32-bit pool (inclusive).
    pub pool32: (u32, u32),
    /// High 32-bit overflow pool (inclusive) for million-AS scale runs.
    /// Tried strictly *after* the two base pools, so topologies that fit in
    /// the base pools never draw from it (byte-identity at existing scales).
    pub pool_ext: (u32, u32),
}

/// The fixed pool plan (synthetic but shaped like the real registry: ARIN owns
/// the low legacy space, RIPE the largest 32-bit span, etc.).
pub const POOLS: [RegionPools; 5] = [
    RegionPools {
        region: RirRegion::Afrinic,
        pool16: (36_000, 37_500),
        pool32: (327_680, 329_999),
        pool_ext: (1_000_000_000, 1_004_999_999),
    },
    RegionPools {
        region: RirRegion::Apnic,
        pool16: (17_001, 24_500),
        pool32: (131_072, 141_000),
        pool_ext: (1_010_000_000, 1_014_999_999),
    },
    RegionPools {
        region: RirRegion::Arin,
        pool16: (1, 7_000),
        pool32: (390_000, 399_999),
        pool_ext: (1_020_000_000, 1_024_999_999),
    },
    RegionPools {
        region: RirRegion::Lacnic,
        pool16: (26_000, 28_700),
        pool32: (260_000, 269_999),
        pool_ext: (1_030_000_000, 1_034_999_999),
    },
    RegionPools {
        region: RirRegion::RipeNcc,
        pool16: (7_001, 16_999),
        pool32: (196_608, 216_000),
        pool_ext: (1_040_000_000, 1_044_999_999),
    },
];

/// Returns the pools for `region`.
#[must_use]
pub fn pools_for(region: RirRegion) -> RegionPools {
    POOLS
        .iter()
        .copied()
        .find(|p| p.region == region)
        .expect("POOLS covers all regions")
}

/// Builds the synthetic IANA initial-assignment table from the pool plan.
#[must_use]
pub fn iana_table() -> IanaAsnTable {
    // Collect (start, end, authority) for every pool, then emit in ascending
    // order with Reserved/Unallocated gaps implicit (absent blocks).
    let mut spans: Vec<(u32, u32, BlockAuthority)> = POOLS
        .iter()
        .flat_map(|p| {
            [
                (p.pool16.0, p.pool16.1, BlockAuthority::Rir(p.region)),
                (p.pool32.0, p.pool32.1, BlockAuthority::Rir(p.region)),
                (p.pool_ext.0, p.pool_ext.1, BlockAuthority::Rir(p.region)),
            ]
        })
        .collect();
    spans.sort_by_key(|s| s.0);
    let mut table = IanaAsnTable::new();
    for (start, end, auth) in spans {
        table
            .push_block(start, end, auth)
            .expect("POOLS is sorted and non-overlapping");
    }
    table
}

/// Sequential-with-jitter ASN allocator over the regional pools.
#[derive(Debug)]
pub struct AsnAllocator {
    used: BTreeSet<u32>,
    /// Per-pool-kind, per-region scan cursors (16-bit, 32-bit, extension).
    cursors: [[u32; 5]; 3],
}

const KIND_16: usize = 0;
const KIND_32: usize = 1;
const KIND_EXT: usize = 2;

impl AsnAllocator {
    /// A fresh allocator; `reserved` ASNs (e.g. the well-known Tier-1 and
    /// hypergiant numbers) are pre-marked as used.
    #[must_use]
    pub fn new(reserved: &[Asn]) -> Self {
        AsnAllocator {
            used: reserved.iter().map(|a| a.0).collect(),
            cursors: [[0; 5]; 3],
        }
    }

    fn region_idx(region: RirRegion) -> usize {
        RirRegion::ALL
            .iter()
            .position(|r| *r == region)
            .expect("exhaustive")
    }

    /// Allocates the next free ASN in `region`; `four_byte_prob` selects the
    /// 32-bit pool. Skips IANA-reserved values (`AS_TRANS` sits inside the
    /// APNIC 16-bit pool, as in reality) and already-used values.
    ///
    /// Returns `None` only if both pools are exhausted.
    pub fn allocate<R: Rng>(
        &mut self,
        region: RirRegion,
        four_byte_prob: f64,
        rng: &mut R,
    ) -> Option<Asn> {
        let pools = pools_for(region);
        let idx = Self::region_idx(region);
        let four_byte = rng.random_bool(four_byte_prob.clamp(0.0, 1.0));
        // The extension pool always comes last: a config whose population
        // fits the base pools allocates identically whether or not the
        // extension pools exist.
        let order: [((u32, u32), usize); 3] = if four_byte {
            [
                (pools.pool32, KIND_32),
                (pools.pool16, KIND_16),
                (pools.pool_ext, KIND_EXT),
            ]
        } else {
            [
                (pools.pool16, KIND_16),
                (pools.pool32, KIND_32),
                (pools.pool_ext, KIND_EXT),
            ]
        };
        for ((lo, hi), kind) in order {
            let cursor = &mut self.cursors[kind][idx];
            let mut candidate = lo + *cursor;
            while candidate <= hi {
                *cursor = candidate - lo + 1;
                if !Asn(candidate).is_reserved() && self.used.insert(candidate) {
                    return Some(Asn(candidate));
                }
                candidate += 1;
            }
        }
        None
    }

    /// Number of allocated ASNs (including pre-reserved ones).
    #[must_use]
    pub fn allocated(&self) -> usize {
        self.used.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn iana_table_covers_pools() {
        let t = iana_table();
        for p in POOLS {
            assert_eq!(t.initial_region(Asn(p.pool16.0)), Some(p.region));
            assert_eq!(t.initial_region(Asn(p.pool16.1)), Some(p.region));
            assert_eq!(t.initial_region(Asn(p.pool32.0)), Some(p.region));
            assert_eq!(t.initial_region(Asn(p.pool_ext.0)), Some(p.region));
            assert_eq!(t.initial_region(Asn(p.pool_ext.1)), Some(p.region));
        }
        // Gap between pools is unassigned.
        assert_eq!(t.initial_region(Asn(25_000)), None);
    }

    #[test]
    fn iana_table_text_roundtrip() {
        let t = iana_table();
        let parsed = IanaAsnTable::parse(&t.to_text()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn allocator_skips_reserved_and_used() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut alloc = AsnAllocator::new(&[Asn(17_001)]);
        // APNIC 16-bit pool contains AS_TRANS (23456): exhaustively allocate
        // past it and verify it is never handed out.
        let mut got = Vec::new();
        for _ in 0..7_000 {
            if let Some(a) = alloc.allocate(RirRegion::Apnic, 0.0, &mut rng) {
                got.push(a);
            }
        }
        assert!(
            !got.contains(&Asn(23_456)),
            "AS_TRANS must never be allocated"
        );
        assert!(
            !got.contains(&Asn(17_001)),
            "pre-reserved ASN must be skipped"
        );
        // All unique.
        let set: BTreeSet<Asn> = got.iter().copied().collect();
        assert_eq!(set.len(), got.len());
    }

    #[test]
    fn four_byte_prob_selects_pool() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut alloc = AsnAllocator::new(&[]);
        let a16 = alloc.allocate(RirRegion::Lacnic, 0.0, &mut rng).unwrap();
        assert!(!a16.is_four_byte());
        let a32 = alloc.allocate(RirRegion::Lacnic, 1.0, &mut rng).unwrap();
        assert!(a32.is_four_byte());
    }

    #[test]
    fn extension_pool_is_last_resort() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut alloc = AsnAllocator::new(&[]);
        // AFRINIC base pools hold 1501 + 2320 ASNs; the 4000th allocation
        // must land in the extension pool, and everything before it must not.
        let mut got = Vec::new();
        for _ in 0..4_000 {
            got.push(alloc.allocate(RirRegion::Afrinic, 0.0, &mut rng).unwrap());
        }
        let ext_lo = pools_for(RirRegion::Afrinic).pool_ext.0;
        let first_ext = got.iter().position(|a| a.0 >= ext_lo).unwrap();
        // Base pools minus nothing reserved in them: 1501 + 2320 = 3821.
        assert_eq!(first_ext, 3_821);
        assert!(got[first_ext..].iter().all(|a| a.0 >= ext_lo));
        assert!(got[..first_ext].iter().all(|a| a.0 < ext_lo));
    }

    #[test]
    fn overflow_to_other_pool() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut alloc = AsnAllocator::new(&[]);
        // AFRINIC 16-bit pool holds 1501 ASNs; allocate 1600 with prob 0 and
        // expect spill into the 32-bit pool rather than failure.
        let mut four_byte = 0;
        for _ in 0..1_600 {
            let a = alloc.allocate(RirRegion::Afrinic, 0.0, &mut rng).unwrap();
            if a.is_four_byte() {
                four_byte += 1;
            }
        }
        assert!(four_byte > 0);
    }
}
