//! Property tests: generator invariants hold across the configuration space,
//! not just at the defaults.

use asgraph::RelClass;
use proptest::prelude::*;
use topogen::{generate, ChurnConfig, TopologyConfig};

fn arb_config() -> impl Strategy<Value = TopologyConfig> {
    (
        any::<u64>(),
        4usize..10,    // tier1
        60usize..160,  // transit
        200usize..500, // stub
        0usize..6,     // hypergiants
        0usize..8,     // special stubs
        0.0f64..0.5,   // cogent partial share
        0.0f64..0.1,   // hybrid share
        0.0f64..0.08,  // sibling share
    )
        .prop_map(
            |(seed, t1, tr, st, hg, sp, partial, hybrid, siblings)| TopologyConfig {
                seed,
                n_tier1: t1,
                n_transit: tr,
                n_stub: st,
                n_hypergiant: hg,
                n_special_stub: sp,
                cogent_partial_transit_share: partial,
                hybrid_link_share: hybrid,
                sibling_as_share: siblings,
                n_vantage_points: 30,
                ixps_per_region: [1, 1, 1, 1, 2],
                ..TopologyConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Core invariants across the knob space: population counts, acyclic
    /// hierarchy, upward connectivity, valid relationships, registry
    /// round-trip.
    #[test]
    fn generator_invariants(cfg in arb_config()) {
        let topo = generate(&cfg);
        prop_assert_eq!(topo.as_count(), cfg.total_ases());
        prop_assert_eq!(topo.tier1.len(), cfg.n_tier1);
        prop_assert_eq!(topo.hypergiants.len(), cfg.n_hypergiant);

        // Relationship labels are structurally valid and build a graph.
        let graph = topo.ground_truth_graph().expect("conflict-free links");

        // Acyclic provider hierarchy.
        let mut state: std::collections::BTreeMap<asgraph::Asn, u8> = Default::default();
        fn visit(
            g: &asgraph::AsGraph,
            a: asgraph::Asn,
            state: &mut std::collections::BTreeMap<asgraph::Asn, u8>,
        ) -> bool {
            match state.get(&a) {
                Some(1) => return false,
                Some(2) => return true,
                _ => {}
            }
            state.insert(a, 1);
            for c in g.customers(a) {
                if !visit(g, c, state) {
                    return false;
                }
            }
            state.insert(a, 2);
            true
        }
        for asn in graph.ases() {
            prop_assert!(visit(&graph, asn, &mut state), "provider cycle");
        }

        // Everyone except Tier-1s has an upstream (provider or peer).
        for (asn, info) in &topo.ases {
            if info.tier == topogen::TierClass::Tier1 {
                continue;
            }
            prop_assert!(
                !graph.providers(*asn).is_empty() || !graph.peers(*asn).is_empty(),
                "{asn} stranded"
            );
        }

        // Registry artefacts reconstruct regions through the text formats.
        let map = asregistry::RegionMap::build(
            topo.iana_table(),
            &topo.delegation_files("20180405"),
        );
        for info in topo.ases.values().take(200) {
            prop_assert_eq!(map.region(info.asn), Some(info.region));
        }

        // Sibling links only between same-org ASes.
        let org = topo.as2org();
        for (link, rel) in &topo.links {
            if rel.base.class() == RelClass::S2s {
                prop_assert!(org.is_sibling_link(*link), "stray S2S link {}", link);
            }
        }

        // Partial-transit share only applies to P2C links.
        for rel in topo.links.values() {
            if rel.partial_transit {
                prop_assert_eq!(rel.base.class(), RelClass::P2c);
            }
        }
    }

    /// Churn preserves the same invariants it promises: acyclic hierarchy
    /// and a conflict-free link set.
    #[test]
    fn churn_preserves_invariants(seed in any::<u64>(), churn_seed in any::<u64>()) {
        let topo = generate(&TopologyConfig {
            seed,
            n_tier1: 5,
            n_transit: 80,
            n_stub: 250,
            n_hypergiant: 3,
            n_special_stub: 4,
            n_vantage_points: 20,
            ixps_per_region: [1, 1, 1, 1, 1],
            ..TopologyConfig::default()
        });
        let (evolved, _) = topogen::evolve(
            &topo,
            &ChurnConfig {
                seed: churn_seed,
                provider_switch_prob: 0.05,
                depeering_prob: 0.05,
                new_peering_rate: 0.05,
                partial_flip_prob: 0.1,
            },
        );
        let graph = evolved.ground_truth_graph().expect("conflict-free after churn");
        let mut state: std::collections::BTreeMap<asgraph::Asn, u8> = Default::default();
        fn visit(
            g: &asgraph::AsGraph,
            a: asgraph::Asn,
            state: &mut std::collections::BTreeMap<asgraph::Asn, u8>,
        ) -> bool {
            match state.get(&a) {
                Some(1) => return false,
                Some(2) => return true,
                _ => {}
            }
            state.insert(a, 1);
            for c in g.customers(a) {
                if !visit(g, c, state) {
                    return false;
                }
            }
            state.insert(a, 2);
            true
        }
        for asn in graph.ases() {
            prop_assert!(visit(&graph, asn, &mut state), "cycle after churn");
        }
    }
}
