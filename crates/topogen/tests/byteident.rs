//! Byte-identity regression snapshot for the streaming generator.
//!
//! The digests below were captured from the pre-streaming (fully
//! materialising) builder. The streaming rewrite must reproduce the exact
//! same topology — every AS record, link, relationship, vantage point and
//! IXP — at these seeds and sizes. If a digest changes, the generator's
//! output changed for existing users; that is a bug, not a baseline refresh.

use topogen::{generate, TopologyConfig};

/// Captured from the pre-streaming builder; see module docs.
const SMALL_42: u64 = 0x5b1b_9a00_a8c6_5629;
const SMALL_7: u64 = 0xb91e_f879_3dcb_4305;
const DEFAULT_2018: u64 = 0x3b62_beaf_670e_27e1;

#[test]
fn small_seed_42_is_byte_identical() {
    let topo = generate(&TopologyConfig::small(42));
    assert_eq!(topo.digest(), SMALL_42, "got {:#018x}", topo.digest());
}

#[test]
fn small_seed_7_is_byte_identical() {
    let topo = generate(&TopologyConfig::small(7));
    assert_eq!(topo.digest(), SMALL_7, "got {:#018x}", topo.digest());
}

#[test]
fn default_config_is_byte_identical() {
    let topo = generate(&TopologyConfig::default());
    assert_eq!(topo.digest(), DEFAULT_2018, "got {:#018x}", topo.digest());
}
