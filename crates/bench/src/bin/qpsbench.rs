//! Query-server throughput benchmark: replays a seeded, realistic query
//! mix against a warm-loaded [`brevald`] snapshot set and records
//! throughput versus thread cap plus per-kind latency quantiles in
//! `BENCH_qps.json`.
//!
//! Two measured phases, mirroring how the server is actually used:
//!
//! * **throughput** — the full query corpus is answered through
//!   [`brevald::answer_batch`] (the serve loop's batch path, fanning out
//!   over the persistent pool) once per thread cap. Caps above the
//!   machine's hardware concurrency carry the parbench-style
//!   `exceeds_hardware` honesty flag, and the headline speedup only
//!   compares caps the hardware can actually run.
//! * **latency** — every query kind is answered serially through
//!   [`brevald::answer_line`] with a per-query `breval_obs::clock_ns`
//!   probe tallied into one [`breval_obs::Histogram`] per kind (p50 / p90
//!   / p99).
//!
//! The corpus is generated from a seeded ChaCha stream over the ASNs the
//! scenario actually contains, so answers hit real cones and real links;
//! the mix weights (below) skew toward the cheap point lookups a serving
//! deployment sees most. `BREVAL_QPS_QUERIES` overrides the corpus size
//! (CI smoke uses a small one).
//!
//! Run with `cargo run --release -p bench --bin qpsbench`.

#![forbid(unsafe_code)]

use breval_core::pipeline::{Scenario, ScenarioConfig};
use brevald::set::SnapshotSet;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::path::Path;

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

const SEED: u64 = 42;
const DEFAULT_QUERIES: usize = 20_000;
/// (kind, weight) — skewed toward the point lookups a server sees most.
const MIX: [(&str, u32); 6] = [
    ("cone", 30),
    ("member", 20),
    ("class", 25),
    ("ascov", 14),
    ("slice", 10),
    ("stats", 1),
];

#[derive(Serialize)]
struct MixEntry {
    kind: &'static str,
    weight: u32,
    queries: u64,
}

#[derive(Serialize)]
struct ThroughputPoint {
    threads: usize,
    /// True when this cap exceeds the measuring machine's hardware
    /// concurrency — the numbers are oversubscription, not scaling.
    exceeds_hardware: bool,
    queries: usize,
    wall_ms: f64,
    qps: f64,
}

#[derive(Serialize)]
struct KindLatency {
    kind: &'static str,
    queries: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
}

#[derive(Serialize)]
struct QpsBenchResult {
    seed: u64,
    hardware_threads: usize,
    classifiers: usize,
    warm_loaded: bool,
    query_mix: Vec<MixEntry>,
    throughput: Vec<ThroughputPoint>,
    /// Speedup of the highest non-oversubscribed cap over cap 1.
    speedup_hw_vs_1: f64,
    latency: Vec<KindLatency>,
}

/// Aborts with a labelled error instead of panicking (bench binaries are
/// deepcheck entry points, so their failure path must be panic-free).
fn die(msg: std::fmt::Arguments<'_>) -> ! {
    eprintln!("qpsbench: {msg}");
    std::process::exit(1);
}

/// One seeded query in the benchmark mix. ASNs are drawn from the
/// scenario's real AS population (plus a sliver of unknowns, as a real
/// client would send), so cone walks and link lookups do real work.
fn generate(rng: &mut ChaCha8Rng, asns: &[u32], kind: &'static str) -> String {
    let pick = |rng: &mut ChaCha8Rng| -> u32 {
        if asns.is_empty() || rng.random_range(0..50u32) == 0 {
            rng.random_range(1..100_000u32) // occasionally unknown to the graph
        } else {
            asns[rng.random_range(0..asns.len())]
        }
    };
    match kind {
        "cone" => format!("cone {}", pick(rng)),
        "member" => format!("member {} {}", pick(rng), pick(rng)),
        "class" => {
            let a = pick(rng);
            let mut b = pick(rng);
            if b == a {
                b = a.wrapping_add(1).max(1);
            }
            format!("class {a} {b}")
        }
        "ascov" => format!("ascov {}", pick(rng)),
        "slice" => {
            let region = match rng.random_range(0..4u32) {
                0 => "*".to_owned(),
                _ => {
                    let code = rng.random_range(0..=brevald::slices::REGION_NONE);
                    brevald::slices::region_label_of(code).unwrap_or_else(|| "*".to_owned())
                }
            };
            let topo = match rng.random_range(0..4u32) {
                0 => "*",
                _ => {
                    let codes: [u8; 10] = [0, 1, 2, 3, 5, 6, 7, 10, 11, 15];
                    let code = codes[rng.random_range(0..codes.len())];
                    brevald::slices::topo_label_of(code).unwrap_or("*")
                }
            };
            format!("slice {region} {topo}")
        }
        _ => "stats".to_owned(),
    }
}

fn main() {
    if std::env::var(breval_obs::ENV_VAR).is_err() {
        breval_obs::set_enabled(true);
    }

    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let total_queries = std::env::var("BREVAL_QPS_QUERIES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(DEFAULT_QUERIES);

    // --- build once, then warm-load the set the way the server does -----
    let config = ScenarioConfig::small(SEED);
    let snap_dir = std::env::temp_dir().join("breval_qpsbench");
    let _ = std::fs::remove_dir_all(&snap_dir);
    eprintln!("qpsbench: building scenario (seed {SEED}) and persisting snapshots…");
    let scenario = Scenario::run(config.clone());
    SnapshotSet::save_all(&scenario, &snap_dir)
        .unwrap_or_else(|e| die(format_args!("persisting snapshots: {e}")));
    let set = SnapshotSet::load(&snap_dir, &config)
        .unwrap_or_else(|e| die(format_args!("warm-loading snapshots: {e}")));
    let classifiers = set.classifiers().len();

    // The real AS population, from the first classifier's cone table.
    let asns: Vec<u32> = set
        .classifiers()
        .first()
        .map_or_else(Vec::new, |v| v.cones.iter().map(|(asn, _)| asn.0).collect());
    if asns.is_empty() {
        die(format_args!("scenario produced no ASes"));
    }

    // --- seeded corpus in mix proportions, then shuffled -----------------
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let weight_total: u32 = MIX.iter().map(|(_, w)| w).sum();
    let mut corpus: Vec<(&'static str, String)> = Vec::with_capacity(total_queries);
    for (kind, weight) in MIX {
        let share = (total_queries as u64 * u64::from(weight) / u64::from(weight_total)) as usize;
        for _ in 0..share.max(1) {
            corpus.push((kind, generate(&mut rng, &asns, kind)));
        }
    }
    rand::seq::SliceRandom::shuffle(&mut corpus[..], &mut rng);
    let lines: Vec<String> = corpus.iter().map(|(_, q)| q.clone()).collect();
    let query_mix: Vec<MixEntry> = MIX
        .iter()
        .map(|(kind, weight)| MixEntry {
            kind,
            weight: *weight,
            queries: corpus.iter().filter(|(k, _)| k == kind).count() as u64,
        })
        .collect();

    // --- throughput sweep over thread caps -------------------------------
    let mut caps = vec![1usize, 2, hardware_threads];
    caps.sort_unstable();
    caps.dedup();
    let mut throughput = Vec::new();
    let mut reference: Option<String> = None;
    for &threads in &caps {
        let t0 = breval_obs::clock_ns();
        let replies =
            breval_par::with_thread_cap(Some(threads), || brevald::answer_batch(&set, &lines));
        let wall_ms = breval_obs::clock_ns().saturating_sub(t0) as f64 / 1e6;
        // Honesty check on the results themselves: every cap must produce
        // byte-identical replies.
        let joined = replies.join("\n");
        match &reference {
            None => reference = Some(joined),
            Some(r) => {
                if *r != joined {
                    die(format_args!("replies differ between thread caps"));
                }
            }
        }
        let qps = lines.len() as f64 / (wall_ms / 1e3).max(1e-9);
        eprintln!(
            "qpsbench: {threads:>2} thread(s): {:>7} queries in {wall_ms:>8.1} ms = {qps:>9.0} q/s{}",
            lines.len(),
            if threads > hardware_threads {
                " [exceeds hardware]"
            } else {
                ""
            }
        );
        throughput.push(ThroughputPoint {
            threads,
            exceeds_hardware: threads > hardware_threads,
            queries: lines.len(),
            wall_ms,
            qps,
        });
    }
    let honest_best = throughput
        .iter()
        .filter(|p| !p.exceeds_hardware)
        .map(|p| p.qps)
        .fold(0.0f64, f64::max);
    let base = throughput
        .iter()
        .find(|p| p.threads == 1)
        .map_or(1.0, |p| p.qps);
    let speedup_hw_vs_1 = honest_best / base.max(1e-9);

    // --- per-kind latency quantiles (serial, per-query probe) ------------
    let mut latency = Vec::new();
    for (kind, _) in MIX {
        let mut h = breval_obs::Histogram::new();
        for (k, q) in &corpus {
            if *k != kind {
                continue;
            }
            let t0 = breval_obs::clock_ns();
            let reply = brevald::answer_line(&set, q);
            h.record(breval_obs::clock_ns().saturating_sub(t0));
            if !reply.starts_with("ok ") {
                die(format_args!("generated query '{q}' failed: {reply}"));
            }
        }
        eprintln!(
            "qpsbench: latency {kind:>6}: n={:<6} p50={} ns p99={} ns",
            h.count(),
            h.quantile(0.50),
            h.quantile(0.99)
        );
        latency.push(KindLatency {
            kind,
            queries: h.count(),
            p50_ns: h.quantile(0.50),
            p90_ns: h.quantile(0.90),
            p99_ns: h.quantile(0.99),
        });
    }

    let result = QpsBenchResult {
        seed: SEED,
        hardware_threads,
        classifiers,
        warm_loaded: true,
        query_mix,
        throughput,
        speedup_hw_vs_1,
        latency,
    };
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let json = serde_json::to_string_pretty(&result)
        .unwrap_or_else(|e| die(format_args!("serializing result: {e}")));
    std::fs::write(root.join("BENCH_qps.json"), json + "\n")
        .unwrap_or_else(|e| die(format_args!("writing BENCH_qps.json: {e}")));
    eprintln!(
        "qpsbench: wrote BENCH_qps.json (best honest {honest_best:.0} q/s, {speedup_hw_vs_1:.2}× vs 1 thread)"
    );
}
