//! Regenerates every table and figure of the paper against the simulated
//! world.
//!
//! ```text
//! experiments [--small] [--seed N] [--out DIR] [targets…]
//! targets: fig1 fig2 fig3 fig7 fig8 fig9 table1 table2 table3
//!          fig456 casestudy cleaning hardlinks features
//!          ablation_ambiguous ablation_sources ablation_legacy ablation_666
//!          timeline (small-scale, not in "all") calibration verify
//!          parbench (small-scale, not in "all")
//!          all                                  (default: all)
//! ```

#![forbid(unsafe_code)]

use breval_core::casestudy::run_case_study;
use breval_core::pipeline::HeatmapMetric;
use breval_core::report;
use breval_core::sampling::{sampling_sweep, SamplingConfig};
use breval_core::{Scenario, ScenarioConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Count allocations so the run manifest / `BENCH_obs.json` attribute
/// allocs + bytes to pipeline stages (span guards sample the thread-local
/// counters at their boundaries). Without this installed those columns
/// read 0.
#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc::new();

struct Args {
    small: bool,
    seed: Option<u64>,
    out: PathBuf,
    targets: BTreeSet<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        small: false,
        seed: None,
        out: PathBuf::from("results"),
        targets: BTreeSet::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--small" => args.small = true,
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok());
            }
            "--out" => {
                if let Some(dir) = it.next() {
                    args.out = PathBuf::from(dir);
                }
            }
            other => {
                args.targets.insert(other.to_owned());
            }
        }
    }
    if args.targets.is_empty() || args.targets.contains("all") {
        args.targets = [
            "fig1",
            "fig2",
            "fig3",
            "fig7",
            "fig8",
            "fig9",
            "table1",
            "table2",
            "table3",
            "fig456",
            "casestudy",
            "cleaning",
            "hardlinks",
            "features",
            "ablation_ambiguous",
            "ablation_sources",
            "ablation_legacy",
            "ablation_666",
            "calibration",
            "verify",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
    }
    args
}

/// Writes a machine-readable JSON artefact beside the text/CSV outputs.
fn write_json<T: serde::Serialize>(out: &std::path::Path, name: &str, value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serializable");
    breval_bench::write_result(out, &format!("{name}.json"), &json).expect("write json");
}

/// `parallel_map` per-item latency summary in `BenchObs` (conservative
/// log-bucket quantiles from the `parallel_map_item_ns` histogram).
#[derive(serde::Serialize, Default)]
struct ItemLatency {
    count: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
}

/// Benchmark-style observability summary written to `BENCH_obs.json` at the
/// repository root (schema 2): per-stage wall time, allocation attribution,
/// pool item latencies, and counters for the main pipeline run.
///
/// Schema history: v1 carried `total_wall_ms`, which always duplicated
/// `stage_wall_ms["scenario_run"]` — v2 drops it and adds `schema`,
/// hardware context (`hardware_threads` / `thread_cap`, so `xtask
/// obscheck` can compare baselines across machines honestly), `journal`,
/// per-stage `stage_allocs` / `stage_alloc_bytes`, and
/// `parallel_map_item_ns`.
#[derive(serde::Serialize)]
struct BenchObs {
    schema: u32,
    name: String,
    scenario: String,
    seed: u64,
    hardware_threads: u64,
    thread_cap: u64,
    /// Whether the event journal (`BREVAL_OBS_JOURNAL`) was on — journal
    /// overhead is bounded but nonzero, so regression baselines should
    /// compare like with like.
    journal: bool,
    stage_wall_ms: std::collections::BTreeMap<String, f64>,
    stage_allocs: std::collections::BTreeMap<String, u64>,
    stage_alloc_bytes: std::collections::BTreeMap<String, u64>,
    parallel_map_item_ns: ItemLatency,
    counters: std::collections::BTreeMap<String, u64>,
}

/// One thread-cap measurement row of the `parbench` target.
#[derive(serde::Serialize)]
struct BenchParRow {
    threads: usize,
    /// True when this cap exceeds the measuring machine's hardware
    /// concurrency: the extra threads cannot run in parallel, so the row's
    /// wall times are physically flat and excluded from headline speedups.
    exceeds_hardware: bool,
    snapshot_wall_ms: f64,
    inference_wall_ms: f64,
    compile_validation_wall_ms: f64,
    coverage_wall_ms: f64,
    heatmap_wall_ms: f64,
    scenario_wall_ms: f64,
}

/// Repeated-`parallel_map` microbenchmark: many small calls through the
/// resident pool vs the old spawn-per-call execution, isolating per-call
/// submission overhead from the work itself.
#[derive(serde::Serialize)]
struct PoolMicrobench {
    calls: usize,
    items_per_call: usize,
    threads: usize,
    /// True when the fixed 2-thread cap exceeds the measuring machine's
    /// hardware concurrency (same honesty flag as the row-level benches):
    /// the microbenchmark then measures submission overhead only, never
    /// parallel speedup.
    exceeds_hardware: bool,
    /// Total wall for `calls` maps through the persistent pool.
    pool_total_ms: f64,
    /// Total wall for the same maps with thread spawning per call.
    spawn_total_ms: f64,
    /// spawn_total_ms / pool_total_ms — > 1 means the pool amortises
    /// per-call overhead that spawning pays every time.
    spawn_over_pool: f64,
}

/// Parallel-scaling summary written to `BENCH_par.json` at the repository
/// root: per-stage wall time (snapshot, inference, validation compile,
/// coverage, heatmaps) at several thread caps, plus the pre-parallel
/// execution model (each classifier standing alone, re-deriving sanitised
/// paths / statistics / its ASRank seed) as the sequential baseline, plus
/// the pool-vs-spawn submission microbenchmark.
#[derive(serde::Serialize)]
struct BenchPar {
    name: String,
    scenario: String,
    seed: u64,
    /// Hardware concurrency of the measuring machine. Rows whose cap
    /// exceeds it are flagged and the headline speedups skip them, so the
    /// report stays honest on a single-core host.
    hardware_threads: usize,
    rows: Vec<BenchParRow>,
    /// Per-stage wall time of the old execution model, measured live.
    isolated_sequential_ms: std::collections::BTreeMap<String, f64>,
    /// (isolated sequential snapshot+inference) / (shared-preparation
    /// pipeline snapshot+inference at the widest meaningful thread cap).
    speedup_snapshot_infer: f64,
    /// (snapshot+inference at 1 thread) / (same at the widest cap that
    /// does not exceed `hardware_threads`).
    speedup_threads_n_vs_1: f64,
    pool_microbench: PoolMicrobench,
}

fn main() {
    // The experiments binary is the primary observability consumer: it
    // records a run manifest and an event-journal trace by default.
    // Setting BREVAL_OBS / BREVAL_OBS_JOURNAL explicitly (e.g. =0) wins.
    if std::env::var(breval_obs::ENV_VAR).is_err() {
        breval_obs::set_enabled(true);
    }
    if std::env::var(breval_obs::JOURNAL_ENV_VAR).is_err() {
        breval_obs::set_journal_enabled(true);
    }
    let args = parse_args();
    let mut config = if args.small {
        ScenarioConfig::small(args.seed.unwrap_or(2018))
    } else {
        ScenarioConfig::default()
    };
    if let Some(seed) = args.seed {
        config.topology.seed = seed;
    }

    eprintln!(
        "running scenario: {} ASes, seed {} …",
        config.topology.total_ases(),
        config.topology.seed
    );
    // Wall-clock progress readout comes from the scenario_run span rather
    // than an ad-hoc timer, so the same number lands in the run manifest.
    let run_ms_before = breval_obs::span_wall_ms("scenario_run");
    let scenario = Scenario::run(config);
    let run_ms = breval_obs::span_wall_ms("scenario_run") - run_ms_before;
    let timing = if breval_obs::enabled() {
        format!("in {run_ms:.1} ms ")
    } else {
        String::new()
    };
    eprintln!(
        "scenario ready {}— {} observed links, {} validated ({} clean)",
        timing,
        scenario.inferred_links.len(),
        scenario.validation_raw.len(),
        scenario.validation.len()
    );

    let emit = |name: &str, text: String, csv: Option<(String, String)>| {
        println!("{text}");
        breval_bench::write_result(&args.out, &format!("{name}.txt"), &text).expect("write result");
        if let Some((csv_name, csv_text)) = csv {
            breval_bench::write_result(&args.out, &csv_name, &csv_text).expect("write csv");
        }
    };

    for target in &args.targets {
        match target.as_str() {
            "fig1" => {
                let rows = scenario.fig1();
                write_json(&args.out, "fig1_regional_imbalance", &rows);
                emit(
                    "fig1_regional_imbalance",
                    report::render_coverage(&rows, "Fig. 1 — regional imbalance"),
                    Some((
                        "fig1_regional_imbalance.csv".into(),
                        report::coverage_csv(&rows),
                    )),
                );
            }
            "fig2" => {
                let rows = scenario.fig2();
                write_json(&args.out, "fig2_topological_imbalance", &rows);
                emit(
                    "fig2_topological_imbalance",
                    report::render_coverage(&rows, "Fig. 2 — topological imbalance"),
                    Some((
                        "fig2_topological_imbalance.csv".into(),
                        report::coverage_csv(&rows),
                    )),
                );
            }
            "fig3" | "fig7" | "fig8" | "fig9" => {
                let (metric, title) = match target.as_str() {
                    "fig3" => (
                        HeatmapMetric::TransitDegree,
                        "Fig. 3 — transit-degree imbalance (TR° links)",
                    ),
                    "fig7" => (
                        HeatmapMetric::Ppdc,
                        "Fig. 7 — PPDC cone imbalance (TR° links)",
                    ),
                    "fig8" => (
                        HeatmapMetric::PpdcNoVp,
                        "Fig. 8 — PPDC cone imbalance (no VP links)",
                    ),
                    _ => (
                        HeatmapMetric::NodeDegree,
                        "Fig. 9 — node-degree imbalance (TR° links)",
                    ),
                };
                let (inf, val) = scenario.heatmaps(metric);
                write_json(&args.out, &format!("{target}_heatmap"), &(&inf, &val));
                emit(
                    &format!("{target}_heatmap"),
                    report::render_heatmap_pair(&inf, &val, title),
                    Some((
                        format!("{target}_heatmap_inferred.csv"),
                        report::heatmap_csv(&inf),
                    )),
                );
                breval_bench::write_result(
                    &args.out,
                    &format!("{target}_heatmap_validated.csv"),
                    &report::heatmap_csv(&val),
                )
                .expect("write csv");
            }
            "table1" | "table2" | "table3" => {
                let name = match target.as_str() {
                    "table1" => "asrank",
                    "table2" => "problink",
                    _ => "toposcope",
                };
                let table = scenario.eval_table(name);
                write_json(&args.out, &format!("{target}_{name}"), &table);
                emit(
                    &format!("{target}_{name}"),
                    report::render_eval_table(&table),
                    Some((format!("{target}_{name}.csv"), report::eval_csv(&table))),
                );
            }
            "fig456" => {
                let scored = scenario.scored_in_class("asrank", "T1-TR");
                let points = sampling_sweep(&scored, &SamplingConfig::default());
                write_json(&args.out, "fig456_sampling_t1_tr", &points);
                emit(
                    "fig456_sampling_t1_tr",
                    report::render_sampling(&points, "T1-TR"),
                    Some((
                        "fig456_sampling_t1_tr.csv".into(),
                        report::sampling_csv(&points),
                    )),
                );
            }
            "casestudy" => {
                let scored = scenario.scored_in_class("asrank", "T1-TR");
                let lg = bgpsim::LookingGlass::new(&scenario.topology);
                let asrank = scenario.inference("asrank").expect("asrank always runs");
                let cs = run_case_study(
                    &scored,
                    asrank,
                    &scenario.validation,
                    &scenario.paths,
                    &lg,
                    &scenario.topology.tier1,
                );
                write_json(&args.out, "casestudy_cogent", &cs);
                emit("casestudy_cogent", report::render_case_study(&cs), None);
            }
            "cleaning" => {
                write_json(&args.out, "cleaning_census", &scenario.validation.report);
                emit(
                    "cleaning_census",
                    report::render_cleaning(&scenario.validation.report),
                    None,
                );
            }
            "hardlinks" => {
                let asrank = scenario.inference("asrank").expect("asrank always runs");
                let flags = breval_core::hardlinks::classify_hard_links(
                    &scenario.paths,
                    &scenario.stats,
                    &asrank.clique,
                    &breval_core::hardlinks::HardLinkConfig::default(),
                );
                let validated: std::collections::BTreeSet<_> =
                    scenario.validation.labels.keys().copied().collect();
                let scored = scenario.scored("asrank");
                let hl = breval_core::hardlinks::hard_link_report(&flags, &validated, &scored);
                write_json(&args.out, "hardlinks", &hl);
                emit("hardlinks", report::render_hard_links(&hl), None);
            }
            "features" => {
                let ppdc = scenario.ppdc_sizes_arc("asrank");
                let metrics = breval_core::linkfeatures::compute_link_metrics(
                    &scenario.topology,
                    &scenario.snapshot,
                    &scenario.stats,
                    &ppdc,
                );
                let scored = scenario.scored("asrank");
                let mut rows = Vec::new();
                type Feature = (
                    &'static str,
                    fn(&breval_core::linkfeatures::LinkMetrics) -> f64,
                );
                let feats: [Feature; 8] = [
                    ("visibility", |m| m.visibility as f64),
                    ("prefixes_redistributed", |m| {
                        m.prefixes_redistributed as f64
                    }),
                    ("prefixes_originated", |m| m.prefixes_originated as f64),
                    ("left_ases", |m| m.left_ases as f64),
                    ("right_ases", |m| m.right_ases as f64),
                    ("transit_degree_diff", |m| m.transit_degree_diff),
                    ("ppdc_diff", |m| m.ppdc_diff),
                    ("common_ixps", |m| m.common_ixps as f64),
                ];
                for (name, f) in feats {
                    rows.extend(breval_core::linkfeatures::error_by_feature_quartile(
                        &scored, &metrics, name, f,
                    ));
                }
                emit(
                    "features_appendix_c",
                    report::render_feature_errors(&rows),
                    None,
                );
            }
            "ablation_ambiguous" => {
                // §4.2: the three multi-label treatments give different
                // P2P/P2C counts — the paper used this to reverse-engineer
                // what prior works did.
                let org = scenario.topology.as2org();
                let communities = scenario
                    .validation_raw
                    .only_source(valdata::LabelSource::Communities);
                let mut text = String::from(
                    "# Ablation: ambiguous-label policy (§4.2)\npolicy          p2p    p2c   s2s  clean\n",
                );
                for (label, policy) in [
                    ("ignore", breval_core::AmbiguousPolicy::Ignore),
                    ("p2p-if-first", breval_core::AmbiguousPolicy::P2pIfFirstP2p),
                    ("always-p2c", breval_core::AmbiguousPolicy::AlwaysP2c),
                ] {
                    let clean = breval_core::cleaning::clean(
                        &communities,
                        &org,
                        &breval_core::CleaningConfig {
                            ambiguous: policy,
                            drop_siblings: true,
                        },
                    );
                    let counts = clean.class_counts();
                    let get = |c: asgraph::RelClass| counts.get(&c).copied().unwrap_or(0);
                    text.push_str(&format!(
                        "{label:<14} {:>5} {:>6} {:>5} {:>6}\n",
                        get(asgraph::RelClass::P2p),
                        get(asgraph::RelClass::P2c),
                        get(asgraph::RelClass::S2s),
                        clean.len()
                    ));
                }
                emit("ablation_ambiguous", text, None);
            }
            "ablation_sources" => {
                let org = scenario.topology.as2org();
                let mut text = String::from(
                    "# Ablation: validation sources\nsource-set         links  coverage\n",
                );
                let total = scenario.inferred_links.len().max(1);
                let sets: [(&str, valdata::ValidationSet); 4] = [
                    (
                        "communities",
                        scenario
                            .validation_raw
                            .only_source(valdata::LabelSource::Communities),
                    ),
                    (
                        "rpsl",
                        scenario
                            .validation_raw
                            .only_source(valdata::LabelSource::Rpsl),
                    ),
                    (
                        "direct",
                        scenario
                            .validation_raw
                            .only_source(valdata::LabelSource::DirectReport),
                    ),
                    ("all", scenario.validation_raw.clone()),
                ];
                for (label, set) in sets {
                    let clean = breval_core::cleaning::clean(
                        &set,
                        &org,
                        &breval_core::CleaningConfig::default(),
                    );
                    let covered = clean
                        .labels
                        .keys()
                        .filter(|l| scenario.inferred_links.contains(l))
                        .count();
                    text.push_str(&format!(
                        "{label:<18} {:>5}  {:>8.3}\n",
                        clean.len(),
                        covered as f64 / total as f64
                    ));
                }
                emit("ablation_sources", text, None);
            }
            "verify" => {
                // Self-check: every shape claim from EXPERIMENTS.md, asserted
                // programmatically at this scenario's scale.
                let mut text = String::from(
                    "# Shape verification checklist
",
                );
                let mut ok_all = true;
                let mut check = |label: &str, ok: bool| {
                    ok_all &= ok;
                    text.push_str(&format!(
                        "[{}] {label}
",
                        if ok { "PASS" } else { "FAIL" }
                    ));
                };
                let fig1 = scenario.fig1();
                let cov = |rows: &[breval_core::coverage::ClassCoverage], class: &str| {
                    rows.iter()
                        .find(|r| r.class == class)
                        .map(|r| (r.share, r.coverage))
                        .unwrap_or((0.0, 0.0))
                };
                let (l_share, l_cov) = cov(&fig1, "L°");
                let (_, ar_cov) = cov(&fig1, "AR°");
                check(
                    "fig1: L° share > 5% with ≈0 coverage",
                    l_share > 0.05 && l_cov < 0.02,
                );
                check(
                    "fig1: AR° coverage ≫ L° coverage",
                    ar_cov > 10.0 * l_cov.max(0.005),
                );
                let fig2 = scenario.fig2();
                let (s_tr_share, s_tr_cov) = cov(&fig2, "S-TR");
                let (tr_share, tr_cov) = cov(&fig2, "TR°");
                let (_, s_t1_cov) = cov(&fig2, "S-T1");
                let (_, t1_tr_cov) = cov(&fig2, "T1-TR");
                check(
                    "fig2: majority classes hold >70% of links",
                    s_tr_share + tr_share > 0.7,
                );
                check(
                    "fig2: majority classes ≤ 0.2 coverage",
                    s_tr_cov < 0.2 && tr_cov < 0.2,
                );
                check(
                    "fig2: Tier-1 classes ≥ 0.5 coverage",
                    s_t1_cov > 0.5 && t1_tr_cov > 0.5,
                );
                let (hm_inf, hm_val) = scenario.heatmaps(HeatmapMetric::TransitDegree);
                check(
                    "fig3: inferred TR° mass concentrated bottom-left",
                    hm_inf.bottom_left_mass() > 0.7,
                );
                check(
                    "fig3: validated distribution differs (TV > 0.05)",
                    hm_inf.tv_distance(&hm_val) > 0.05,
                );
                for name in ["asrank", "problink", "toposcope"] {
                    let table = scenario.eval_table(name);
                    check(
                        &format!("{name}: P2C near-perfect (PPV_C & TPR_C > 0.9)"),
                        table.total.p2c.ppv() > 0.9 && table.total.p2c.tpr() > 0.9,
                    );
                    let s_t1_ok = table
                        .rows
                        .get("S-T1")
                        .map(|r| r.p2p.tpr() < 0.5 && r.mcc < 0.6)
                        .unwrap_or(false);
                    check(&format!("{name}: S-T1 collapses"), s_t1_ok);
                    let t1_tr_ok = table
                        .rows
                        .get("T1-TR")
                        .map(|r| table.total.mcc - r.mcc > 0.05)
                        .unwrap_or(false);
                    check(&format!("{name}: T1-TR MCC drops ≥ 0.05"), t1_tr_ok);
                }
                let report = &scenario.validation.report;
                check(
                    "cleaning: AS_TRANS artefacts present",
                    report.as_trans_dropped > 0,
                );
                check(
                    "cleaning: reserved-ASN leaks present",
                    report.reserved_dropped > 0,
                );
                check(
                    "cleaning: ambiguous entries present",
                    report.ambiguous_found > 0,
                );
                let scored = scenario.scored_in_class("asrank", "T1-TR");
                let lg = bgpsim::LookingGlass::new(&scenario.topology);
                let asrank = scenario.inference("asrank").expect("asrank always runs");
                let cs = run_case_study(
                    &scored,
                    asrank,
                    &scenario.validation,
                    &scenario.paths,
                    &lg,
                    &scenario.topology.tier1,
                );
                check(
                    "casestudy: focus is the Cogent-like Tier-1",
                    cs.focus == scenario.topology.cogent,
                );
                check(
                    "casestudy: no clique triplets on any target link",
                    cs.findings.iter().all(|f| f.clique_triplets == 0),
                );
                check(
                    "casestudy: partial transit dominates the explanations",
                    cs.partial_transit > cs.inaccurate_validation,
                );
                text.push_str(&format!(
                    "
overall: {}
",
                    if ok_all {
                        "ALL CHECKS PASS"
                    } else {
                        "SOME CHECKS FAILED"
                    }
                ));
                emit("verify_checklist", text, None);
            }
            "calibration" => {
                // UNARI-style belief calibration against the cleaned
                // validation labels: does X% certainty mean X% accuracy?
                let beliefs = asinfer::Unari::new().beliefs(&scenario.paths);
                let reference: std::collections::HashMap<_, _> = scenario
                    .validation
                    .labels
                    .iter()
                    .map(|(l, r)| (*l, *r))
                    .collect();
                let bins = asinfer::unari::calibration_curve(&beliefs, &reference, 10);
                write_json(&args.out, "calibration_unari", &bins);
                let mut text = String::from(
                    "# UNARI-style belief calibration vs validation labels\n                     certainty-range     links  mean-cert  accuracy\n",
                );
                for b in &bins {
                    text.push_str(&format!(
                        "[{:.2}, {:.2})    {:>8} {:>10.3} {:>9.3}\n",
                        b.lo, b.hi, b.links, b.mean_certainty, b.accuracy
                    ));
                }
                emit("calibration_unari", text, None);
            }
            "parbench" => {
                // Parallel-scaling benchmark (small scale regardless of
                // --small; like `timeline`, excluded from "all"). Re-runs
                // the scenario at thread caps 1 / 2 / N, reading the
                // snapshot (`simulate`) and inference (`infer_all`) stages
                // from span-total deltas so the numbers are the same ones
                // the run manifest reports. The extra runs accumulate into
                // the global span totals, which is why deltas — not
                // absolute totals — are taken.
                if !breval_obs::enabled() {
                    eprintln!("parbench needs observability — skipping (BREVAL_OBS=0 set?)");
                    continue;
                }
                let seed = scenario.config.topology.seed;
                let hardware_threads = std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1);
                let mut caps = vec![1usize, 2, hardware_threads];
                caps.sort_unstable();
                caps.dedup();

                let mut rows: Vec<BenchParRow> = Vec::new();
                for &threads in &caps {
                    breval_par::set_max_threads(Some(threads));
                    let sim0 = breval_obs::span_wall_ms("scenario_run/simulate");
                    let inf0 = breval_obs::span_wall_ms("scenario_run/infer_all");
                    let cmp0 = breval_obs::span_wall_ms("scenario_run/compile_validation");
                    let cov0 = breval_obs::span_wall_ms("coverage_by_class");
                    let hm0 = breval_obs::span_wall_ms("heatmap_build");
                    let run0 = breval_obs::span_wall_ms("scenario_run");
                    let s = Scenario::run(ScenarioConfig::small(seed));
                    // Exercise the newly parallel analysis stages so their
                    // spans accumulate under this cap too.
                    let _ = s.fig1();
                    let _ = s.fig2();
                    let _ = s.heatmaps(HeatmapMetric::TransitDegree);
                    let _ = s.heatmaps(HeatmapMetric::Ppdc);
                    drop(s);
                    rows.push(BenchParRow {
                        threads,
                        exceeds_hardware: threads > hardware_threads,
                        snapshot_wall_ms: breval_obs::span_wall_ms("scenario_run/simulate") - sim0,
                        inference_wall_ms: breval_obs::span_wall_ms("scenario_run/infer_all")
                            - inf0,
                        compile_validation_wall_ms: breval_obs::span_wall_ms(
                            "scenario_run/compile_validation",
                        ) - cmp0,
                        coverage_wall_ms: breval_obs::span_wall_ms("coverage_by_class") - cov0,
                        heatmap_wall_ms: breval_obs::span_wall_ms("heatmap_build") - hm0,
                        scenario_wall_ms: breval_obs::span_wall_ms("scenario_run") - run0,
                    });
                    eprintln!(
                        "parbench: {} thread(s) → snapshot {:.1} ms, inference {:.1} ms, \
                         compile {:.1} ms, coverage {:.1} ms, heatmap {:.1} ms{}",
                        threads,
                        rows.last().map(|r| r.snapshot_wall_ms).unwrap_or(0.0),
                        rows.last().map(|r| r.inference_wall_ms).unwrap_or(0.0),
                        rows.last()
                            .map(|r| r.compile_validation_wall_ms)
                            .unwrap_or(0.0),
                        rows.last().map(|r| r.coverage_wall_ms).unwrap_or(0.0),
                        rows.last().map(|r| r.heatmap_wall_ms).unwrap_or(0.0),
                        if threads > hardware_threads {
                            " [exceeds hardware]"
                        } else {
                            ""
                        },
                    );
                }
                breval_par::set_max_threads(Some(1));

                // The old execution model, measured live: simulate, then
                // each classifier standing alone on the raw path set (its
                // own sanitisation, statistics, and — for the bootstrap
                // classifiers — its own full ASRank seed), sequentially.
                let small = ScenarioConfig::small(seed);
                let topo = topogen::generate(&small.topology);
                let sim0 = breval_obs::span_wall_ms("simulate");
                let snap = bgpsim::simulate(&topo);
                let iso_sim = breval_obs::span_wall_ms("simulate") - sim0;
                let raw = snap.to_pathset(false);
                let mut isolated_sequential_ms = std::collections::BTreeMap::new();
                isolated_sequential_ms.insert("simulate".to_owned(), iso_sim);
                {
                    use asinfer::Classifier;
                    let classifiers: [&dyn Classifier; 4] = [
                        &asinfer::AsRank::new(),
                        &asinfer::ProbLink::new(),
                        &asinfer::TopoScope::new(),
                        &asinfer::GaoClassifier::new(),
                    ];
                    for c in classifiers {
                        let span = format!("infer_{}", c.name());
                        let before = breval_obs::span_wall_ms(&span);
                        let _ = c.infer_observed(&raw);
                        isolated_sequential_ms
                            .insert(span.clone(), breval_obs::span_wall_ms(&span) - before);
                    }
                }
                breval_par::set_max_threads(None);

                // Repeated small maps: the pool's per-call win is in
                // submission overhead, so measure many calls of little
                // work. Cap 2 exercises the resident-worker path even on a
                // single-core host (overhead, not scaling, is under test).
                let micro_calls = 300usize;
                let micro_items = 64usize;
                let micro_threads = 2usize;
                breval_par::set_max_threads(Some(micro_threads));
                let work = |i: usize| std::hint::black_box(i).wrapping_mul(0x9E37_79B9);
                let pool0 = breval_obs::span_wall_ms("parbench_pool_map");
                {
                    let _span = breval_obs::span!("parbench_pool_map");
                    for _ in 0..micro_calls {
                        std::hint::black_box(breval_par::parallel_map(micro_items, work));
                    }
                }
                let pool_total_ms = breval_obs::span_wall_ms("parbench_pool_map") - pool0;
                let spawn0 = breval_obs::span_wall_ms("parbench_spawn_map");
                {
                    let _span = breval_obs::span!("parbench_spawn_map");
                    for _ in 0..micro_calls {
                        std::hint::black_box(breval_par::baseline::parallel_map_spawn(
                            micro_items,
                            work,
                        ));
                    }
                }
                let spawn_total_ms = breval_obs::span_wall_ms("parbench_spawn_map") - spawn0;
                breval_par::set_max_threads(None);
                let pool_microbench = PoolMicrobench {
                    calls: micro_calls,
                    items_per_call: micro_items,
                    threads: micro_threads,
                    exceeds_hardware: micro_threads > hardware_threads,
                    pool_total_ms,
                    spawn_total_ms,
                    spawn_over_pool: spawn_total_ms / pool_total_ms.max(1e-9),
                };
                eprintln!(
                    "parbench: {micro_calls}×{micro_items}-item maps — pool {pool_total_ms:.1} ms, \
                     spawn-per-call {spawn_total_ms:.1} ms ({:.2}× overhead)",
                    pool_microbench.spawn_over_pool
                );

                // Headline speedups only compare caps the hardware can
                // actually run in parallel; a 2-thread row on a 1-core
                // host would otherwise read as a threading regression.
                let iso_total: f64 = isolated_sequential_ms.values().sum();
                let meaningful: Vec<&BenchParRow> =
                    rows.iter().filter(|r| !r.exceeds_hardware).collect();
                let first = meaningful.first();
                let last = meaningful.last();
                let combined = |r: &BenchParRow| r.snapshot_wall_ms + r.inference_wall_ms;
                let speedup_snapshot_infer = last
                    .map(|r| iso_total / combined(r).max(1e-9))
                    .unwrap_or(1.0);
                let speedup_threads_n_vs_1 = match (first, last) {
                    (Some(a), Some(b)) => combined(a) / combined(b).max(1e-9),
                    _ => 1.0,
                };
                let bench = BenchPar {
                    name: "parbench".to_owned(),
                    scenario: "small".to_owned(),
                    seed,
                    hardware_threads,
                    rows,
                    isolated_sequential_ms,
                    speedup_snapshot_infer,
                    speedup_threads_n_vs_1,
                    pool_microbench,
                };
                let json = serde_json::to_string_pretty(&bench).expect("serializable");
                let bench_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join("BENCH_par.json");
                std::fs::write(&bench_path, &json).expect("write BENCH_par.json");
                eprintln!(
                    "parbench: speedup vs isolated-sequential {speedup_snapshot_infer:.2}×, \
                     {hardware_threads}-thread vs 1-thread {speedup_threads_n_vs_1:.2}× \
                     (hardware threads: {hardware_threads})"
                );
                emit("parbench", json, None);
            }
            "timeline" => {
                // Runs at the small scale regardless of --small: 13 full
                // simulations at paper scale would take minutes.
                let base = topogen::generate(&topogen::TopologyConfig::small(
                    scenario.config.topology.seed,
                ));
                let points = breval_core::timeline::run_timeline(
                    &base,
                    &breval_core::timeline::TimelineConfig::default(),
                );
                write_json(&args.out, "timeline_resampling", &points);
                emit(
                    "timeline_resampling",
                    breval_core::timeline::render_timeline(&points),
                    None,
                );
            }
            "ablation_666" => {
                // The 3356:666 ambiguity: how much peering coverage does a
                // conservative blackhole-aware pipeline lose?
                let mut text =
                    String::from("# Ablation: skip :666 as blackhole (§3.2 ambiguity)\n");
                for skip in [false, true] {
                    let cfg = valdata::ValDataConfig {
                        skip_666_as_blackhole: skip,
                        ..scenario.config.valdata.clone()
                    };
                    let set =
                        valdata::compile_communities(&scenario.topology, &scenario.snapshot, &cfg);
                    let p2p = set
                        .entries
                        .values()
                        .flatten()
                        .filter(|r| matches!(r.rel, asgraph::Rel::P2p))
                        .count();
                    text.push_str(&format!(
                        "skip_666={skip:<5}  links={:<6} p2p_labels={}\n",
                        set.len(),
                        p2p
                    ));
                }
                emit("ablation_666", text, None);
            }
            "ablation_legacy" => {
                // AS_TRANS census with and without the legacy decoding
                // pipeline.
                let mut text = String::from("# Ablation: legacy AS4_PATH-ignorant pipeline\n");
                for legacy in [true, false] {
                    let cfg = valdata::ValDataConfig {
                        legacy_pipeline: legacy,
                        ..scenario.config.valdata.clone()
                    };
                    let set =
                        valdata::compile_communities(&scenario.topology, &scenario.snapshot, &cfg);
                    let census = valdata::compile::label_census(&scenario.topology, &set);
                    text.push_str(&format!(
                        "legacy={legacy:<5}  total={:<6} as_trans={:<4} reserved={:<4} multi={:<4} siblings={}\n",
                        census["total_links"],
                        census["as_trans_links"],
                        census["reserved_links"],
                        census["multi_label_links"],
                        census["sibling_links"],
                    ));
                }
                emit("ablation_legacy", text, None);
            }
            other => eprintln!("unknown target {other:?} — skipping"),
        }
    }

    if breval_obs::enabled() {
        let scenario_name = if args.small { "small" } else { "default" };
        let thread_cap = breval_par::max_threads() as u64;
        let manifest =
            breval_obs::RunManifest::capture(scenario_name, scenario.config.topology.seed)
                .with_thread_cap(thread_cap)
                .with_config("total_ases", scenario.config.topology.total_ases())
                .with_config("targets", args.targets.len())
                .with_config("observed_links", scenario.inferred_links.len())
                .with_config("validation_raw", scenario.validation_raw.len())
                .with_config("validation_clean", scenario.validation.len());
        let manifest_path = args.out.join("run_manifest.json");
        manifest
            .write_json(&manifest_path)
            .expect("write run manifest");
        eprintln!("{}", manifest.render_table());
        eprintln!("run manifest written to {}", manifest_path.display());

        if breval_obs::journal_enabled() {
            let trace_path = args.out.join("trace.json");
            breval_obs::write_trace_json(&trace_path).expect("write trace.json");
            eprintln!("event-journal trace written to {}", trace_path.display());
        }

        let item_ns = manifest
            .histograms
            .get("parallel_map_item_ns")
            .map(|h| ItemLatency {
                count: h.count,
                p50_ns: h.p50,
                p90_ns: h.p90,
                p99_ns: h.p99,
            })
            .unwrap_or_default();
        let bench = BenchObs {
            schema: 2,
            name: "experiments".to_owned(),
            scenario: scenario_name.to_owned(),
            seed: scenario.config.topology.seed,
            hardware_threads: manifest.hardware_threads,
            thread_cap,
            journal: breval_obs::journal_enabled(),
            stage_wall_ms: manifest
                .stages
                .iter()
                .map(|s| (s.name.clone(), s.wall_ms))
                .collect(),
            stage_allocs: manifest
                .stages
                .iter()
                .map(|s| (s.name.clone(), s.alloc_count))
                .collect(),
            stage_alloc_bytes: manifest
                .stages
                .iter()
                .map(|s| (s.name.clone(), s.alloc_bytes))
                .collect(),
            parallel_map_item_ns: item_ns,
            counters: manifest.counters.clone(),
        };
        // Pin to the repository root regardless of the invocation cwd.
        let bench_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_obs.json");
        std::fs::write(
            &bench_path,
            serde_json::to_string_pretty(&bench).expect("serializable"),
        )
        .expect("write BENCH_obs.json");
        eprintln!("benchmark summary written to {}", bench_path.display());
    }
}
