//! Snapshot warm-start benchmark: cold pipeline build vs millisecond
//! binary reload.
//!
//! The cold phase runs the full small scenario, forces every snapshot part
//! for the four classifiers, and persists them with
//! [`Scenario::save_snapshot`]. The warm phase reloads the same snapshots
//! from disk with [`Scenario::load_snapshot`] — no topology generation, no
//! BGP simulation, no inference — and must reproduce the coverage summary
//! byte-for-byte. Results land in `BENCH_snap.json` at the workspace root
//! plus `results/snap_coverage_{cold,warm}.csv` (which CI diffs).
//!
//! Run with `cargo run --release -p bench --bin snapbench`.

#![forbid(unsafe_code)]

use breval_core::pipeline::{Scenario, ScenarioConfig};
use serde::Serialize;
use std::path::{Path, PathBuf};

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

const CLASSIFIERS: [&str; 4] = ["asrank", "problink", "toposcope", "gao"];
const SEED: u64 = 42;
/// ISSUE acceptance floor: warm reload must beat the cold build by this much.
const MIN_SPEEDUP: f64 = 50.0;

#[derive(Serialize)]
struct SnapPhase {
    phase: &'static str,
    wall_ms: f64,
    allocations: u64,
    allocated_bytes: u64,
}

#[derive(Serialize)]
struct SnapshotFile {
    classifier: String,
    bytes: u64,
}

#[derive(Serialize)]
struct SnapBenchResult {
    seed: u64,
    classifiers: usize,
    cold: SnapPhase,
    warm: SnapPhase,
    speedup: f64,
    min_speedup: f64,
    bytes_written_total: u64,
    files: Vec<SnapshotFile>,
    coverage_identical: bool,
}

/// Wall/allocation probe over a registered obs span (the same pattern as
/// membench: timing goes through `breval_obs`, never ad-hoc clocks).
struct Probe {
    span: &'static str,
    wall: f64,
    allocations: u64,
    bytes: u64,
}

fn probe(span: &'static str) -> Probe {
    Probe {
        span,
        wall: breval_obs::span_wall_ms(span),
        allocations: counting_alloc::allocation_count(),
        bytes: counting_alloc::allocated_bytes(),
    }
}

impl Probe {
    fn finish(&self, phase: &'static str) -> SnapPhase {
        SnapPhase {
            phase,
            wall_ms: breval_obs::span_wall_ms(self.span) - self.wall,
            allocations: counting_alloc::allocation_count() - self.allocations,
            allocated_bytes: counting_alloc::allocated_bytes() - self.bytes,
        }
    }
}

/// Aborts with a labelled error instead of panicking (bench binaries are
/// deepcheck entry points, so their failure path must be panic-free).
fn die(msg: std::fmt::Arguments<'_>) -> ! {
    eprintln!("snapbench: {msg}");
    std::process::exit(1);
}

/// Concatenated per-classifier coverage summaries — the byte-identity probe.
fn summaries(snapshots: &[(String, breval_core::ScenarioSnapshot)]) -> String {
    let mut out = String::new();
    for (name, snap) in snapshots {
        out.push_str(&format!("# classifier: {name}\n"));
        out.push_str(&snap.summary_csv());
    }
    out
}

fn main() {
    if std::env::var(breval_obs::ENV_VAR).is_err() {
        breval_obs::set_enabled(true);
    }
    // Single-threaded so allocation counts are identical run to run.
    breval_par::set_max_threads(Some(1));

    let config = ScenarioConfig::small(SEED);
    let snap_dir: PathBuf = std::env::temp_dir().join("breval_snapbench");
    let _ = std::fs::remove_dir_all(&snap_dir);

    // --- cold: full pipeline + snapshot persistence ---------------------
    eprintln!("snapbench: cold build (seed {SEED})…");
    let p = probe("snapbench_cold");
    let mut files = Vec::new();
    let mut cold_snaps = Vec::new();
    {
        let _s = breval_obs::span!("snapbench_cold");
        let scenario = Scenario::run(config.clone());
        for name in CLASSIFIERS {
            let path = scenario
                .save_snapshot(&snap_dir, name)
                .unwrap_or_else(|e| die(format_args!("saving {name}: {e}")));
            let bytes = std::fs::metadata(&path).expect("written snapshot").len();
            files.push(SnapshotFile {
                classifier: name.to_owned(),
                bytes,
            });
            cold_snaps.push((name.to_owned(), {
                // Re-load immediately so cold/warm summaries come from the
                // same type; the cold wall still charges build + save.
                Scenario::load_snapshot(&snap_dir, &config, name)
                    .unwrap_or_else(|e| die(format_args!("re-reading {name}: {e}")))
            }));
        }
    }
    let cold_summary = summaries(&cold_snaps);
    let cold = p.finish("cold_build_and_save");

    // --- warm: binary reload only ---------------------------------------
    eprintln!("snapbench: warm reload…");
    let p = probe("snapbench_warm");
    let warm_snaps: Vec<_> = {
        let _s = breval_obs::span!("snapbench_warm");
        CLASSIFIERS
            .iter()
            .map(|name| {
                (
                    (*name).to_owned(),
                    Scenario::load_snapshot(&snap_dir, &config, name)
                        .unwrap_or_else(|e| die(format_args!("loading {name}: {e}"))),
                )
            })
            .collect()
    };
    let warm_summary = summaries(&warm_snaps);
    let warm = p.finish("warm_load");

    let coverage_identical = cold_summary == warm_summary;
    assert!(
        coverage_identical,
        "warm coverage summary differs from cold"
    );

    let speedup = cold.wall_ms / warm.wall_ms.max(1e-6);
    let bytes_written_total: u64 = files.iter().map(|f| f.bytes).sum();
    eprintln!(
        "snapbench: cold {:.1} ms / {} allocs, warm {:.3} ms / {} allocs — {:.0}× speedup ({} bytes on disk)",
        cold.wall_ms, cold.allocations, warm.wall_ms, warm.allocations, speedup, bytes_written_total
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "warm reload only {speedup:.1}× faster than cold build (need ≥{MIN_SPEEDUP}×)"
    );

    let result = SnapBenchResult {
        seed: SEED,
        classifiers: CLASSIFIERS.len(),
        cold,
        warm,
        speedup,
        min_speedup: MIN_SPEEDUP,
        bytes_written_total,
        files,
        coverage_identical,
    };

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let json = serde_json::to_string_pretty(&result).expect("result serializes");
    std::fs::write(root.join("BENCH_snap.json"), json + "\n").expect("write BENCH_snap.json");
    breval_bench::write_result(&root, "results/snap_coverage_cold.csv", &cold_summary)
        .expect("write cold coverage");
    breval_bench::write_result(&root, "results/snap_coverage_warm.csv", &warm_summary)
        .expect("write warm coverage");
    eprintln!("snapbench: wrote BENCH_snap.json and results/snap_coverage_{{cold,warm}}.csv");
}
