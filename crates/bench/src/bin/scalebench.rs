//! Million-AS scale benchmark: per-stage walls, allocation counts, and peak
//! RSS for the streaming pipeline at 10k / 100k / 1M ASes, written to
//! `BENCH_scale.json` at the repository root.
//!
//! Each tier exercises the three scale-critical layers end to end:
//!
//! 1. **topogen** — streaming generation (`TopologyConfig::scaled`),
//! 2. **bgpsim** — bounded-memory propagation: one reused
//!    [`bgpsim::OriginRoutes`] + [`bgpsim::PropScratch`] across a sampled
//!    origin set, recording the first-origin allocation cost (buffer growth
//!    to the tier's node count) separately from the steady-state
//!    per-origin allocations, which must stay near zero — that split *is*
//!    the bounded-memory proof,
//! 3. **asgraph** — hybrid PPDC cones over the vantage-point paths, with
//!    [`asgraph::PpdcCones::storage_stats`] comparing the hybrid byte
//!    footprint against the flat all-bitset layout it replaced.
//!
//! The 10k and 100k tiers are *measured* (honest walls at the pinned
//! 1-thread cap); the 1M tier is a *demonstration* run with a smaller
//! origin sample whose purpose is showing the pipeline completes
//! memory-bounded at seven-figure AS counts, not producing comparable
//! walls. Peak RSS is the process high-water mark (`VmHWM`), which is
//! monotone across tiers run in one process — only the last (largest)
//! tier's value reflects that tier alone.
//!
//! Pass `--smoke` to run only the 10k tier (the CI configuration). The
//! thread cap is pinned to 1 so allocation counts are deterministic and
//! walls are honest on the 1-core CI runner; `hardware_threads` /
//! `exceeds_hardware` record the machine width machine-readably (same
//! convention as `BENCH_par.json`).

#![forbid(unsafe_code)]

use asgraph::{cone, AsPath, Link, PathSet, Rel};
use bgpsim::{OriginRoutes, PropScratch, Propagator, SimGraph};
use std::collections::BTreeMap;

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc::new();

const SEED: u64 = 42;

/// One measured pipeline stage within a tier.
#[derive(serde::Serialize)]
struct ScaleStage {
    stage: &'static str,
    wall_ms: f64,
    allocations: u64,
    allocated_bytes: u64,
}

/// The bounded-memory propagation evidence for one tier.
#[derive(serde::Serialize)]
struct PropagationProof {
    /// Origins propagated (evenly spaced over the node index space).
    origins_sampled: usize,
    /// Allocations charged to the *first* origin — buffer growth to the
    /// tier's node count, paid once.
    first_origin_allocations: u64,
    /// Mean allocations per origin over the remaining origins with the
    /// buffers warm. Near zero ⇒ propagation memory is bounded by the
    /// graph size, not the origin count.
    steady_allocations_per_origin: f64,
    /// Total nodes reached across all sampled origins (work witness).
    reached_total: u64,
}

/// Hybrid PPDC storage outcome for one tier.
#[derive(serde::Serialize)]
struct PpdcFootprint {
    sparse_rows: usize,
    dense_rows: usize,
    hybrid_bytes: usize,
    /// Bytes the flat all-bitset layout would have needed for the same rows.
    flat_bytes: usize,
    /// `flat_bytes / hybrid_bytes` — ≥ 1 whenever any row stays sparse.
    compression_ratio: f64,
}

/// One scale tier's full record.
#[derive(serde::Serialize)]
struct ScaleTier {
    tier: &'static str,
    target_ases: usize,
    as_count: usize,
    link_count: usize,
    /// `true`: honest comparable walls. `false`: demonstration run (1M) —
    /// completes memory-bounded, walls not comparable across tiers.
    measured: bool,
    stages: Vec<ScaleStage>,
    propagation: PropagationProof,
    ppdc: PpdcFootprint,
    /// Process `VmHWM` after this tier, in kiB (monotone across tiers).
    peak_rss_kb: u64,
}

/// The `BENCH_scale.json` document.
#[derive(serde::Serialize)]
struct BenchScale {
    name: String,
    seed: u64,
    threads: usize,
    /// Threads the measuring machine actually has (honesty flag, same
    /// convention as `BENCH_par.json`).
    hardware_threads: usize,
    /// `true` when `threads` exceeds `hardware_threads`.
    exceeds_hardware: bool,
    /// `true` when only the 10k tier ran (`--smoke`, the CI configuration).
    smoke: bool,
    tiers: Vec<ScaleTier>,
}

/// Snapshot of the allocator counters and a span's wall total; `finish`
/// turns it into the stage's deltas (the membench/snapbench pattern —
/// timing goes through `breval_obs`, never ad-hoc clocks).
struct Probe {
    span: &'static str,
    allocations: u64,
    bytes: u64,
    wall: f64,
}

fn probe(span: &'static str) -> Probe {
    Probe {
        span,
        allocations: counting_alloc::allocation_count(),
        bytes: counting_alloc::allocated_bytes(),
        wall: breval_obs::span_wall_ms(span),
    }
}

impl Probe {
    fn finish(self, stage: &'static str) -> ScaleStage {
        ScaleStage {
            stage,
            wall_ms: breval_obs::span_wall_ms(self.span) - self.wall,
            allocations: counting_alloc::allocation_count() - self.allocations,
            allocated_bytes: counting_alloc::allocated_bytes() - self.bytes,
        }
    }
}

/// Aborts with a labelled error instead of panicking (bench binaries are
/// deepcheck entry points, so their failure path must be panic-free).
fn die(msg: std::fmt::Arguments<'_>) -> ! {
    eprintln!("scalebench: {msg}");
    std::process::exit(1);
}

/// The process peak resident set (`VmHWM`) in kiB, from
/// `/proc/self/status`. 0 when the field is unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Evenly spaced node ids over `0..n` — the sampled origin set.
fn sample_origins(n: usize, count: usize) -> Vec<u32> {
    let count = count.min(n).max(1);
    (0..count)
        .map(|i| ((i as u64 * n as u64) / count as u64) as u32)
        .collect()
}

fn run_tier(tier: &'static str, target: usize, origin_sample: usize, measured: bool) -> ScaleTier {
    eprintln!("scalebench: tier {tier} — generating {target} ASes (seed {SEED})…");

    // --- generate: streaming topogen --------------------------------------
    let p = probe("scalebench_generate");
    let topology = {
        let _s = breval_obs::span!("scalebench_generate");
        topogen::generate(&topogen::TopologyConfig::scaled(target, SEED))
    };
    let generate = p.finish("generate");
    let as_count = topology.as_count();
    let link_count = topology.link_count();
    eprintln!(
        "scalebench: tier {tier} — {as_count} ASes / {link_count} links in {:.0} ms",
        generate.wall_ms
    );

    // --- simgraph: dense simulation graph ---------------------------------
    let p = probe("scalebench_simgraph");
    let g = {
        let _s = breval_obs::span!("scalebench_simgraph");
        SimGraph::build(&topology)
    };
    let simgraph = p.finish("simgraph");

    // --- propagate: bounded-memory proof ----------------------------------
    // One reused routes + scratch pair across every sampled origin. The
    // first origin pays the buffer growth to `g.len()`; the rest must run
    // (near-)allocation-free — that split is the evidence that propagation
    // memory is bounded by the graph, not the origin count.
    let origins = sample_origins(g.len(), origin_sample);
    let Some((&first_origin, rest_origins)) = origins.split_first() else {
        die(format_args!("tier {tier} sampled no origins"));
    };
    let p = probe("scalebench_propagate");
    let (first_allocs, steady_allocs, reached_total) = {
        let _s = breval_obs::span!("scalebench_propagate");
        let prop = Propagator::new(&g);
        let mut routes = OriginRoutes::reusable();
        let mut scratch = PropScratch::new();
        let mut reached = 0u64;

        let before_first = counting_alloc::allocation_count();
        prop.propagate_into(first_origin, None, &mut routes, &mut scratch);
        reached += routes.reached() as u64;
        let after_first = counting_alloc::allocation_count();

        for &origin in rest_origins {
            prop.propagate_into(origin, None, &mut routes, &mut scratch);
            reached += routes.reached() as u64;
        }
        let after_rest = counting_alloc::allocation_count();
        (
            after_first - before_first,
            after_rest - after_first,
            reached,
        )
    };
    let propagate = p.finish("propagate");
    let steady_per_origin = steady_allocs as f64 / (origins.len() - 1).max(1) as f64;
    eprintln!(
        "scalebench: tier {tier} — {} origins: first {first_allocs} allocs, steady {steady_per_origin:.1} allocs/origin",
        origins.len()
    );

    // --- paths: vantage-point path collection -----------------------------
    // Re-propagates the same origins and reconstructs each collector peer's
    // best path — the observed-path substrate the PPDC stage consumes.
    let vps: Vec<(asgraph::Asn, u32)> = topology
        .collector_peers
        .iter()
        .filter_map(|cp| g.node(cp.asn).map(|node| (cp.asn, node)))
        .collect();
    let p = probe("scalebench_paths");
    let paths = {
        let _s = breval_obs::span!("scalebench_paths");
        let prop = Propagator::new(&g);
        let mut routes = OriginRoutes::reusable();
        let mut scratch = PropScratch::new();
        let mut ps = PathSet::new();
        for &origin in &origins {
            prop.propagate_into(origin, None, &mut routes, &mut scratch);
            for &(vp_asn, vp_node) in &vps {
                if let Some(hops) = routes.path(vp_node, &g) {
                    ps.push(vp_asn, AsPath::new(hops));
                }
            }
        }
        ps.sanitized()
    };
    let paths_stage = p.finish("paths");
    eprintln!(
        "scalebench: tier {tier} — {} VP paths from {} vantage points",
        paths.len(),
        vps.len()
    );

    // --- ppdc: hybrid compressed cones ------------------------------------
    let rels: BTreeMap<Link, Rel> = topology.links.iter().map(|(l, r)| (*l, r.base)).collect();
    let p = probe("scalebench_ppdc");
    let ppdc = {
        let _s = breval_obs::span!("scalebench_ppdc");
        cone::ppdc_cones(&paths, &rels)
    };
    let ppdc_stage = p.finish("ppdc");
    let stats = ppdc.storage_stats();
    let footprint = PpdcFootprint {
        sparse_rows: stats.sparse_rows,
        dense_rows: stats.dense_rows,
        hybrid_bytes: stats.hybrid_bytes,
        flat_bytes: stats.flat_bytes,
        compression_ratio: stats.flat_bytes as f64 / stats.hybrid_bytes.max(1) as f64,
    };
    eprintln!(
        "scalebench: tier {tier} — PPDC {} sparse / {} dense rows, {} B hybrid vs {} B flat ({:.1}×)",
        footprint.sparse_rows,
        footprint.dense_rows,
        footprint.hybrid_bytes,
        footprint.flat_bytes,
        footprint.compression_ratio,
    );

    let rss = peak_rss_kb();
    eprintln!("scalebench: tier {tier} — peak RSS {rss} kB");

    ScaleTier {
        tier,
        target_ases: target,
        as_count,
        link_count,
        measured,
        stages: vec![generate, simgraph, propagate, paths_stage, ppdc_stage],
        propagation: PropagationProof {
            origins_sampled: origins.len(),
            first_origin_allocations: first_allocs,
            steady_allocations_per_origin: steady_per_origin,
            reached_total,
        },
        ppdc: footprint,
        peak_rss_kb: rss,
    }
}

fn main() {
    if std::env::var(breval_obs::ENV_VAR).is_err() {
        breval_obs::set_enabled(true);
    }
    // Single-threaded so allocation counts are deterministic and the walls
    // are honest on the 1-core CI runner.
    breval_par::set_max_threads(Some(1));

    let smoke = std::env::args().any(|a| a == "--smoke");
    if let Some(bad) = std::env::args()
        .skip(1)
        .find(|a| a != "--smoke" && !a.is_empty())
    {
        die(format_args!("unknown argument {bad:?} (expected --smoke)"));
    }

    // (tier, target ASes, sampled origins, measured). The 1M origin sample
    // is small on purpose: the tier demonstrates memory-boundedness, it is
    // not a wall-clock comparison point.
    let tiers: &[(&'static str, usize, usize, bool)] = if smoke {
        &[("10k", 10_000, 64, true)]
    } else {
        &[
            ("10k", 10_000, 64, true),
            ("100k", 100_000, 32, true),
            ("1m", 1_000_000, 8, false),
        ]
    };

    let results: Vec<ScaleTier> = tiers
        .iter()
        .map(|&(tier, target, origins, measured)| run_tier(tier, target, origins, measured))
        .collect();

    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let bench = BenchScale {
        name: "scalebench".to_owned(),
        seed: SEED,
        threads: 1,
        hardware_threads,
        exceeds_hardware: 1 > hardware_threads,
        smoke,
        tiers: results,
    };
    let json = match serde_json::to_string_pretty(&bench) {
        Ok(json) => json,
        Err(e) => die(format_args!("cannot serialize BENCH_scale.json: {e}")),
    };
    let bench_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scale.json");
    if let Err(e) = std::fs::write(&bench_path, &json) {
        die(format_args!("cannot write {}: {e}", bench_path.display()));
    }
    eprintln!("scalebench: wrote {}", bench_path.display());
}
