//! Memory benchmark: allocation counts and per-stage walls for the dense
//! (CSR / bitset / keyed) analysis kernels against the BTree/hash baselines
//! they replaced, written to `BENCH_mem.json` at the repository root.
//!
//! The binary installs a counting global allocator (vendored
//! `counting_alloc` — the `GlobalAlloc` impl is the workspace's only
//! unsafe code, and it lives outside the `forbid(unsafe_code)` crates), runs
//! every stage twice (dense and baseline) on the same inputs, asserts the
//! results agree, and records per-stage allocation/byte/wall deltas.
//!
//! Runs at the small (smoke) scale by default, so CI can regenerate the
//! file on every push; pass `--full` for the paper-scale topology. The
//! thread cap is pinned to 1 so allocation counts are deterministic.

#![forbid(unsafe_code)]

use asgraph::{cone, CsrGraph};
use breval_core::classes::LinkClassifier;
use breval_core::coverage::{coverage_by_class, coverage_by_class_keyed};
use std::collections::BTreeSet;
use std::sync::Arc;

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc::new();

/// One measured stage.
#[derive(serde::Serialize)]
struct MemStage {
    stage: &'static str,
    wall_ms: f64,
    allocations: u64,
    allocated_bytes: u64,
}

/// A dense-vs-baseline pairing for one pipeline stage.
#[derive(serde::Serialize)]
struct MemComparison {
    stage: &'static str,
    dense_allocations: u64,
    baseline_allocations: u64,
    /// baseline_allocations / dense_allocations — ≥ 2 is the PR's bar.
    allocation_reduction: f64,
    dense_wall_ms: f64,
    baseline_wall_ms: f64,
}

/// The `BENCH_mem.json` document.
#[derive(serde::Serialize)]
struct BenchMem {
    name: String,
    scenario: String,
    seed: u64,
    threads: usize,
    /// Threads the measuring machine actually has — wall numbers taken on
    /// fewer cores than `threads` would claim are flagged, machine-readably,
    /// by `exceeds_hardware` (same convention as `BENCH_par.json`).
    hardware_threads: usize,
    /// `true` when `threads` exceeds `hardware_threads`, i.e. the walls are
    /// oversubscribed and not comparable to a full-width machine.
    exceeds_hardware: bool,
    stages: Vec<MemStage>,
    comparisons: Vec<MemComparison>,
}

/// Snapshot of the allocator counters and a span's wall total, taken before
/// a stage runs; `finish` turns it into the stage's deltas.
struct Probe {
    span: &'static str,
    allocations: u64,
    bytes: u64,
    wall: f64,
}

fn probe(span: &'static str) -> Probe {
    Probe {
        span,
        allocations: counting_alloc::allocation_count(),
        bytes: counting_alloc::allocated_bytes(),
        wall: breval_obs::span_wall_ms(span),
    }
}

impl Probe {
    fn finish(self, stage: &'static str) -> MemStage {
        MemStage {
            stage,
            wall_ms: breval_obs::span_wall_ms(self.span) - self.wall,
            allocations: counting_alloc::allocation_count() - self.allocations,
            allocated_bytes: counting_alloc::allocated_bytes() - self.bytes,
        }
    }
}

fn main() {
    if std::env::var(breval_obs::ENV_VAR).is_err() {
        breval_obs::set_enabled(true);
    }
    // Journal on by default too: the kernel-vs-baseline stages then show
    // up as timeline slices in results/trace_membench.json.
    if std::env::var(breval_obs::JOURNAL_ENV_VAR).is_err() {
        breval_obs::set_journal_enabled(true);
    }
    // Single-threaded so allocation counts (and per-worker scratch builds)
    // are identical run to run.
    breval_par::set_max_threads(Some(1));

    let full = std::env::args().any(|a| a == "--full");
    let seed = 42u64;
    let config = if full {
        topogen::TopologyConfig {
            seed,
            ..topogen::TopologyConfig::default()
        }
    } else {
        topogen::TopologyConfig::small(seed)
    };

    eprintln!(
        "membench: generating {} topology (seed {seed})…",
        if full { "full" } else { "small" }
    );
    let topology = topogen::generate(&config);
    let graph = topology
        .ground_truth_graph()
        .expect("generated topology is a valid graph");
    let snapshot = bgpsim::simulate(&topology);
    let paths = snapshot.to_pathset(false).sanitized();
    let stats = paths.stats();
    let rels: std::collections::BTreeMap<asgraph::Link, asgraph::Rel> =
        topology.links.iter().map(|(l, r)| (*l, r.base)).collect();

    let mut stages: Vec<MemStage> = Vec::new();

    // --- customer cones: CSR build + allocation-free BFS vs BTree BFS ---
    let p = probe("membench_csr_build");
    let csr = {
        let _s = breval_obs::span!("membench_csr_build");
        CsrGraph::build(&graph)
    };
    let csr_build = p.finish("csr_build");

    let p = probe("membench_cone_dense");
    let cone_dense = {
        let _s = breval_obs::span!("membench_cone_dense");
        cone::customer_cone_sizes_csr(&csr)
    };
    let cone_dense_stage = p.finish("cone_dense");

    let p = probe("membench_cone_btree");
    let cone_btree = {
        let _s = breval_obs::span!("membench_cone_btree");
        cone::baseline::customer_cone_sizes_btree(&graph)
    };
    let cone_btree_stage = p.finish("cone_btree");

    assert_eq!(cone_dense.len(), cone_btree.len(), "cone key sets differ");
    for (asn, size) in cone_dense.iter() {
        assert_eq!(
            cone_btree.get(&asn),
            Some(&size),
            "cone size mismatch for {asn}"
        );
    }

    // --- PPDC cones: bitset rows vs per-AS hash sets ---
    let p = probe("membench_ppdc_bitset");
    let ppdc_dense = {
        let _s = breval_obs::span!("membench_ppdc_bitset");
        cone::ppdc_cones(&paths, &rels)
    };
    let ppdc_dense_stage = p.finish("ppdc_bitset");

    let p = probe("membench_ppdc_hash");
    let ppdc_hash = {
        let _s = breval_obs::span!("membench_ppdc_hash");
        cone::baseline::ppdc_cones_hash(&paths, &rels)
    };
    let ppdc_hash_stage = p.finish("ppdc_hash");

    assert_eq!(
        ppdc_dense.indexer().len(),
        ppdc_hash.len(),
        "PPDC key sets differ"
    );
    for (&asn, members) in &ppdc_hash {
        assert_eq!(
            ppdc_dense.size(asn),
            Some(members.len()),
            "PPDC cone size mismatch for {asn}"
        );
    }

    // --- coverage: compact keys (labels at the end) vs String-per-link ---
    let classifier = LinkClassifier::with_cone_sizes(
        asregistry::RegionMap::build(
            topology.iana_table(),
            &topology.delegation_files("20180405"),
        ),
        Arc::new(cone_dense.clone()),
        topology.tier1.clone(),
        topology.hypergiants.clone(),
    );
    let inferred: BTreeSet<asgraph::Link> = stats.links().clone();
    // A deterministic pseudo-validation subset: every third link.
    let validated: BTreeSet<asgraph::Link> = inferred.iter().step_by(3).copied().collect();

    let p = probe("membench_coverage_ids");
    let coverage_ids = {
        let _s = breval_obs::span!("membench_coverage_ids");
        coverage_by_class_keyed(
            &inferred,
            &validated,
            |l| classifier.region_class(l),
            |c| c.label(),
        )
    };
    let coverage_ids_stage = p.finish("coverage_ids");

    let p = probe("membench_coverage_strings");
    let coverage_strings = {
        let _s = breval_obs::span!("membench_coverage_strings");
        coverage_by_class(&inferred, &validated, |l| {
            classifier.region_class(l).map(|c| c.label())
        })
    };
    let coverage_strings_stage = p.finish("coverage_strings");

    assert_eq!(
        coverage_ids, coverage_strings,
        "keyed coverage rows differ from string-keyed rows"
    );

    let compare = |stage: &'static str, dense: &[&MemStage], baseline: &[&MemStage]| {
        let d_alloc: u64 = dense.iter().map(|s| s.allocations).sum();
        let b_alloc: u64 = baseline.iter().map(|s| s.allocations).sum();
        MemComparison {
            stage,
            dense_allocations: d_alloc,
            baseline_allocations: b_alloc,
            allocation_reduction: b_alloc as f64 / d_alloc.max(1) as f64,
            dense_wall_ms: dense.iter().map(|s| s.wall_ms).sum(),
            baseline_wall_ms: baseline.iter().map(|s| s.wall_ms).sum(),
        }
    };
    // The CSR build is charged to the dense cone side: the baseline needs no
    // auxiliary structure, so the comparison stays honest.
    let comparisons = vec![
        compare(
            "customer_cones",
            &[&csr_build, &cone_dense_stage],
            &[&cone_btree_stage],
        ),
        compare("ppdc_cones", &[&ppdc_dense_stage], &[&ppdc_hash_stage]),
        compare(
            "coverage",
            &[&coverage_ids_stage],
            &[&coverage_strings_stage],
        ),
    ];
    for c in &comparisons {
        eprintln!(
            "membench: {} — dense {} allocs / {:.1} ms, baseline {} allocs / {:.1} ms ({:.1}× fewer allocations)",
            c.stage,
            c.dense_allocations,
            c.dense_wall_ms,
            c.baseline_allocations,
            c.baseline_wall_ms,
            c.allocation_reduction,
        );
    }

    stages.push(csr_build);
    stages.push(cone_dense_stage);
    stages.push(cone_btree_stage);
    stages.push(ppdc_dense_stage);
    stages.push(ppdc_hash_stage);
    stages.push(coverage_ids_stage);
    stages.push(coverage_strings_stage);

    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let bench = BenchMem {
        name: "membench".to_owned(),
        scenario: if full { "default" } else { "small" }.to_owned(),
        seed,
        threads: 1,
        hardware_threads,
        exceeds_hardware: 1 > hardware_threads,
        stages,
        comparisons,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serializable");
    let bench_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_mem.json");
    std::fs::write(&bench_path, &json).expect("write BENCH_mem.json");
    eprintln!("membench: wrote {}", bench_path.display());

    if breval_obs::journal_enabled() {
        let trace_path = std::path::Path::new("results").join("trace_membench.json");
        breval_obs::write_trace_json(&trace_path).expect("write membench trace");
        eprintln!(
            "membench: event-journal trace written to {}",
            trace_path.display()
        );
    }
}
