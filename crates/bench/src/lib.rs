//! Shared experiment plumbing for the `experiments` binary and the criterion
//! benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use breval_core::{Scenario, ScenarioConfig};
use std::path::Path;

/// Runs (or reuses) the default paper-scale scenario.
#[must_use]
pub fn default_scenario() -> Scenario {
    Scenario::run(ScenarioConfig::default())
}

/// Runs the small test-scale scenario.
#[must_use]
pub fn small_scenario(seed: u64) -> Scenario {
    Scenario::run(ScenarioConfig::small(seed))
}

/// Writes `content` under `results/<name>`, creating directories as needed.
pub fn write_result(dir: &Path, name: &str, content: &str) -> std::io::Result<()> {
    let path = dir.join(name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}
