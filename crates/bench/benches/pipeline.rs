//! End-to-end pipeline benchmarks — one per experiment stage and one per
//! paper artefact family (the experiment harness binary regenerates the
//! actual tables/figures; these measure how long each regeneration costs).

use breval_core::pipeline::HeatmapMetric;
use breval_core::sampling::{sampling_sweep, SamplingConfig};
use breval_core::{Scenario, ScenarioConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_stages(c: &mut Criterion) {
    let cfg = topogen::TopologyConfig::small(7);

    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    group.bench_function("topology_generation", |b| {
        b.iter(|| std::hint::black_box(topogen::generate(&cfg)))
    });

    let topo = topogen::generate(&cfg);
    group.bench_function("route_propagation_full_mesh", |b| {
        b.iter(|| std::hint::black_box(bgpsim::simulate(&topo)))
    });

    let snap = bgpsim::simulate(&topo);
    let vcfg = valdata::ValDataConfig::default();
    group.bench_function("validation_compilation", |b| {
        b.iter(|| std::hint::black_box(valdata::compile_all(&topo, &snap, &vcfg)))
    });

    let raw = valdata::compile_all(&topo, &snap, &vcfg);
    let org = topo.as2org();
    group.bench_function("cleaning", |b| {
        b.iter(|| {
            std::hint::black_box(breval_core::cleaning::clean(
                &raw,
                &org,
                &breval_core::CleaningConfig::default(),
            ))
        })
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    // One scenario, reused: the figure benches measure the analysis cost,
    // not the simulation cost.
    let scenario = Scenario::run(ScenarioConfig::small(7));

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1_regional_coverage", |b| {
        b.iter(|| std::hint::black_box(scenario.fig1()))
    });
    group.bench_function("fig2_topological_coverage", |b| {
        b.iter(|| std::hint::black_box(scenario.fig2()))
    });
    group.bench_function("fig3_transit_degree_heatmap", |b| {
        b.iter(|| std::hint::black_box(scenario.heatmaps(HeatmapMetric::TransitDegree)))
    });
    group.bench_function("fig7_ppdc_heatmap", |b| {
        b.iter(|| std::hint::black_box(scenario.heatmaps(HeatmapMetric::Ppdc)))
    });
    group.bench_function("fig8_ppdc_no_vp_heatmap", |b| {
        b.iter(|| std::hint::black_box(scenario.heatmaps(HeatmapMetric::PpdcNoVp)))
    });
    group.bench_function("fig9_node_degree_heatmap", |b| {
        b.iter(|| std::hint::black_box(scenario.heatmaps(HeatmapMetric::NodeDegree)))
    });
    group.bench_function("table1_eval_asrank", |b| {
        b.iter(|| std::hint::black_box(scenario.eval_table("asrank")))
    });
    group.bench_function("table2_eval_problink", |b| {
        b.iter(|| std::hint::black_box(scenario.eval_table("problink")))
    });
    group.bench_function("table3_eval_toposcope", |b| {
        b.iter(|| std::hint::black_box(scenario.eval_table("toposcope")))
    });
    let scored = scenario.scored_in_class("asrank", "T1-TR");
    let sampling_cfg = SamplingConfig {
        trials: 20,
        step: 7,
        ..SamplingConfig::default()
    };
    group.bench_function("fig456_sampling_sweep", |b| {
        b.iter(|| std::hint::black_box(sampling_sweep(&scored, &sampling_cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_stages, bench_figures);
criterion_main!(benches);
