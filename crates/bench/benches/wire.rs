//! Wire-format benchmarks: BGP UPDATE and MRT TABLE_DUMP_V2 codec throughput.

use asgraph::Asn;
use bgpwire::{AsnEncoding, Community, Ipv4Prefix, UpdateMessage};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn sample_update() -> UpdateMessage {
    UpdateMessage::announcement(
        vec![
            Ipv4Prefix::new(0xC000_0200, 24).unwrap(),
            Ipv4Prefix::new(0xC633_6400, 24).unwrap(),
        ],
        vec![Asn(3356), Asn(200_100), Asn(64_499), Asn(7018)],
        vec![Community::new(3356, 100), Community::new(174, 990)],
    )
}

fn bench_update_codec(c: &mut Criterion) {
    let msg = sample_update();
    let bytes4 = msg.encode(AsnEncoding::FourByte);
    let bytes2 = msg.encode(AsnEncoding::TwoByte);

    let mut group = c.benchmark_group("bgp_update");
    group.throughput(Throughput::Bytes(bytes4.len() as u64));
    group.bench_function("encode_4byte", |b| {
        b.iter(|| std::hint::black_box(msg.encode(AsnEncoding::FourByte)))
    });
    group.bench_function("encode_2byte_with_as4path", |b| {
        b.iter(|| std::hint::black_box(msg.encode(AsnEncoding::TwoByte)))
    });
    group.bench_function("decode_4byte", |b| {
        b.iter(|| {
            let mut slice = &bytes4[..];
            std::hint::black_box(UpdateMessage::decode(&mut slice, AsnEncoding::FourByte).unwrap())
        })
    });
    group.bench_function("decode_2byte_reconstruct", |b| {
        b.iter(|| {
            let mut slice = &bytes2[..];
            let msg = UpdateMessage::decode(&mut slice, AsnEncoding::TwoByte).unwrap();
            std::hint::black_box(msg.as_path())
        })
    });
    group.finish();
}

fn bench_mrt_dump(c: &mut Criterion) {
    // A realistic small dump via the full pipeline.
    let topo = topogen::generate(&topogen::TopologyConfig::small(7));
    let snap = bgpsim::simulate(&topo);
    let bytes = snap.to_mrt(&topo);

    let mut group = c.benchmark_group("mrt");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("write_dump", |b| {
        b.iter(|| std::hint::black_box(snap.to_mrt(&topo)))
    });
    group.bench_function("read_dump_modern", |b| {
        b.iter(|| std::hint::black_box(bgpsim::snapshot::pathset_from_mrt(&bytes, true).unwrap()))
    });
    group.bench_function("read_dump_legacy", |b| {
        b.iter_batched(
            || bytes.clone(),
            |bytes| {
                std::hint::black_box(bgpsim::snapshot::pathset_from_mrt(&bytes, false).unwrap())
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_update_codec, bench_mrt_dump);
criterion_main!(benches);
