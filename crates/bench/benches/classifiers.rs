//! Classifier benchmarks: each inference algorithm over the same observed
//! path set (small scenario; the experiment harness runs paper scale).

use asinfer::{AsRank, Classifier, GaoClassifier, ProbLink, TopoScope, Unari};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_classifiers(c: &mut Criterion) {
    let topo = topogen::generate(&topogen::TopologyConfig::small(7));
    let snap = bgpsim::simulate(&topo);
    let paths = snap.to_pathset(false);

    let mut group = c.benchmark_group("classifiers");
    group.sample_size(10);
    group.bench_function("gao", |b| {
        b.iter(|| std::hint::black_box(GaoClassifier::new().infer(&paths)))
    });
    group.bench_function("asrank", |b| {
        b.iter(|| std::hint::black_box(AsRank::new().infer(&paths)))
    });
    group.bench_function("problink", |b| {
        b.iter(|| std::hint::black_box(ProbLink::new().infer(&paths)))
    });
    group.bench_function("toposcope", |b| {
        b.iter(|| std::hint::black_box(TopoScope::new().infer(&paths)))
    });
    group.bench_function("unari", |b| {
        b.iter(|| std::hint::black_box(Unari::new().infer(&paths)))
    });
    group.finish();

    // Shared sub-stages.
    let clean = paths.sanitized();
    let mut group = c.benchmark_group("classifier_stages");
    group.sample_size(20);
    group.bench_function("sanitize", |b| {
        b.iter(|| std::hint::black_box(paths.sanitized()))
    });
    group.bench_function("path_stats", |b| {
        b.iter(|| std::hint::black_box(clean.stats()))
    });
    let stats = clean.stats();
    group.bench_function("clique_inference", |b| {
        b.iter(|| {
            std::hint::black_box(asgraph::clique::infer_clique(
                &stats,
                asgraph::clique::CliqueParams::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
