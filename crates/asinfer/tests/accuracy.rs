//! End-to-end sanity: classifiers run on simulated paths must broadly agree
//! with the ground truth, and must exhibit the paper's §6.1 failure mode on
//! partial-transit links.

use asgraph::{Rel, RelClass};
use asinfer::{AsRank, Classifier, GaoClassifier, ProbLink, TopoScope};
use topogen::{generate, Topology, TopologyConfig};

fn world() -> (Topology, asgraph::PathSet) {
    let topo = generate(&TopologyConfig::small(2024));
    let snap = bgpsim::simulate(&topo);
    (topo, snap.to_pathset(false))
}

/// Accuracy of an inference against ground truth over observed links
/// (sibling links excluded, orientation-sensitive for P2C).
fn accuracy(topo: &Topology, inf: &asinfer::Inference) -> (f64, usize) {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (link, rel) in &inf.rels {
        let Some(gt) = topo.gt_rel(*link) else {
            continue;
        };
        if gt.base.class() == RelClass::S2s {
            continue;
        }
        total += 1;
        if gt.base == *rel {
            correct += 1;
        }
    }
    (correct as f64 / total.max(1) as f64, total)
}

#[test]
fn all_classifiers_beat_90_percent_overall() {
    let (topo, paths) = world();
    for (name, inf) in [
        ("asrank", AsRank::new().infer(&paths)),
        ("problink", ProbLink::new().infer(&paths)),
        ("toposcope", TopoScope::new().infer(&paths)),
    ] {
        let (acc, total) = accuracy(&topo, &inf);
        assert!(total > 1000, "{name}: too few scored links ({total})");
        assert!(acc > 0.90, "{name}: accuracy {acc:.3} below 0.90");
    }
}

#[test]
fn gao_is_weaker_but_not_random() {
    let (topo, paths) = world();
    let inf = GaoClassifier::new().infer(&paths);
    let (acc, total) = accuracy(&topo, &inf);
    assert!(total > 1000);
    // Gao's 2001 heuristic predates dense IXP peering and per-prefix TE;
    // on modern-shaped topologies its accuracy is genuinely poor (peering
    // links voted into transit by the degree-apex rule).
    assert!(acc > 0.45, "gao accuracy {acc:.3} suspiciously low");
}

#[test]
fn asrank_clique_matches_ground_truth_tier1() {
    let (topo, paths) = world();
    let inf = AsRank::new().infer(&paths);
    let hits = inf.clique.intersection(&topo.tier1).count();
    assert!(
        hits * 10 >= topo.tier1.len() * 7,
        "clique {:?} misses ground truth {:?}",
        inf.clique,
        topo.tier1
    );
}

#[test]
fn partial_transit_links_get_misinferred_as_p2p() {
    let (topo, paths) = world();
    let inf = AsRank::new().infer(&paths);
    // Cogent's partial-transit customer links that are visible: ASRank should
    // call a large share of them P2P (no upward triplet exists).
    let mut observed = 0usize;
    let mut called_p2p = 0usize;
    for (link, gt) in &topo.links {
        if !gt.partial_transit || gt.base.provider() != Some(topo.cogent) {
            continue;
        }
        let Some(rel) = inf.rel(*link) else { continue };
        observed += 1;
        if rel == Rel::P2p {
            called_p2p += 1;
        }
    }
    assert!(observed > 0, "no visible cogent partial-transit links");
    assert!(
        called_p2p * 2 >= observed,
        "expected ≥50% of partial-transit links misinferred P2P, got {called_p2p}/{observed}"
    );
}

#[test]
fn special_stub_peerings_get_misinferred_as_p2c() {
    let (topo, paths) = world();
    let inf = AsRank::new().infer(&paths);
    // Ground-truth P2P links between special stubs and Tier-1s: the stub
    // heuristic claims them as P2C — the paper's S-T1 failure.
    let mut observed = 0usize;
    let mut wrong = 0usize;
    for (link, gt) in &topo.links {
        if gt.base != Rel::P2p {
            continue;
        }
        let (a, b) = link.endpoints();
        let special = |x| {
            topo.info(x)
                .map(|i| i.special.is_some() && i.tier == topogen::TierClass::Stub)
                .unwrap_or(false)
        };
        let t1 = |x| topo.tier1.contains(&x);
        if !((special(a) && t1(b)) || (special(b) && t1(a))) {
            continue;
        }
        let Some(rel) = inf.rel(*link) else { continue };
        observed += 1;
        if rel.class() == RelClass::P2c {
            wrong += 1;
        }
    }
    assert!(observed > 5, "too few visible S-T1 peerings ({observed})");
    assert!(
        wrong * 3 >= observed * 2,
        "expected most S-T1 peerings misinferred P2C, got {wrong}/{observed}"
    );
}

#[test]
fn near_perfect_p2c_inference() {
    let (topo, paths) = world();
    for inf in [
        AsRank::new().infer(&paths),
        ProbLink::new().infer(&paths),
        TopoScope::new().infer(&paths),
    ] {
        let mut gt_p2c = 0usize;
        let mut correct = 0usize;
        for (link, rel) in &inf.rels {
            let Some(gt) = topo.gt_rel(*link) else {
                continue;
            };
            if gt.base.class() != RelClass::P2c {
                continue;
            }
            gt_p2c += 1;
            if *rel == gt.base {
                correct += 1;
            }
        }
        let recall = correct as f64 / gt_p2c.max(1) as f64;
        assert!(
            recall > 0.85,
            "{}: P2C recall {recall:.3} too low",
            inf.classifier
        );
    }
}
