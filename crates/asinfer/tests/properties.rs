//! Property tests for the inference algorithms: well-formed outputs on
//! arbitrary path sets, and stability invariants.

use asgraph::{AsPath, Asn, Link, PathSet, Rel};
use asinfer::{AsRank, Classifier, GaoClassifier, ProbLink, TopoScope, Unari};
use proptest::prelude::*;

fn arb_pathset() -> impl Strategy<Value = PathSet> {
    prop::collection::vec(prop::collection::vec(1u32..120, 2..8), 1..40).prop_map(|paths| {
        let mut ps = PathSet::new();
        for hops in paths {
            let hops: Vec<Asn> = hops.into_iter().map(Asn).collect();
            let vp = hops[0];
            ps.push(vp, AsPath::new(hops));
        }
        ps
    })
}

fn classifiers() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(GaoClassifier::new()),
        Box::new(AsRank::new()),
        Box::new(ProbLink::new()),
        Box::new(TopoScope::new()),
        Box::new(Unari::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every classifier labels exactly the sanitized observed links, every
    /// P2C orientation is valid, and no classifier panics on arbitrary input.
    #[test]
    fn outputs_are_well_formed(ps in arb_pathset()) {
        let observed = ps.sanitized().stats().links().clone();
        for c in classifiers() {
            let inf = c.infer(&ps);
            prop_assert_eq!(
                inf.rels.len(),
                observed.len(),
                "{} must label every observed link exactly once",
                c.name()
            );
            for (link, rel) in &inf.rels {
                prop_assert!(observed.contains(link), "{}: invented {link}", c.name());
                prop_assert!(rel.is_valid_for(*link), "{}: invalid orientation on {link}", c.name());
            }
        }
    }

    /// Determinism: same input twice, identical output, for every algorithm.
    #[test]
    fn all_classifiers_deterministic(ps in arb_pathset()) {
        for c in classifiers() {
            prop_assert_eq!(c.infer(&ps), c.infer(&ps), "{} not deterministic", c.name());
        }
    }

    /// The inferred clique is always fully meshed in the observed links.
    #[test]
    fn inferred_clique_is_a_clique(ps in arb_pathset()) {
        let inf = AsRank::new().infer(&ps);
        let observed = ps.sanitized().stats().links().clone();
        let members: Vec<Asn> = inf.clique.iter().copied().collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let link = Link::new(members[i], members[j]).unwrap();
                prop_assert!(
                    observed.contains(&link),
                    "clique pair {link} not adjacent in observed links"
                );
                prop_assert_eq!(inf.rel(link), Some(Rel::P2p));
            }
        }
    }

    /// UNARI's hard labels agree with its belief argmax, and the beliefs are
    /// proper distributions.
    #[test]
    fn unari_beliefs_consistent(ps in arb_pathset()) {
        let unari = Unari::new();
        let inf = unari.infer(&ps);
        let beliefs = unari.beliefs(&ps);
        prop_assert_eq!(inf.rels.len(), beliefs.len());
        for (link, belief) in &beliefs {
            prop_assert!((belief.p_p2c + belief.p_p2p - 1.0).abs() < 1e-9);
            prop_assert_eq!(inf.rel(*link), Some(belief.hard_label()));
        }
    }
}
