//! Shared classifier interface, output type, prepared-input plumbing, and
//! the provider-cycle repair pass every P2C-producing classifier runs.

use asgraph::{Asn, Link, PathSet, PathStats, Rel, RelClass};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The output of a relationship-inference run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inference {
    /// Which classifier produced this (for reporting).
    pub classifier: String,
    /// Per-link inferred relationship.
    pub rels: BTreeMap<Link, Rel>,
    /// The inferred provider-free clique (empty for algorithms without a
    /// clique stage).
    pub clique: BTreeSet<Asn>,
}

impl Inference {
    /// The inferred relationship of `link`.
    #[must_use]
    pub fn rel(&self, link: Link) -> Option<Rel> {
        self.rels.get(&link).copied()
    }

    /// Number of classified links.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// `true` if nothing was classified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Counts per relationship class.
    #[must_use]
    pub fn class_counts(&self) -> BTreeMap<RelClass, usize> {
        let mut out = BTreeMap::new();
        for rel in self.rels.values() {
            *out.entry(rel.class()).or_insert(0) += 1;
        }
        out
    }

    /// Fraction of links inferred P2C.
    #[must_use]
    pub fn p2c_share(&self) -> f64 {
        if self.rels.is_empty() {
            return 0.0;
        }
        let p2c = self
            .rels
            .values()
            .filter(|r| r.class() == RelClass::P2c)
            .count();
        p2c as f64 / self.rels.len() as f64
    }
}

/// Pre-digested classifier input: sanitized paths with their one-pass
/// statistics, plus (optionally) a full-view ASRank inference that
/// bootstrap classifiers (ProbLink, TopoScope) reuse instead of each
/// recomputing it. Sharing one preparation across the classifier ensemble
/// removes the pipeline's dominant redundant work without changing any
/// classifier's output: `infer_prepared` over a prepared input equals
/// `infer` over the raw paths whenever `paths`/`stats`/`asrank` match what
/// the classifier would derive itself.
#[derive(Clone, Copy)]
pub struct PreparedPaths<'a> {
    /// Sanitized observed paths (no loops, no reserved ASNs).
    pub paths: &'a PathSet,
    /// Statistics of `paths` (degrees, links, VP visibility).
    pub stats: &'a PathStats,
    /// A full-view ASRank inference over `paths`, when already available.
    pub asrank: Option<&'a Inference>,
}

impl<'a> PreparedPaths<'a> {
    /// Wraps already-sanitized paths and their stats, with no ASRank seed.
    #[must_use]
    pub fn new(paths: &'a PathSet, stats: &'a PathStats) -> Self {
        PreparedPaths {
            paths,
            stats,
            asrank: None,
        }
    }

    /// Attaches a shared full-view ASRank inference.
    #[must_use]
    pub fn with_asrank(self, asrank: &'a Inference) -> Self {
        PreparedPaths {
            asrank: Some(asrank),
            ..self
        }
    }
}

/// A relationship classifier: observed paths in, labelled links out.
pub trait Classifier {
    /// Human-readable name (used in report tables).
    fn name(&self) -> &'static str;

    /// Runs the inference.
    fn infer(&self, paths: &PathSet) -> Inference;

    /// Runs the inference over pre-sanitized paths with precomputed stats
    /// (and possibly a shared ASRank seed). The default ignores the
    /// preparation and re-derives everything from `prep.paths`; classifiers
    /// override this to skip redundant sanitisation / statistics / seed
    /// recomputation. Must produce exactly the same result as
    /// [`Classifier::infer`] on the same underlying paths.
    fn infer_prepared(&self, prep: PreparedPaths<'_>) -> Inference {
        self.infer(prep.paths)
    }

    /// Runs the inference inside an observability span `infer_<name>`,
    /// recording the number of relationship labels assigned. Classifiers
    /// that bootstrap from another classifier call [`Classifier::infer`]
    /// directly, so only the outermost run is timed and counted.
    fn infer_observed(&self, paths: &PathSet) -> Inference {
        if !breval_obs::enabled() {
            return self.infer(paths);
        }
        let _guard = observe_enter(self.name());
        let inference = self.infer(paths);
        observe_exit(self.name(), &inference);
        inference
    }

    /// [`Classifier::infer_prepared`] under the same `infer_<name>` span
    /// and counters as [`Classifier::infer_observed`].
    fn infer_prepared_observed(&self, prep: PreparedPaths<'_>) -> Inference {
        if !breval_obs::enabled() {
            return self.infer_prepared(prep);
        }
        let _guard = observe_enter(self.name());
        let inference = self.infer_prepared(prep);
        observe_exit(self.name(), &inference);
        inference
    }
}

/// Opens the per-classifier observability span.
fn observe_enter(name: &str) -> breval_obs::SpanGuard {
    // breval-lint: allow(L003) -- per-classifier span name; each infer_<name> is enumerated in the obs label registry
    breval_obs::span(&format!("infer_{name}"))
}

/// Records the per-classifier label counters (global + per-name).
fn observe_exit(name: &str, inference: &Inference) {
    breval_obs::counter("rels_assigned", inference.rels.len() as u64);
    // breval-lint: allow(L003) -- per-classifier counter; covered by the rels_assigned.* registry wildcard
    breval_obs::counter(
        &format!("rels_assigned.{name}"),
        inference.rels.len() as u64,
    );
}

/// Outcome of one [`break_provider_cycles`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakReport {
    /// Edges whose orientation was flipped to rank order.
    pub flipped: usize,
    /// Edges removed outright (caller defaults the link to P2P).
    pub dropped: usize,
}

impl CycleBreakReport {
    /// `true` when the input was already acyclic.
    #[must_use]
    pub fn untouched(&self) -> bool {
        self.flipped == 0 && self.dropped == 0
    }
}

/// Breaks every provider cycle in a directed `(provider, customer)` edge
/// set, in place.
///
/// Provider cycles are impossible under the rank-ordered top-down
/// inference of Luckie et al. — an AS cannot transitively provide to
/// itself — yet vote-based conflict resolution (ASRank) and ensemble
/// reconciliation (TopoScope) can assemble per-link decisions into one.
/// This pass restores the invariant the way the original's top-down
/// iteration implies: while a cycle exists, take the cycle edge with the
/// **smallest transit-degree gap** (the weakest directional assertion) and
/// break it **using rank order** — if the rank order (higher
/// `transit_degree` provides) disagrees with the edge's orientation, the
/// edge is flipped; otherwise the edge is contradictory evidence inside a
/// cycle and is dropped (the caller's default turns the link into P2P).
/// Each edge is flipped at most once, so the pass terminates; acyclic
/// inputs are returned untouched. Deterministic: cycles are located by
/// smallest-ASN walk and ties between candidate edges break on the edge
/// tuple.
pub fn break_provider_cycles<F>(
    edges: &mut BTreeSet<(Asn, Asn)>,
    transit_degree: F,
) -> CycleBreakReport
where
    F: Fn(Asn) -> usize,
{
    let mut report = CycleBreakReport::default();
    let mut flipped_once: BTreeSet<Link> = BTreeSet::new();
    loop {
        let residue = p2c_residue(edges);
        if residue.is_empty() {
            break;
        }
        let cycle = find_cycle(edges, &residue);
        // The weakest assertion on the cycle: smallest transit-degree gap.
        // Equal gaps prefer the rank-inverted orientation (so a two-node
        // cycle keeps the rank-ordered edge), then break ties by tuple.
        let Some(&(provider, customer)) = cycle.iter().min_by_key(|&&(p, c)| {
            (
                transit_degree(p).abs_diff(transit_degree(c)),
                usize::from(transit_degree(p) >= transit_degree(c)),
                p.0,
                c.0,
            )
        }) else {
            break; // unreachable: a non-empty residue always yields a cycle
        };
        let rank_inverted = transit_degree(customer) > transit_degree(provider);
        let link = Link::new(provider, customer);
        edges.remove(&(provider, customer));
        if rank_inverted
            && link.map(|l| flipped_once.insert(l)).unwrap_or(false)
            && !edges.contains(&(customer, provider))
        {
            edges.insert((customer, provider));
            report.flipped += 1;
        } else {
            report.dropped += 1;
        }
    }
    breval_obs::counter("p2c_cycle_edges_flipped", report.flipped as u64);
    breval_obs::counter("p2c_cycle_edges_dropped", report.dropped as u64);
    report
}

/// Kahn's algorithm over the provider→customer edges: returns the ASes
/// left on cycles (empty for a DAG).
fn p2c_residue(edges: &BTreeSet<(Asn, Asn)>) -> BTreeSet<Asn> {
    let mut indegree: HashMap<Asn, usize> = HashMap::new();
    let mut customers: HashMap<Asn, Vec<Asn>> = HashMap::new();
    for &(p, c) in edges.iter() {
        customers.entry(p).or_default().push(c);
        *indegree.entry(c).or_insert(0) += 1;
        indegree.entry(p).or_insert(0);
    }
    let mut queue: Vec<Asn> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(a, _)| *a)
        .collect();
    while let Some(p) = queue.pop() {
        if let Some(cs) = customers.get(&p) {
            for c in cs {
                let d = indegree
                    .get_mut(c)
                    .expect("every customer has an indegree entry");
                *d -= 1;
                if *d == 0 {
                    queue.push(*c);
                }
            }
        }
        indegree.remove(&p);
    }
    indegree.keys().copied().collect()
}

/// Finds one provider cycle inside the Kahn residue: from the smallest
/// residue AS, repeatedly step to the smallest in-residue provider until a
/// node repeats. Every residue node has such a provider by construction.
fn find_cycle(edges: &BTreeSet<(Asn, Asn)>, residue: &BTreeSet<Asn>) -> Vec<(Asn, Asn)> {
    let mut providers_of: HashMap<Asn, Asn> = HashMap::new();
    for &(p, c) in edges.iter() {
        if residue.contains(&p) && residue.contains(&c) {
            // BTreeSet iteration is ascending, so the first provider seen
            // per customer is the smallest.
            providers_of.entry(c).or_insert(p);
        }
    }
    let Some(start) = residue.iter().next().copied() else {
        return Vec::new();
    };
    let mut walk: Vec<Asn> = vec![start];
    let mut seen_at: HashMap<Asn, usize> = HashMap::new();
    seen_at.insert(start, 0);
    loop {
        let cur = *walk.last().expect("walk starts non-empty");
        let Some(&prov) = providers_of.get(&cur) else {
            return Vec::new(); // unreachable for a true residue
        };
        if let Some(&k) = seen_at.get(&prov) {
            // walk[k..] plus prov closes the cycle: prov provides walk[k],
            // and walk[i+1] provides walk[i] along the suffix.
            let mut cycle: Vec<(Asn, Asn)> = walk[k..].windows(2).map(|w| (w[1], w[0])).collect();
            cycle.push((prov, cur));
            return cycle;
        }
        seen_at.insert(prov, walk.len());
        walk.push(prov);
    }
}

/// Applies [`break_provider_cycles`] to a full relationship map: P2C
/// entries are extracted, repaired, and written back — flipped edges swap
/// their provider, dropped edges become P2P. Non-P2C entries and the key
/// set are untouched.
pub fn break_provider_cycles_in_rels<F>(
    rels: &mut BTreeMap<Link, Rel>,
    transit_degree: F,
) -> CycleBreakReport
where
    F: Fn(Asn) -> usize,
{
    let mut p2c: BTreeSet<(Asn, Asn)> = BTreeSet::new();
    for (link, rel) in rels.iter() {
        if let Rel::P2c { provider } = rel {
            let (a, b) = link.endpoints();
            let customer = if *provider == a { b } else { a };
            p2c.insert((*provider, customer));
        }
    }
    let report = break_provider_cycles(&mut p2c, transit_degree);
    if report.untouched() {
        return report;
    }
    for (link, rel) in rels.iter_mut() {
        if let Rel::P2c { provider } = *rel {
            let (a, b) = link.endpoints();
            let customer = if provider == a { b } else { a };
            if p2c.contains(&(provider, customer)) {
                continue;
            }
            *rel = if p2c.contains(&(customer, provider)) {
                Rel::P2c { provider: customer }
            } else {
                Rel::P2p
            };
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(u32, u32)]) -> BTreeSet<(Asn, Asn)> {
        pairs.iter().map(|&(p, c)| (Asn(p), Asn(c))).collect()
    }

    #[test]
    fn cycle_break_leaves_acyclic_input_untouched() {
        // A small provider hierarchy: 1 → {2, 3}, 2 → 3, 3 → 4. A DAG.
        let mut p2c = edges(&[(1, 2), (1, 3), (2, 3), (3, 4)]);
        let before = p2c.clone();
        let report = break_provider_cycles(&mut p2c, |a| (100 - a.0) as usize);
        assert!(report.untouched(), "acyclic input must not be modified");
        assert_eq!(p2c, before);
    }

    #[test]
    fn cycle_break_flips_rank_inverted_weakest_edge() {
        // Cycle 1 → 2 → 3 → 1 with transit degrees 12/50/11. Gaps:
        // (1,2)=38, (2,3)=39, (3,1)=1, so (3,1) is the weakest assertion;
        // rank order (td(1)=12 > td(3)=11) says 1 should provide 3, so the
        // edge flips rather than drops.
        let mut p2c = edges(&[(1, 2), (2, 3), (3, 1)]);
        let td = |a: Asn| match a.0 {
            1 => 12usize,
            2 => 50,
            _ => 11,
        };
        let report = break_provider_cycles(&mut p2c, td);
        assert_eq!(
            report,
            CycleBreakReport {
                flipped: 1,
                dropped: 0
            }
        );
        assert_eq!(p2c, edges(&[(1, 2), (1, 3), (2, 3)]));
    }

    #[test]
    fn cycle_break_drops_weakest_edge_already_in_rank_order() {
        // Cycle 1 → 2 → 3 → 1 with transit degrees 50/10/5. Gaps:
        // (1,2)=40, (2,3)=5, (3,1)=45, so (2,3) is weakest; it already
        // agrees with rank order (td(2)=10 > td(3)=5), so flipping would
        // only worsen rank inversion — the edge drops instead.
        let mut p2c = edges(&[(1, 2), (2, 3), (3, 1)]);
        let td = |a: Asn| match a.0 {
            1 => 50usize,
            2 => 10,
            _ => 5,
        };
        let report = break_provider_cycles(&mut p2c, td);
        assert_eq!(
            report,
            CycleBreakReport {
                flipped: 0,
                dropped: 1
            }
        );
        assert_eq!(p2c, edges(&[(1, 2), (3, 1)]));
    }

    #[test]
    fn cycle_break_two_node_cycle_keeps_rank_order_orientation() {
        // Both orientations asserted between 1 and 2; td(1) > td(2) so
        // whatever survives must orient 1 → 2.
        let mut p2c = edges(&[(1, 2), (2, 1)]);
        let td = |a: Asn| if a.0 == 1 { 20usize } else { 3 };
        let report = break_provider_cycles(&mut p2c, td);
        assert!(!report.untouched());
        assert_eq!(p2c, edges(&[(1, 2)]));
    }

    #[test]
    fn cycle_break_terminates_on_dense_tangle() {
        // Complete bidirectional digraph over 5 ASes: heavily cyclic.
        let mut p2c = BTreeSet::new();
        for p in 1..=5u32 {
            for c in 1..=5u32 {
                if p != c {
                    p2c.insert((Asn(p), Asn(c)));
                }
            }
        }
        let td = |a: Asn| (6 - a.0) as usize;
        break_provider_cycles(&mut p2c, td);
        let mut check = p2c.clone();
        assert!(break_provider_cycles(&mut check, td).untouched());
    }

    #[test]
    fn cycle_break_in_rels_preserves_key_set() {
        let l12 = Link::new(Asn(1), Asn(2)).expect("distinct");
        let l23 = Link::new(Asn(2), Asn(3)).expect("distinct");
        let l13 = Link::new(Asn(1), Asn(3)).expect("distinct");
        let l45 = Link::new(Asn(4), Asn(5)).expect("distinct");
        let mut rels: BTreeMap<Link, Rel> = BTreeMap::new();
        // Cycle 1 → 2 → 3 → 1 plus an unrelated P2P link.
        rels.insert(l12, Rel::P2c { provider: Asn(1) });
        rels.insert(l23, Rel::P2c { provider: Asn(2) });
        rels.insert(l13, Rel::P2c { provider: Asn(3) });
        rels.insert(l45, Rel::P2p);
        let keys: Vec<Link> = rels.keys().copied().collect();
        let report = break_provider_cycles_in_rels(&mut rels, |a| (10 - a.0) as usize);
        assert!(!report.untouched());
        assert_eq!(rels.keys().copied().collect::<Vec<_>>(), keys);
        assert_eq!(rels[&l45], Rel::P2p, "untouched entries survive");
        // Result must be acyclic.
        let mut p2c: BTreeSet<(Asn, Asn)> = BTreeSet::new();
        for (link, rel) in rels.iter() {
            if let Rel::P2c { provider } = rel {
                let (a, b) = link.endpoints();
                let customer = if *provider == a { b } else { a };
                p2c.insert((*provider, customer));
            }
        }
        assert!(break_provider_cycles(&mut p2c, |a| (10 - a.0) as usize).untouched());
    }

    #[test]
    fn prepared_paths_default_matches_infer() {
        struct Echo;
        impl Classifier for Echo {
            fn name(&self) -> &'static str {
                "echo"
            }
            fn infer(&self, paths: &PathSet) -> Inference {
                let mut inf = Inference {
                    classifier: "echo".into(),
                    ..Default::default()
                };
                for link in paths.stats().links() {
                    inf.rels.insert(*link, Rel::P2p);
                }
                inf
            }
        }
        let paths = PathSet::from_paths(vec![asgraph::ObservedPath {
            vp: Asn(1),
            path: asgraph::AsPath::new(vec![Asn(1), Asn(2), Asn(3)]),
        }]);
        let clean = paths.sanitized();
        let stats = clean.stats();
        let via_prep = Echo.infer_prepared(PreparedPaths::new(&clean, &stats));
        assert_eq!(via_prep.rels, Echo.infer(&clean).rels);
    }

    #[test]
    fn class_counts_and_share() {
        let l1 = Link::new(Asn(1), Asn(2)).unwrap();
        let l2 = Link::new(Asn(2), Asn(3)).unwrap();
        let l3 = Link::new(Asn(3), Asn(4)).unwrap();
        let mut inf = Inference {
            classifier: "test".into(),
            ..Default::default()
        };
        inf.rels.insert(l1, Rel::P2c { provider: Asn(1) });
        inf.rels.insert(l2, Rel::P2c { provider: Asn(2) });
        inf.rels.insert(l3, Rel::P2p);
        assert_eq!(inf.len(), 3);
        assert_eq!(inf.class_counts()[&RelClass::P2c], 2);
        assert!((inf.p2c_share() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(inf.rel(l3), Some(Rel::P2p));
        assert_eq!(inf.rel(Link::new(Asn(9), Asn(10)).unwrap()), None);
    }
}
