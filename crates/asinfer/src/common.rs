//! Shared classifier interface and output type.

use asgraph::{Asn, Link, PathSet, Rel, RelClass};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The output of a relationship-inference run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inference {
    /// Which classifier produced this (for reporting).
    pub classifier: String,
    /// Per-link inferred relationship.
    pub rels: BTreeMap<Link, Rel>,
    /// The inferred provider-free clique (empty for algorithms without a
    /// clique stage).
    pub clique: BTreeSet<Asn>,
}

impl Inference {
    /// The inferred relationship of `link`.
    #[must_use]
    pub fn rel(&self, link: Link) -> Option<Rel> {
        self.rels.get(&link).copied()
    }

    /// Number of classified links.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// `true` if nothing was classified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Counts per relationship class.
    #[must_use]
    pub fn class_counts(&self) -> BTreeMap<RelClass, usize> {
        let mut out = BTreeMap::new();
        for rel in self.rels.values() {
            *out.entry(rel.class()).or_insert(0) += 1;
        }
        out
    }

    /// Fraction of links inferred P2C.
    #[must_use]
    pub fn p2c_share(&self) -> f64 {
        if self.rels.is_empty() {
            return 0.0;
        }
        let p2c = self
            .rels
            .values()
            .filter(|r| r.class() == RelClass::P2c)
            .count();
        p2c as f64 / self.rels.len() as f64
    }
}

/// A relationship classifier: observed paths in, labelled links out.
pub trait Classifier {
    /// Human-readable name (used in report tables).
    fn name(&self) -> &'static str;

    /// Runs the inference.
    fn infer(&self, paths: &PathSet) -> Inference;

    /// Runs the inference inside an observability span `infer_<name>`,
    /// recording the number of relationship labels assigned. Classifiers
    /// that bootstrap from another classifier call [`Classifier::infer`]
    /// directly, so only the outermost run is timed and counted.
    fn infer_observed(&self, paths: &PathSet) -> Inference {
        if !breval_obs::enabled() {
            return self.infer(paths);
        }
        let name = self.name();
        // breval-lint: allow(L003) -- per-classifier span name; each infer_<name> is enumerated in the obs label registry
        let _span = breval_obs::span(&format!("infer_{name}"));
        let inference = self.infer(paths);
        breval_obs::counter("rels_assigned", inference.rels.len() as u64);
        // breval-lint: allow(L003) -- per-classifier counter; covered by the rels_assigned.* registry wildcard
        breval_obs::counter(
            &format!("rels_assigned.{name}"),
            inference.rels.len() as u64,
        );
        inference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_and_share() {
        let l1 = Link::new(Asn(1), Asn(2)).unwrap();
        let l2 = Link::new(Asn(2), Asn(3)).unwrap();
        let l3 = Link::new(Asn(3), Asn(4)).unwrap();
        let mut inf = Inference {
            classifier: "test".into(),
            ..Default::default()
        };
        inf.rels.insert(l1, Rel::P2c { provider: Asn(1) });
        inf.rels.insert(l2, Rel::P2c { provider: Asn(2) });
        inf.rels.insert(l3, Rel::P2p);
        assert_eq!(inf.len(), 3);
        assert_eq!(inf.class_counts()[&RelClass::P2c], 2);
        assert!((inf.p2c_share() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(inf.rel(l3), Some(Rel::P2p));
        assert_eq!(inf.rel(Link::new(Asn(9), Asn(10)).unwrap()), None);
    }
}
