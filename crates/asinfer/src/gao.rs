//! Gao's degree-based heuristic (IEEE/ACM ToN 2001) — the original
//! valley-free algorithm, kept as a historical baseline.
//!
//! Phase 1: in every path, the highest-degree AS is taken as the apex; pairs
//! before it ascend (right AS provides to left), pairs after it descend.
//! Phase 2: links with votes in both directions and balanced counts become
//! siblings. Phase 3: links with no transit votes and a bounded degree ratio
//! become peers.

use crate::common::{break_provider_cycles_in_rels, Classifier, Inference, PreparedPaths};
use asgraph::{Asn, Link, PathSet, PathStats, Rel};
use std::collections::{BTreeMap, HashMap};

/// Tunables for Gao's algorithm.
#[derive(Debug, Clone, Copy)]
pub struct GaoParams {
    /// Vote-balance bound `L`: both directions ≤ L ⇒ sibling.
    pub sibling_bound: usize,
    /// Degree-ratio bound `R` for peering candidates.
    pub peer_degree_ratio: f64,
}

impl Default for GaoParams {
    fn default() -> Self {
        GaoParams {
            sibling_bound: 1,
            peer_degree_ratio: 60.0,
        }
    }
}

/// The Gao classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaoClassifier {
    /// Algorithm tunables.
    pub params: GaoParams,
}

impl GaoClassifier {
    /// Creates an instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for GaoClassifier {
    fn name(&self) -> &'static str {
        "gao"
    }

    fn infer(&self, paths: &PathSet) -> Inference {
        let clean = paths.sanitized();
        let stats = clean.stats();
        self.infer_clean(&clean, &stats)
    }

    fn infer_prepared(&self, prep: PreparedPaths<'_>) -> Inference {
        self.infer_clean(prep.paths, prep.stats)
    }
}

impl GaoClassifier {
    /// The heuristic over already-sanitized paths with precomputed stats.
    fn infer_clean(&self, clean: &PathSet, stats: &PathStats) -> Inference {
        // transit[(provider, customer)] vote counts.
        let mut votes: HashMap<(Asn, Asn), usize> = HashMap::new();
        for op in clean.paths() {
            let hops = op.path.compressed();
            if hops.len() < 2 {
                continue;
            }
            // Apex: highest node degree (first occurrence on ties).
            let apex = hops
                .iter()
                .enumerate()
                .max_by(|(i, a), (j, b)| {
                    stats
                        .node_degree(**a)
                        .cmp(&stats.node_degree(**b))
                        .then(j.cmp(i)) // prefer the earlier position on ties
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            for i in 0..hops.len() - 1 {
                let (left, right) = (hops[i], hops[i + 1]);
                if i < apex {
                    // Ascending toward the apex (collector side): the AS
                    // closer to the apex provides to the one closer to the
                    // collector... the collector-side AS *received* the
                    // route, i.e. `left` learned from `right`; before the
                    // apex the route travelled downhill from the apex to the
                    // VP, so `right` provides to `left`.
                    *votes.entry((right, left)).or_insert(0) += 1;
                } else {
                    // After the apex the path descends towards the origin:
                    // `left` provides to `right`.
                    *votes.entry((left, right)).or_insert(0) += 1;
                }
            }
        }

        let mut rels: BTreeMap<Link, Rel> = BTreeMap::new();
        for link in stats.links() {
            let (a, b) = link.endpoints();
            let ab = votes.get(&(a, b)).copied().unwrap_or(0); // a provides b
            let ba = votes.get(&(b, a)).copied().unwrap_or(0);
            let rel = if ab == 0 && ba == 0 {
                Rel::P2p
            } else if ab > 0
                && ba > 0
                && ab <= self.params.sibling_bound
                && ba <= self.params.sibling_bound
            {
                Rel::S2s
            } else if ab >= ba {
                Rel::P2c { provider: a }
            } else {
                Rel::P2c { provider: b }
            };
            // Phase 3 refinement: transit-voted links with balanced degree
            // and tiny vote margins could be peers; Gao only downgrades
            // not-transit links, which we already defaulted to P2P above.
            let rel = match rel {
                Rel::P2c { .. } if ab > 0 && ba > 0 && ab == ba => {
                    let da = stats.node_degree(a) as f64;
                    let db = stats.node_degree(b) as f64;
                    let ratio = if db == 0.0 { f64::MAX } else { da / db };
                    if ratio < self.params.peer_degree_ratio
                        && ratio > 1.0 / self.params.peer_degree_ratio
                    {
                        Rel::P2p
                    } else {
                        rel
                    }
                }
                other => other,
            };
            rels.insert(*link, rel);
        }

        // Per-path apex votes can disagree into a provider cycle; repair by
        // rank order so downstream acyclicity checks hold for Gao too.
        break_provider_cycles_in_rels(&mut rels, |a| stats.transit_degree(a));

        Inference {
            classifier: self.name().to_owned(),
            rels,
            clique: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::AsPath;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::new(hops.iter().map(|&h| Asn(h)).collect())
    }

    /// Star around high-degree AS 1: everyone below it.
    #[test]
    fn star_infers_hub_as_provider() {
        let mut ps = PathSet::new();
        for leaf in [2u32, 3, 4, 5] {
            for other in [2u32, 3, 4, 5] {
                if leaf != other {
                    ps.push(Asn(leaf), path(&[leaf, 1, other]));
                }
            }
        }
        let inf = GaoClassifier::new().infer(&ps);
        for leaf in [2u32, 3, 4, 5] {
            assert_eq!(
                inf.rel(Link::new(Asn(1), Asn(leaf)).unwrap()),
                Some(Rel::P2c { provider: Asn(1) }),
                "leaf {leaf}"
            );
        }
    }

    #[test]
    fn chain_infers_descent_after_apex() {
        let mut ps = PathSet::new();
        // Give 1 the highest degree.
        ps.push(Asn(9), path(&[9, 1, 8]));
        ps.push(Asn(7), path(&[7, 1, 6]));
        ps.push(Asn(2), path(&[2, 1, 3, 4]));
        let inf = GaoClassifier::new().infer(&ps);
        assert_eq!(
            inf.rel(Link::new(Asn(3), Asn(4)).unwrap()),
            Some(Rel::P2c { provider: Asn(3) })
        );
        assert_eq!(
            inf.rel(Link::new(Asn(1), Asn(3)).unwrap()),
            Some(Rel::P2c { provider: Asn(1) })
        );
        // VP side ascends: 1 provides to 2.
        assert_eq!(
            inf.rel(Link::new(Asn(1), Asn(2)).unwrap()),
            Some(Rel::P2c { provider: Asn(1) })
        );
    }

    #[test]
    fn empty_is_empty() {
        let inf = GaoClassifier::new().infer(&PathSet::new());
        assert!(inf.is_empty());
    }
}
