//! ASRank (Luckie et al., IMC 2013) reimplementation.
//!
//! Pipeline stages, following §5 of the original paper:
//!
//! 1. **Sanitisation** — drop paths with loops or reserved ASNs.
//! 2. **Clique inference** — Bron–Kerbosch over the top transit-degree ASes
//!    (`asgraph::clique`).
//! 3. **Triplet-cascade P2C inference** — for every observed path, once an AS
//!    is known to have exported the route to a non-customer (the seed: a
//!    clique member appears immediately collector-side of it), every following
//!    link descends: P2C votes accumulate along the tail. Repeated passes let
//!    previously-inferred P2C links seed new cascades (the "top-down
//!    iteration" of the original).
//! 4. **Conflict resolution** — opposing votes resolved by vote ratio, then
//!    by transit-degree rank.
//! 5. **Stub heuristics** — an unresolved link between a clique member and a
//!    transit-degree-0 stub is inferred P2C (the original's stub rules; this
//!    is precisely why true S-T1 *peerings* of anycast/research stubs get
//!    misclassified, §6).
//! 6. **Default** — every remaining link is P2P.

use crate::common::{break_provider_cycles, Classifier, Inference, PreparedPaths};
use asgraph::clique::{infer_clique, CliqueParams};
use asgraph::{Asn, Link, PathSet, PathStats, Rel};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Transit-degree boost applied to clique members during cycle repair, so
/// an orientation flip can never rank a clique member below a non-member.
const CLIQUE_TD_BOOST: usize = 1 << 32;

/// Tunables for the ASRank pipeline.
#[derive(Debug, Clone, Copy)]
pub struct AsRankParams {
    /// Clique-stage parameters.
    pub clique: CliqueParams,
    /// Cascade passes (the original iterates to fixpoint; 3 suffices in
    /// practice).
    pub cascade_passes: usize,
    /// Vote-ratio needed to resolve a directional conflict outright.
    pub conflict_ratio: f64,
}

impl Default for AsRankParams {
    fn default() -> Self {
        AsRankParams {
            clique: CliqueParams::default(),
            cascade_passes: 3,
            conflict_ratio: 2.0,
        }
    }
}

/// The ASRank classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsRank {
    /// Pipeline tunables.
    pub params: AsRankParams,
}

impl AsRank {
    /// Creates an ASRank instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for AsRank {
    fn name(&self) -> &'static str {
        "asrank"
    }

    fn infer(&self, paths: &PathSet) -> Inference {
        let clean = paths.sanitized();
        let stats = clean.stats();
        self.infer_clean(&clean, &stats)
    }

    fn infer_prepared(&self, prep: PreparedPaths<'_>) -> Inference {
        self.infer_clean(prep.paths, prep.stats)
    }
}

impl AsRank {
    /// The pipeline over already-sanitized paths with precomputed stats.
    fn infer_clean(&self, clean: &PathSet, stats: &PathStats) -> Inference {
        let clique = infer_clique(stats, self.params.clique);

        // ---- Stage 3: triplet cascade votes ---------------------------------
        // votes[(provider, customer)] = evidence count.
        let mut votes: HashMap<(Asn, Asn), usize> = HashMap::new();
        // Relationships established so far ("w is not u's customer" evidence):
        // clique links + accumulated P2C (provider side).
        let mut known_p2c: BTreeSet<(Asn, Asn)> = BTreeSet::new(); // (provider, customer)

        for pass in 0..self.params.cascade_passes.max(1) {
            let mut new_votes: HashMap<(Asn, Asn), usize> = HashMap::new();
            for op in clean.paths() {
                let hops = op.path.compressed();
                if hops.len() < 3 {
                    continue;
                }
                // descending becomes true once some hop exported the route to
                // a non-customer.
                let mut descending = false;
                for i in 1..hops.len() {
                    let w = hops[i - 1]; // received the route from u
                    let u = hops[i];
                    // A descent that would place a clique member below a
                    // non-member is bogus (clique members are provider-free
                    // by construction): the earlier seed must have been an
                    // error-propagation artefact (e.g. through a sibling
                    // link). Reset and allow fresh seeding.
                    if descending && clique.contains(&u) && !clique.contains(&w) {
                        descending = false;
                    }
                    if !descending {
                        // Seed check: did u export to a non-customer w? A
                        // clique member is provider-free and so can never be
                        // u's customer; a known provider of u obviously is
                        // not.
                        descending = clique.contains(&w) || known_p2c.contains(&(w, u));
                    }
                    if descending {
                        // u's route was already known customer-learned at w's
                        // level; u received it from its customer v — unless v
                        // is a clique member, which can never be a customer.
                        // A strong rank inversion (the would-be customer
                        // vastly out-ranking the provider) signals an
                        // error-propagation artefact — Luckie et al. infer
                        // c2p "top-down using ranking"; reset the descent.
                        if let Some(&v) = hops.get(i + 1) {
                            let rank_inverted = stats.transit_degree(v)
                                > stats.transit_degree(u).saturating_mul(2).saturating_add(5);
                            if clique.contains(&v) || rank_inverted {
                                descending = false;
                            } else {
                                *new_votes.entry((u, v)).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }
            // Fold votes and derive provisional P2C set for the next pass.
            let before = known_p2c.len();
            for (k, v) in new_votes {
                *votes.entry(k).or_insert(0) += v;
            }
            known_p2c = resolve_votes(&votes, stats, &clique, self.params.conflict_ratio);
            // Vote resolution decides each link independently, so the
            // per-link decisions can assemble into a provider cycle — an
            // impossibility under the original's rank-ordered top-down
            // iteration. Repair after every pass: votes persist across
            // passes, so a cycle fixed only once would reseed itself.
            break_provider_cycles(&mut known_p2c, |a| {
                let boost = if clique.contains(&a) {
                    CLIQUE_TD_BOOST
                } else {
                    0
                };
                stats.transit_degree(a) + boost
            });
            if known_p2c.len() == before && pass > 0 {
                break;
            }
        }

        // ---- Stages 4–6: assemble final relationships ------------------------
        let mut rels: BTreeMap<Link, Rel> = BTreeMap::new();
        for (provider, customer) in &known_p2c {
            if let Some(link) = Link::new(*provider, *customer) {
                rels.insert(
                    link,
                    Rel::P2c {
                        provider: *provider,
                    },
                );
            }
        }
        for link in stats.links() {
            if rels.contains_key(link) {
                continue;
            }
            let (a, b) = link.endpoints();
            // Clique links are peers by construction.
            if clique.contains(&a) && clique.contains(&b) {
                rels.insert(*link, Rel::P2p);
                continue;
            }
            // Stub heuristic: clique member + transit-degree-0 stub → P2C.
            let stub_rule = |c: Asn, s: Asn| -> Option<Rel> {
                (clique.contains(&c) && stats.transit_degree(s) == 0)
                    .then_some(Rel::P2c { provider: c })
            };
            if let Some(rel) = stub_rule(a, b).or_else(|| stub_rule(b, a)) {
                rels.insert(*link, rel);
                continue;
            }
            // Default: peering.
            rels.insert(*link, Rel::P2p);
        }

        Inference {
            classifier: self.name().to_owned(),
            rels,
            clique,
        }
    }
}

/// Resolves directional votes into a consistent (provider, customer) set.
/// Clique members are provider-free: any vote naming one as a customer is
/// flipped (one side clique) or discarded (both sides clique).
fn resolve_votes(
    votes: &HashMap<(Asn, Asn), usize>,
    stats: &asgraph::PathStats,
    clique: &BTreeSet<Asn>,
    ratio: f64,
) -> BTreeSet<(Asn, Asn)> {
    let mut out = BTreeSet::new();
    let mut seen: BTreeSet<Link> = BTreeSet::new();
    for (&(p, c), &n) in votes {
        let Some(link) = Link::new(p, c) else {
            continue;
        };
        if seen.contains(&link) {
            continue;
        }
        seen.insert(link);
        if clique.contains(&p) && clique.contains(&c) {
            continue; // clique links are peerings
        }
        let fwd = n;
        let rev = votes.get(&(c, p)).copied().unwrap_or(0);
        let (fwd, rev, p, c) = if fwd >= rev {
            (fwd, rev, p, c)
        } else {
            (rev, fwd, c, p)
        };
        let (p, c) = if clique.contains(&c) { (c, p) } else { (p, c) };
        if rev == 0 || fwd as f64 >= ratio * rev as f64 || clique.contains(&p) {
            out.insert((p, c));
        } else {
            // Ambiguous: higher transit degree becomes the provider.
            if stats.transit_degree(p) >= stats.transit_degree(c) {
                out.insert((p, c));
            } else {
                out.insert((c, p));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::AsPath;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::new(hops.iter().map(|&h| Asn(h)).collect())
    }

    /// Hand-built scenario: clique {1,2,3}; 4 is a customer chain below 1;
    /// 5 below 4; 6 peers with 4 (only visible below 4).
    fn sample_paths() -> PathSet {
        let mut ps = PathSet::new();
        // Clique mesh visibility (gives the clique stage its mesh) and
        // cascades: vp 10 sits below 2.
        ps.push(Asn(10), path(&[10, 2, 1, 4, 5]));
        ps.push(Asn(10), path(&[10, 2, 3, 40]));
        ps.push(Asn(11), path(&[11, 3, 1, 4, 5]));
        ps.push(Asn(11), path(&[11, 3, 2, 41]));
        ps.push(Asn(12), path(&[12, 1, 2, 42]));
        ps.push(Asn(12), path(&[12, 1, 3, 43]));
        // Peering 4–6: 4 exports 6's routes only down to 5.
        ps.push(Asn(5), path(&[5, 4, 6]));
        // More transit evidence for 1,2,3 so they top the ranking.
        ps.push(Asn(13), path(&[13, 1, 44]));
        ps.push(Asn(13), path(&[13, 2, 45]));
        ps.push(Asn(13), path(&[13, 3, 46]));
        ps
    }

    #[test]
    fn infers_clique_and_cascaded_customers() {
        let inf = AsRank::new().infer(&sample_paths());
        assert!(inf.clique.contains(&Asn(1)));
        assert!(inf.clique.contains(&Asn(2)));
        assert!(inf.clique.contains(&Asn(3)));
        // 2|1|4 triplet: clique pair seeds descent → 4 is 1's customer.
        assert_eq!(
            inf.rel(Link::new(Asn(1), Asn(4)).unwrap()),
            Some(Rel::P2c { provider: Asn(1) })
        );
        // Cascade: 4 exported 5's route to its provider 1 → 5 is 4's customer.
        assert_eq!(
            inf.rel(Link::new(Asn(4), Asn(5)).unwrap()),
            Some(Rel::P2c { provider: Asn(4) })
        );
        // Clique links are peers.
        assert_eq!(inf.rel(Link::new(Asn(1), Asn(2)).unwrap()), Some(Rel::P2p));
    }

    #[test]
    fn lateral_only_links_default_to_p2p() {
        let inf = AsRank::new().infer(&sample_paths());
        // 4–6 never appears below a seed: stays P2P.
        assert_eq!(inf.rel(Link::new(Asn(4), Asn(6)).unwrap()), Some(Rel::P2p));
    }

    #[test]
    fn stub_to_clique_heuristic_forces_p2c() {
        let mut ps = sample_paths();
        // Stub 99 visible only laterally next to clique member 1 (e.g. a
        // true peering of an anycast stub): 1 exports it to its customer 4,
        // and to clique peer... no: peer routes don't go to peers. Only down.
        ps.push(Asn(5), path(&[5, 4, 1, 99]));
        let inf = AsRank::new().infer(&ps);
        // 99 has transit degree 0 and the link is unresolved by cascades
        // (1 never exported 99's route to another clique member) — the stub
        // rule kicks in and wrongly infers P2C. This is the S-T1 failure.
        assert_eq!(
            inf.rel(Link::new(Asn(1), Asn(99)).unwrap()),
            Some(Rel::P2c { provider: Asn(1) })
        );
    }

    #[test]
    fn sanitises_bad_paths() {
        let mut ps = sample_paths();
        ps.push(Asn(10), path(&[10, 2, 10, 2])); // loop
        ps.push(Asn(10), path(&[10, 23456, 7])); // AS_TRANS
        let inf = AsRank::new().infer(&ps);
        assert!(inf.rel(Link::new(Asn(23456), Asn(7)).unwrap()).is_none());
    }

    #[test]
    fn empty_input_yields_empty_inference() {
        let inf = AsRank::new().infer(&PathSet::new());
        assert!(inf.is_empty());
        assert!(inf.clique.is_empty());
    }
}
