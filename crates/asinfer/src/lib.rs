//! # asinfer — AS-relationship inference algorithms
//!
//! Reimplementations of the classifiers the paper evaluates. None of them is
//! available as reusable open source (ProbLink and TopoScope are Python
//! research artifacts; ASRank's production pipeline is CAIDA-internal), so the
//! paper's comparison requires rebuilding them. Each follows the published
//! algorithm's *structure*; corner-case heuristics are simplified where the
//! original relies on external data we do not model (IXP colocation lists,
//! BGP communities as classifier input, …). The simplifications are listed in
//! `DESIGN.md`.
//!
//! * [`gao::GaoClassifier`] — Gao 2001: degree-apex heuristic, valley-free
//!   maximisation.
//! * [`asrank::AsRank`] — Luckie et al. 2013: clique + triplet-cascade P2C
//!   inference + stub heuristics, remainder P2P.
//! * [`problink::ProbLink`] — Jin et al. 2019: iterative naive-Bayes
//!   refinement over link features, seeded by ASRank.
//! * [`toposcope::TopoScope`] — Jin et al. 2020: vantage-point ensemble with
//!   reconciliation.
//! * [`unari::Unari`] — an UNARI-style uncertainty-aware classifier (Feng et
//!   al. 2019); the paper could not analyse UNARI for lack of public
//!   artifacts, so this provides the missing belief surface.
//!
//! The common economic rule everything builds on: in an observed path
//! `… w u v …` (collector side first), `u` exported the `v`-side route to
//! `w`. If `w` is known not to be `u`'s customer (e.g. both are clique
//! members, or `w` is already inferred as `u`'s peer/provider), then by
//! Gao–Rexford export rules `u` must have learned the route from a customer —
//! so `v` is `u`'s customer, and the inference cascades along the rest of the
//! path. A provider that never re-exports a customer's routes upward (partial
//! transit, §6.1) starves this rule of evidence, and the link defaults to P2P.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asrank;
pub mod common;
pub mod features;
pub mod gao;
pub mod problink;
pub mod serial;
pub mod toposcope;
pub mod unari;

pub use asrank::AsRank;
pub use common::{
    break_provider_cycles, break_provider_cycles_in_rels, Classifier, CycleBreakReport, Inference,
    PreparedPaths,
};
pub use gao::GaoClassifier;
pub use problink::ProbLink;
pub use toposcope::TopoScope;
pub use unari::Unari;
