//! Link features shared by the probabilistic classifiers (ProbLink's feature
//! set, bucketised).

use asgraph::{Asn, Link, PathSet, PathStats};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Bucketised per-link features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkFeatures {
    /// log₂ bucket of the number of vantage points observing the link.
    pub vp_bucket: u8,
    /// log₂ bucket of the transit-degree ratio (max/min of the endpoints).
    pub degree_ratio_bucket: u8,
    /// Hop distance from the link to the nearest clique AS (capped).
    pub dist_to_clique: u8,
    /// log₂ bucket of export-to-non-customer triplet evidence.
    pub triplet_support: u8,
    /// log₂ bucket of the number of common neighbors of the endpoints.
    pub common_neighbors: u8,
}

/// Number of distinct buckets per dimension (all features are < this).
pub const N_BUCKETS: usize = 16;

fn log_bucket(v: usize) -> u8 {
    let mut b = 0u8;
    let mut x = v;
    while x > 0 && b < (N_BUCKETS as u8 - 1) {
        x >>= 1;
        b += 1;
    }
    b
}

/// Computes features for every observed link.
#[must_use]
pub fn compute_features(
    paths: &PathSet,
    stats: &PathStats,
    clique: &BTreeSet<Asn>,
) -> HashMap<Link, LinkFeatures> {
    // Neighbor sets for common-neighbor counts.
    let mut neighbors: HashMap<Asn, HashSet<Asn>> = HashMap::new();
    for link in stats.links() {
        let (a, b) = link.endpoints();
        neighbors.entry(a).or_default().insert(b);
        neighbors.entry(b).or_default().insert(a);
    }

    // BFS hop distance from the clique over the observed graph.
    let mut dist: HashMap<Asn, u8> = HashMap::new();
    let mut queue: VecDeque<Asn> = VecDeque::new();
    for &c in clique {
        dist.insert(c, 0);
        queue.push_back(c);
    }
    while let Some(u) = queue.pop_front() {
        let d = dist[&u];
        if d as usize >= N_BUCKETS - 1 {
            continue;
        }
        if let Some(ns) = neighbors.get(&u) {
            for &v in ns {
                dist.entry(v).or_insert_with(|| {
                    queue.push_back(v);
                    d + 1
                });
            }
        }
    }

    // Triplet support: (w, u, v) with w in the clique supports (u, v).
    let mut support: HashMap<Link, usize> = HashMap::new();
    for op in paths.paths() {
        let hops = op.path.compressed();
        for w in hops.windows(3) {
            if clique.contains(&w[0]) {
                if let Some(link) = Link::new(w[1], w[2]) {
                    *support.entry(link).or_insert(0) += 1;
                }
            }
        }
    }

    let mut out = HashMap::with_capacity(stats.links().len());
    for link in stats.links() {
        let (a, b) = link.endpoints();
        let (da, db) = (
            stats.transit_degree(a).max(1),
            stats.transit_degree(b).max(1),
        );
        let ratio = da.max(db) / da.min(db);
        let common = neighbors
            .get(&a)
            .map(|na| {
                neighbors
                    .get(&b)
                    .map(|nb| na.intersection(nb).count())
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        let d = dist
            .get(&a)
            .copied()
            .unwrap_or(N_BUCKETS as u8 - 1)
            .min(dist.get(&b).copied().unwrap_or(N_BUCKETS as u8 - 1));
        out.insert(
            *link,
            LinkFeatures {
                vp_bucket: log_bucket(stats.vp_count(*link)),
                degree_ratio_bucket: log_bucket(ratio),
                dist_to_clique: d.min(N_BUCKETS as u8 - 1),
                triplet_support: log_bucket(support.get(link).copied().unwrap_or(0)),
                common_neighbors: log_bucket(common),
            },
        );
    }
    out
}

impl LinkFeatures {
    /// The feature vector as bucket indices (for histogram estimation).
    #[must_use]
    pub fn dims(&self) -> [u8; 5] {
        [
            self.vp_bucket,
            self.degree_ratio_bucket,
            self.dist_to_clique,
            self.triplet_support,
            self.common_neighbors,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::AsPath;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::new(hops.iter().map(|&h| Asn(h)).collect())
    }

    #[test]
    fn log_buckets_are_monotone_and_capped() {
        assert_eq!(log_bucket(0), 0);
        assert_eq!(log_bucket(1), 1);
        assert_eq!(log_bucket(2), 2);
        assert_eq!(log_bucket(3), 2);
        assert_eq!(log_bucket(4), 3);
        assert!(log_bucket(usize::MAX) < N_BUCKETS as u8);
        let mut prev = 0;
        for v in 0..10_000 {
            let b = log_bucket(v);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn features_computed_for_all_links() {
        let mut ps = PathSet::new();
        ps.push(Asn(10), path(&[10, 1, 2, 3]));
        ps.push(Asn(11), path(&[11, 2, 1, 4]));
        let stats = ps.stats();
        let clique: BTreeSet<Asn> = [Asn(1), Asn(2)].into_iter().collect();
        let feats = compute_features(&ps, &stats, &clique);
        assert_eq!(feats.len(), stats.links().len());
        // Link 2-3 follows clique member 1 in path 10,1,2,3 → support > 0.
        let f23 = feats[&Link::new(Asn(2), Asn(3)).unwrap()];
        assert!(f23.triplet_support > 0);
        // Distance to clique: links incident to clique have distance 0.
        let f12 = feats[&Link::new(Asn(1), Asn(2)).unwrap()];
        assert_eq!(f12.dist_to_clique, 0);
    }

    #[test]
    fn dims_roundtrip() {
        let f = LinkFeatures {
            vp_bucket: 1,
            degree_ratio_bucket: 2,
            dist_to_clique: 3,
            triplet_support: 4,
            common_neighbors: 5,
        };
        assert_eq!(f.dims(), [1, 2, 3, 4, 5]);
    }
}
