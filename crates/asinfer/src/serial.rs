//! The CAIDA *as-rel* ("serial-1") text format.
//!
//! The de-facto interchange format for AS-relationship snapshots — the
//! paper's "inferred links" are literally the April 2018 file in this format
//! from `publicdata.caida.org/datasets/as-relationships/`:
//!
//! ```text
//! # input clique: 174 209 286 …
//! # <provider>|<customer>|-1
//! # <peer>|<peer>|0
//! 1|11537|0
//! 174|1299|0
//! 174|29791|-1
//! ```
//!
//! Reading/writing this format lets the analysis pipeline consume external
//! inference snapshots (or export ours for downstream tools).

use crate::common::Inference;
use asgraph::{Asn, Link, Rel};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Serialises an inference to the as-rel format, clique header included.
#[must_use]
pub fn to_caida_text(inference: &Inference) -> String {
    let mut out = String::new();
    if !inference.clique.is_empty() {
        let members: Vec<String> = inference.clique.iter().map(|a| a.0.to_string()).collect();
        let _ = writeln!(out, "# input clique: {}", members.join(" "));
    }
    let _ = writeln!(out, "# <provider-as>|<customer-as>|-1");
    let _ = writeln!(out, "# <peer-as>|<peer-as>|0");
    for (link, rel) in &inference.rels {
        match rel {
            Rel::P2c { provider } => {
                let customer = link.other(*provider).expect("provider is an endpoint");
                let _ = writeln!(out, "{}|{}|-1", provider.0, customer.0);
            }
            Rel::P2p => {
                let _ = writeln!(out, "{}|{}|0", link.a().0, link.b().0);
            }
            Rel::S2s => {
                // CAIDA's serial-1 has no sibling code; the convention in
                // derived datasets is 1.
                let _ = writeln!(out, "{}|{}|1", link.a().0, link.b().0);
            }
        }
    }
    out
}

/// Parses the as-rel format back into an [`Inference`].
pub fn from_caida_text(text: &str) -> Result<Inference, String> {
    let mut inference = Inference {
        classifier: "caida-serial1".into(),
        ..Default::default()
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(clique) = line.strip_prefix("# input clique:") {
            inference.clique = clique
                .split_whitespace()
                .map(|w| w.parse::<u32>().map(Asn))
                .collect::<Result<BTreeSet<Asn>, _>>()
                .map_err(|_| format!("line {line_no}: bad clique member"))?;
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() < 3 {
            return Err(format!("line {line_no}: expected a|b|rel"));
        }
        let a: u32 = fields[0]
            .parse()
            .map_err(|_| format!("line {line_no}: bad ASN {:?}", fields[0]))?;
        let b: u32 = fields[1]
            .parse()
            .map_err(|_| format!("line {line_no}: bad ASN {:?}", fields[1]))?;
        let link = Link::new(Asn(a), Asn(b)).ok_or_else(|| format!("line {line_no}: self link"))?;
        let rel = match fields[2] {
            "-1" => Rel::P2c { provider: Asn(a) },
            "0" => Rel::P2p,
            "1" => Rel::S2s,
            other => return Err(format!("line {line_no}: bad relationship {other:?}")),
        };
        if let Some(existing) = inference.rels.insert(link, rel) {
            if existing != rel {
                return Err(format!("line {line_no}: conflicting entries for {link}"));
            }
        }
    }
    Ok(inference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsRank;
    use crate::Classifier;
    use asgraph::{AsPath, PathSet};

    fn sample_inference() -> Inference {
        let mut ps = PathSet::new();
        let mk = |hops: &[u32]| AsPath::new(hops.iter().map(|&h| Asn(h)).collect());
        ps.push(Asn(10), mk(&[10, 2, 1, 4, 5]));
        ps.push(Asn(11), mk(&[11, 1, 2, 6]));
        ps.push(Asn(12), mk(&[12, 1, 7]));
        ps.push(Asn(12), mk(&[12, 2, 8]));
        AsRank::new().infer(&ps)
    }

    #[test]
    fn roundtrip() {
        let inf = sample_inference();
        let text = to_caida_text(&inf);
        assert!(text.contains("# input clique:"));
        let parsed = from_caida_text(&text).unwrap();
        assert_eq!(parsed.rels, inf.rels);
        assert_eq!(parsed.clique, inf.clique);
    }

    #[test]
    fn parses_real_world_shape() {
        let text = "\
# input clique: 174 3356
# <provider-as>|<customer-as>|-1
1|11537|0
174|29791|-1
174|3356|0
";
        let inf = from_caida_text(text).unwrap();
        assert_eq!(inf.rels.len(), 3);
        assert_eq!(
            inf.rel(Link::new(Asn(174), Asn(29791)).unwrap()),
            Some(Rel::P2c { provider: Asn(174) })
        );
        assert_eq!(
            inf.rel(Link::new(Asn(174), Asn(3356)).unwrap()),
            Some(Rel::P2p)
        );
        assert!(inf.clique.contains(&Asn(174)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_caida_text("1|2\n").is_err());
        assert!(from_caida_text("1|2|9\n").is_err());
        assert!(from_caida_text("x|2|0\n").is_err());
        assert!(from_caida_text("2|2|0\n").is_err());
        assert!(from_caida_text("# input clique: abc\n").is_err());
        // Duplicate consistent entries are fine; conflicting ones are not.
        assert!(from_caida_text("1|2|0\n1|2|0\n").is_ok());
        assert!(from_caida_text("1|2|0\n1|2|-1\n").is_err());
    }

    #[test]
    fn sibling_code() {
        let mut inf = Inference::default();
        inf.rels
            .insert(Link::new(Asn(1), Asn(2)).unwrap(), Rel::S2s);
        let text = to_caida_text(&inf);
        assert!(text.contains("1|2|1"));
        let parsed = from_caida_text(&text).unwrap();
        assert_eq!(parsed.rels, inf.rels);
    }
}
