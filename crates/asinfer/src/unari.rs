//! An UNARI-style uncertainty-aware classifier (after Feng et al.,
//! CoNEXT 2019).
//!
//! The paper's footnote 1 notes UNARI could not be analysed because no public
//! artifacts exist. This module provides the missing piece for the
//! simulation: instead of a hard label, every link gets a *belief* — a
//! probability distribution over relationship types — from the same
//! naive-Bayes feature model ProbLink iterates with, evaluated once against
//! the ASRank labelling. The hard-label [`Classifier`] view takes the argmax,
//! and the belief surface enables calibration analysis (does 90 % certainty
//! mean 90 % accuracy?).

use crate::asrank::AsRank;
use crate::common::{Classifier, Inference};
use crate::features::{compute_features, LinkFeatures, N_BUCKETS};
use asgraph::{Link, PathSet, Rel, RelClass};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A probability distribution over the relationship of one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBelief {
    /// Probability the link is P2C (either orientation).
    pub p_p2c: f64,
    /// Probability the link is P2P.
    pub p_p2p: f64,
    /// The more likely provider if the link is P2C.
    pub provider: asgraph::Asn,
}

impl LinkBelief {
    /// The classifier's certainty: the larger of the two probabilities.
    #[must_use]
    pub fn certainty(&self) -> f64 {
        self.p_p2c.max(self.p_p2p)
    }

    /// The argmax hard label.
    #[must_use]
    pub fn hard_label(&self) -> Rel {
        if self.p_p2c >= self.p_p2p {
            Rel::P2c {
                provider: self.provider,
            }
        } else {
            Rel::P2p
        }
    }
}

/// The uncertainty-aware classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unari;

impl Unari {
    /// Creates an instance.
    #[must_use]
    pub fn new() -> Self {
        Unari
    }

    /// Computes per-link beliefs.
    #[must_use]
    pub fn beliefs(&self, paths: &PathSet) -> BTreeMap<Link, LinkBelief> {
        let initial = AsRank::new().infer(paths);
        let clean = paths.sanitized();
        let stats = clean.stats();
        let features = compute_features(&clean, &stats, &initial.clique);

        // Fit class-conditional histograms on the ASRank labelling.
        let mut counts = [[[1.0f64; N_BUCKETS]; 5]; 2]; // Laplace smoothing
        let mut totals = [N_BUCKETS as f64; 2];
        for (link, rel) in &initial.rels {
            let Some(f) = features.get(link) else {
                continue;
            };
            let class = match rel.class() {
                RelClass::P2c => 0,
                RelClass::P2p => 1,
                RelClass::S2s => continue,
            };
            for (dim, bucket) in f.dims().into_iter().enumerate() {
                counts[class][dim][usize::from(bucket)] += 1.0;
            }
            totals[class] += 1.0;
        }
        // breval-lint: allow(L009) -- totals is a fixed-size [f64; 2]; indices 0 and 1 are in bounds by type
        let grand = totals[0] + totals[1];

        let log_posterior = |f: &LinkFeatures, class: usize| -> f64 {
            let mut lp = (totals[class] / grand).ln();
            for (dim, bucket) in f.dims().into_iter().enumerate() {
                lp += (counts[class][dim][usize::from(bucket)] / totals[class]).ln();
            }
            lp
        };

        initial
            .rels
            .iter()
            .map(|(link, rel)| {
                let provider = match rel {
                    Rel::P2c { provider } => *provider,
                    _ => {
                        // Orientation prior: higher transit degree provides.
                        let (a, b) = link.endpoints();
                        if stats.transit_degree(a) >= stats.transit_degree(b) {
                            a
                        } else {
                            b
                        }
                    }
                };
                let belief = match features.get(link) {
                    Some(f) => {
                        let (lc, lp) = (log_posterior(f, 0), log_posterior(f, 1));
                        // Softmax over the two log-posteriors.
                        let m = lc.max(lp);
                        let (ec, ep) = ((lc - m).exp(), (lp - m).exp());
                        LinkBelief {
                            p_p2c: ec / (ec + ep),
                            p_p2p: ep / (ec + ep),
                            provider,
                        }
                    }
                    None => LinkBelief {
                        p_p2c: 0.5,
                        p_p2p: 0.5,
                        provider,
                    },
                };
                (*link, belief)
            })
            .collect()
    }
}

impl Classifier for Unari {
    fn name(&self) -> &'static str {
        "unari"
    }

    fn infer(&self, paths: &PathSet) -> Inference {
        let initial = AsRank::new().infer(paths);
        let beliefs = self.beliefs(paths);
        let rels: BTreeMap<Link, Rel> = beliefs.iter().map(|(l, b)| (*l, b.hard_label())).collect();
        Inference {
            classifier: self.name().to_owned(),
            rels,
            clique: initial.clique,
        }
    }
}

/// One bin of a calibration curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibrationBin {
    /// Certainty range `[lo, hi)`.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Links in the bin (with a ground-truth/validation label available).
    pub links: usize,
    /// Mean certainty of the bin.
    pub mean_certainty: f64,
    /// Empirical class-level accuracy of the hard label in the bin.
    pub accuracy: f64,
}

/// Computes a calibration curve: certainty buckets vs empirical accuracy
/// against reference labels.
#[must_use]
pub fn calibration_curve(
    beliefs: &BTreeMap<Link, LinkBelief>,
    reference: &HashMap<Link, Rel>,
    bins: usize,
) -> Vec<CalibrationBin> {
    let bins = bins.max(1);
    let mut acc: Vec<(usize, f64, usize)> = vec![(0, 0.0, 0); bins]; // (n, certainty sum, correct)
    for (link, belief) in beliefs {
        let Some(truth) = reference.get(link) else {
            continue;
        };
        if truth.class() == RelClass::S2s {
            continue;
        }
        // Certainty ranges over [0.5, 1.0] for a binary belief.
        let c = belief.certainty();
        let idx = (((c - 0.5) / 0.5) * bins as f64).min(bins as f64 - 1.0) as usize;
        acc[idx].0 += 1;
        acc[idx].1 += c;
        if belief.hard_label().class() == truth.class() {
            acc[idx].2 += 1;
        }
    }
    acc.into_iter()
        .enumerate()
        .map(|(i, (n, csum, correct))| CalibrationBin {
            lo: 0.5 + 0.5 * i as f64 / bins as f64,
            hi: 0.5 + 0.5 * (i + 1) as f64 / bins as f64,
            links: n,
            mean_certainty: if n == 0 { 0.0 } else { csum / n as f64 },
            accuracy: if n == 0 {
                0.0
            } else {
                correct as f64 / n as f64
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::{AsPath, Asn};

    fn sample_paths() -> PathSet {
        let mut ps = PathSet::new();
        let mk = |hops: &[u32]| AsPath::new(hops.iter().map(|&h| Asn(h)).collect());
        for vp in [10u32, 11, 12] {
            ps.push(Asn(vp), mk(&[vp, 2, 1, 4, 5]));
            ps.push(Asn(vp), mk(&[vp, 2, 3, 40 + vp]));
        }
        ps.push(Asn(13), mk(&[13, 1, 2, 60]));
        ps.push(Asn(13), mk(&[13, 3, 1, 61]));
        ps.push(Asn(13), mk(&[13, 3, 2, 62]));
        ps
    }

    #[test]
    fn beliefs_are_probabilities() {
        let beliefs = Unari::new().beliefs(&sample_paths());
        assert!(!beliefs.is_empty());
        for (link, b) in &beliefs {
            assert!(
                (b.p_p2c + b.p_p2p - 1.0).abs() < 1e-9,
                "{link} not normalised"
            );
            assert!(
                b.certainty() >= 0.5 - 1e-9,
                "{link} certainty {}",
                b.certainty()
            );
            assert!(link.contains(b.provider));
        }
    }

    #[test]
    fn hard_labels_cover_all_observed_links() {
        let ps = sample_paths();
        let inf = Unari::new().infer(&ps);
        let stats = ps.sanitized().stats();
        assert_eq!(inf.len(), stats.links().len());
    }

    #[test]
    fn calibration_bins_are_consistent() {
        let ps = sample_paths();
        let beliefs = Unari::new().beliefs(&ps);
        // Use the hard labels themselves as reference: accuracy must be 1.0
        // in every populated bin.
        let reference: HashMap<Link, Rel> =
            beliefs.iter().map(|(l, b)| (*l, b.hard_label())).collect();
        let bins = calibration_curve(&beliefs, &reference, 5);
        assert_eq!(bins.len(), 5);
        let total: usize = bins.iter().map(|b| b.links).sum();
        assert_eq!(total, beliefs.len());
        for b in bins.iter().filter(|b| b.links > 0) {
            assert!((b.accuracy - 1.0).abs() < 1e-9);
            assert!(b.mean_certainty >= b.lo - 1e-9 && b.mean_certainty <= b.hi + 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let ps = sample_paths();
        assert_eq!(Unari::new().infer(&ps), Unari::new().infer(&ps));
    }
}
