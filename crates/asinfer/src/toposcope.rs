//! TopoScope (Jin et al., IMC 2020) reimplementation.
//!
//! TopoScope's core idea is to counter vantage-point bias by splitting the
//! VPs into groups, running a base inference per group, and reconciling the
//! per-group results (their Bayesian-network ensemble). We reproduce that
//! architecture with ASRank as the base inferrer and majority-vote
//! reconciliation backed by the full-view inference; the original's
//! hidden-link *discovery* stage (predicting invisible links) is out of scope
//! for the paper's evaluation, which scores only observed links.

use crate::asrank::AsRank;
use crate::common::{break_provider_cycles_in_rels, Classifier, Inference, PreparedPaths};
use asgraph::{Asn, Link, ObservedPath, PathSet, PathStats, Rel};
use std::collections::{BTreeMap, HashMap};

/// Transit-degree boost applied to clique members during cycle repair, so
/// an orientation flip can never rank a clique member below a non-member.
const CLIQUE_TD_BOOST: usize = 1 << 32;

/// Tunables for TopoScope.
#[derive(Debug, Clone, Copy)]
pub struct TopoScopeParams {
    /// Number of vantage-point groups in the ensemble.
    pub n_groups: usize,
    /// Minimum number of groups that must observe a link for the ensemble
    /// vote to stand on its own; below this the full-view result wins.
    pub min_groups: usize,
}

impl Default for TopoScopeParams {
    fn default() -> Self {
        TopoScopeParams {
            n_groups: 8,
            min_groups: 2,
        }
    }
}

/// The TopoScope classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoScope {
    /// Algorithm tunables.
    pub params: TopoScopeParams,
}

impl TopoScope {
    /// Creates an instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for TopoScope {
    fn name(&self) -> &'static str {
        "toposcope"
    }

    fn infer(&self, paths: &PathSet) -> Inference {
        let clean = paths.sanitized();
        let stats = clean.stats();
        let full = AsRank::new().infer_prepared(PreparedPaths::new(&clean, &stats));
        self.reconcile(&clean, &stats, &full)
    }

    fn infer_prepared(&self, prep: PreparedPaths<'_>) -> Inference {
        match prep.asrank {
            Some(full) => self.reconcile(prep.paths, prep.stats, full),
            None => {
                let full = AsRank::new().infer_prepared(prep);
                self.reconcile(prep.paths, prep.stats, &full)
            }
        }
    }
}

impl TopoScope {
    /// Ensemble inference over already-sanitized paths: VP grouping,
    /// per-group base inference (work-stealing parallel — group path sets
    /// are independent), majority-vote reconciliation against the shared
    /// full-view inference, and provider-cycle repair.
    fn reconcile(&self, clean: &PathSet, stats: &PathStats, full: &Inference) -> Inference {
        let base = AsRank::new();
        let vps = clean.vantage_points();
        let n_groups = self.params.n_groups.clamp(1, vps.len().max(1));

        // Deterministic round-robin VP grouping over the sorted VP list.
        let mut group_of: HashMap<Asn, usize> = HashMap::new();
        for (i, vp) in vps.iter().enumerate() {
            group_of.insert(*vp, i % n_groups);
        }
        let mut grouped: Vec<Vec<ObservedPath>> = vec![Vec::new(); n_groups];
        for op in clean.paths() {
            if let Some(&g) = group_of.get(&op.vp) {
                grouped[g].push(op.clone());
            }
        }

        // Per-group inference. Groups are already sanitized (subsets of
        // `clean`), so each worker only derives the group's own statistics.
        let grouped: Vec<PathSet> = grouped.into_iter().map(PathSet::from_paths).collect();
        // Sub-span around the per-group ensemble fan-out so the trace
        // separates it from the sequential vote reconciliation below.
        let group_results: Vec<Inference> = {
            let _groups = breval_obs::span!("toposcope_groups");
            breval_par::parallel_map(grouped.len(), |g| {
                let group = &grouped[g];
                let group_stats = group.stats();
                base.infer_prepared(PreparedPaths::new(group, &group_stats))
            })
        };

        // Reconciliation: per-link votes across observing groups.
        let mut rels: BTreeMap<Link, Rel> = BTreeMap::new();
        for (link, full_rel) in &full.rels {
            let mut p2p_votes = 0usize;
            let mut p2c_votes: BTreeMap<Asn, usize> = BTreeMap::new(); // by provider
            let mut observing = 0usize;
            for g in &group_results {
                match g.rel(*link) {
                    Some(Rel::P2p) => {
                        observing += 1;
                        p2p_votes += 1;
                    }
                    Some(Rel::P2c { provider }) => {
                        observing += 1;
                        *p2c_votes.entry(provider).or_insert(0) += 1;
                    }
                    Some(Rel::S2s) => observing += 1,
                    None => {}
                }
            }
            let total_p2c: usize = p2c_votes.values().sum();
            let decided = if observing < self.params.min_groups {
                *full_rel
            } else if p2p_votes > total_p2c {
                Rel::P2p
            } else if total_p2c > p2p_votes {
                // Majority orientation; ties broken by the full-view result.
                let best = p2c_votes
                    .iter()
                    .max_by_key(|(asn, n)| (**n, std::cmp::Reverse(asn.0)))
                    .map(|(asn, _)| *asn);
                match best {
                    Some(provider) => Rel::P2c { provider },
                    None => *full_rel,
                }
            } else {
                *full_rel
            };
            // Clique links remain peers regardless of group noise.
            let decided = if full.clique.contains(&link.a()) && full.clique.contains(&link.b()) {
                Rel::P2p
            } else {
                decided
            };
            rels.insert(*link, decided);
        }

        // Majority votes decide each link independently, so the combined
        // decisions can form a provider cycle even though every per-group
        // inference is acyclic. Repair by rank order (clique boosted so a
        // flip never ranks a clique member below a non-member).
        break_provider_cycles_in_rels(&mut rels, |a| {
            let boost = if full.clique.contains(&a) {
                CLIQUE_TD_BOOST
            } else {
                0
            };
            stats.transit_degree(a) + boost
        });

        Inference {
            classifier: self.name().to_owned(),
            rels,
            clique: full.clique.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::AsPath;

    fn path(hops: &[u32]) -> AsPath {
        AsPath::new(hops.iter().map(|&h| Asn(h)).collect())
    }

    fn sample_paths() -> PathSet {
        let mut ps = PathSet::new();
        // Several VPs so grouping is non-trivial.
        for vp in [10u32, 11, 12, 13, 14, 15] {
            ps.push(Asn(vp), path(&[vp, 2, 1, 4, 5]));
            ps.push(Asn(vp), path(&[vp, 2, 3, 40 + vp]));
        }
        ps.push(Asn(16), path(&[16, 1, 2, 60]));
        ps.push(Asn(17), path(&[17, 3, 1, 61]));
        ps.push(Asn(17), path(&[17, 3, 2, 62]));
        ps
    }

    #[test]
    fn covers_all_observed_links() {
        let ps = sample_paths();
        let stats = ps.sanitized().stats();
        let inf = TopoScope::new().infer(&ps);
        assert_eq!(inf.len(), stats.links().len());
    }

    #[test]
    fn agrees_with_asrank_on_strong_evidence() {
        let ps = sample_paths();
        let asrank = AsRank::new().infer(&ps);
        let topo = TopoScope::new().infer(&ps);
        let l = Link::new(Asn(1), Asn(4)).unwrap();
        assert_eq!(topo.rel(l), asrank.rel(l));
    }

    #[test]
    fn deterministic() {
        let ps = sample_paths();
        let a = TopoScope::new().infer(&ps);
        let b = TopoScope::new().infer(&ps);
        assert_eq!(a, b);
    }

    #[test]
    fn single_vp_degenerates_to_full_view() {
        let mut ps = PathSet::new();
        ps.push(Asn(10), path(&[10, 1, 2, 3]));
        let asrank = AsRank::new().infer(&ps);
        let topo = TopoScope::new().infer(&ps);
        assert_eq!(topo.rels, asrank.rels);
    }

    #[test]
    fn empty_input() {
        assert!(TopoScope::new().infer(&PathSet::new()).is_empty());
    }
}
