//! ProbLink (Jin et al., NSDI 2019) reimplementation.
//!
//! A meta-classifier: start from an initial labelling (ASRank), then
//! iteratively re-estimate each link's class with a naive-Bayes model over
//! link features whose conditional distributions are fitted on the *current*
//! labelling, until convergence.
//!
//! This captures ProbLink's defining behaviour — and its failure mode the
//! paper highlights: the global feature distributions are dominated by the
//! common classes, so links whose features look like the majority get pulled
//! toward it, improving overall accuracy while degrading rare classes
//! (§6: "following a strategy of simply improving the overall classification
//! error can lead to substantial correctness degradation for classes that
//! contain fewer links").

use crate::asrank::AsRank;
use crate::common::{Classifier, Inference, PreparedPaths};
use crate::features::{compute_features, LinkFeatures, N_BUCKETS};
use asgraph::{Link, PathSet, PathStats, Rel, RelClass};
use std::collections::{BTreeMap, HashMap};

/// Tunables for ProbLink.
#[derive(Debug, Clone, Copy)]
pub struct ProbLinkParams {
    /// Maximum refinement iterations.
    pub max_iters: usize,
    /// Convergence threshold: stop when fewer than this fraction of links
    /// change class in one iteration.
    pub convergence: f64,
}

impl Default for ProbLinkParams {
    fn default() -> Self {
        ProbLinkParams {
            max_iters: 10,
            convergence: 0.001,
        }
    }
}

/// The ProbLink classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbLink {
    /// Algorithm tunables.
    pub params: ProbLinkParams,
}

impl ProbLink {
    /// Creates an instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-class feature histograms (Laplace-smoothed).
struct NaiveBayes {
    /// counts[class][dim][bucket]
    counts: [[[f64; N_BUCKETS]; 5]; 2],
    totals: [f64; 2],
}

const CLASS_P2C: usize = 0;
const CLASS_P2P: usize = 1;

impl NaiveBayes {
    fn fit(labels: &BTreeMap<Link, Rel>, features: &HashMap<Link, LinkFeatures>) -> Self {
        let mut nb = NaiveBayes {
            counts: [[[1.0; N_BUCKETS]; 5]; 2], // Laplace smoothing
            totals: [N_BUCKETS as f64; 2],
        };
        for (link, rel) in labels {
            let Some(f) = features.get(link) else {
                continue;
            };
            let class = match rel.class() {
                RelClass::P2c => CLASS_P2C,
                RelClass::P2p => CLASS_P2P,
                RelClass::S2s => continue,
            };
            for (dim, bucket) in f.dims().into_iter().enumerate() {
                nb.counts[class][dim][usize::from(bucket)] += 1.0;
            }
            nb.totals[class] += 1.0;
        }
        nb
    }

    /// Log-posterior of each class for a feature vector.
    fn log_posteriors(&self, f: &LinkFeatures) -> [f64; 2] {
        // breval-lint: allow(L009) -- totals is a fixed-size [f64; 2]; indices 0 and 1 are in bounds by type
        let grand_total = self.totals[0] + self.totals[1];
        let mut out = [0.0; 2];
        for class in [CLASS_P2C, CLASS_P2P] {
            let mut lp = (self.totals[class] / grand_total).ln();
            for (dim, bucket) in f.dims().into_iter().enumerate() {
                lp += (self.counts[class][dim][usize::from(bucket)] / self.totals[class]).ln();
            }
            out[class] = lp;
        }
        out
    }
}

impl Classifier for ProbLink {
    fn name(&self) -> &'static str {
        "problink"
    }

    fn infer(&self, paths: &PathSet) -> Inference {
        let clean = paths.sanitized();
        let stats = clean.stats();
        let initial = AsRank::new().infer_prepared(PreparedPaths::new(&clean, &stats));
        self.refine(&clean, &stats, &initial)
    }

    fn infer_prepared(&self, prep: PreparedPaths<'_>) -> Inference {
        match prep.asrank {
            Some(initial) => self.refine(prep.paths, prep.stats, initial),
            None => {
                let initial = AsRank::new().infer_prepared(prep);
                self.refine(prep.paths, prep.stats, &initial)
            }
        }
    }
}

impl ProbLink {
    /// Naive-Bayes refinement of the initial (ASRank) labelling.
    fn refine(&self, clean: &PathSet, stats: &PathStats, initial: &Inference) -> Inference {
        let features = compute_features(clean, stats, &initial.clique);

        let mut labels = initial.rels.clone();
        let n_links = labels.len().max(1);
        for _ in 0..self.params.max_iters {
            let nb = NaiveBayes::fit(&labels, &features);
            let mut changes = 0usize;
            let mut next = labels.clone();
            for (link, rel) in &labels {
                // Clique links stay peers; sibling labels are untouched.
                if rel.class() == RelClass::S2s
                    || (initial.clique.contains(&link.a()) && initial.clique.contains(&link.b()))
                {
                    continue;
                }
                let Some(f) = features.get(link) else {
                    continue;
                };
                let lp = nb.log_posteriors(f);
                let want = if lp[CLASS_P2C] >= lp[CLASS_P2P] {
                    RelClass::P2c
                } else {
                    RelClass::P2p
                };
                if want == rel.class() {
                    continue;
                }
                let new_rel = match want {
                    RelClass::P2p => Rel::P2p,
                    RelClass::P2c => {
                        // Orientation: the larger transit degree provides.
                        let (a, b) = link.endpoints();
                        let provider = if stats.transit_degree(a) >= stats.transit_degree(b) {
                            a
                        } else {
                            b
                        };
                        Rel::P2c { provider }
                    }
                    // breval-lint: allow(L009) -- the proposal stage never emits s2s; exhaustive-match invariant
                    RelClass::S2s => unreachable!("never proposed"),
                };
                next.insert(*link, new_rel);
                changes += 1;
            }
            labels = next;
            if (changes as f64) / (n_links as f64) < self.params.convergence {
                break;
            }
        }

        Inference {
            classifier: self.name().to_owned(),
            rels: labels,
            clique: initial.clique.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::{AsPath, Asn, PathSet};

    fn path(hops: &[u32]) -> AsPath {
        AsPath::new(hops.iter().map(|&h| Asn(h)).collect())
    }

    /// A clear hierarchy: ProbLink should agree with ASRank on the easy case.
    #[test]
    fn agrees_with_asrank_on_clean_hierarchy() {
        let mut ps = PathSet::new();
        ps.push(Asn(10), path(&[10, 2, 1, 4, 5]));
        ps.push(Asn(11), path(&[11, 3, 1, 4, 5]));
        ps.push(Asn(10), path(&[10, 2, 3, 40]));
        ps.push(Asn(11), path(&[11, 3, 2, 41]));
        ps.push(Asn(12), path(&[12, 1, 2, 42]));
        ps.push(Asn(12), path(&[12, 1, 3, 43]));
        ps.push(Asn(13), path(&[13, 1, 44]));
        ps.push(Asn(13), path(&[13, 2, 45]));
        ps.push(Asn(13), path(&[13, 3, 46]));
        let asrank = AsRank::new().infer(&ps);
        let problink = ProbLink::new().infer(&ps);
        let l14 = Link::new(Asn(1), Asn(4)).unwrap();
        assert_eq!(problink.rel(l14), asrank.rel(l14));
        assert_eq!(problink.len(), asrank.len());
    }

    #[test]
    fn clique_links_stay_p2p() {
        let mut ps = PathSet::new();
        ps.push(Asn(10), path(&[10, 2, 1, 4]));
        ps.push(Asn(11), path(&[11, 1, 2, 5]));
        ps.push(Asn(12), path(&[12, 1, 6]));
        ps.push(Asn(12), path(&[12, 2, 7]));
        let inf = ProbLink::new().infer(&ps);
        if inf.clique.contains(&Asn(1)) && inf.clique.contains(&Asn(2)) {
            assert_eq!(inf.rel(Link::new(Asn(1), Asn(2)).unwrap()), Some(Rel::P2p));
        }
    }

    #[test]
    fn empty_input() {
        let inf = ProbLink::new().infer(&PathSet::new());
        assert!(inf.is_empty());
    }

    /// Determinism: same input twice, same output.
    #[test]
    fn deterministic() {
        let mut ps = PathSet::new();
        for i in 0..20u32 {
            ps.push(Asn(100 + i), path(&[100 + i, 1, 2, 200 + i]));
            ps.push(Asn(100 + i), path(&[100 + i, 2, 1, 300 + i]));
        }
        let a = ProbLink::new().infer(&ps);
        let b = ProbLink::new().infer(&ps);
        assert_eq!(a, b);
    }
}
