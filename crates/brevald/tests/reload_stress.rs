//! Concurrent read-during-reload stress: readers racing a publisher must
//! never observe a torn generation — within one generation every reply is
//! byte-identical, across threads and across thread caps.

use breval_core::snapshot::{build_snapshot, ScenarioSnapshot, SnapshotKey};
use brevald::set::{ClassifierView, SnapshotSet};
use brevald::slices::SliceTable;
use brevald::store::SnapshotStore;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cheap one-classifier set whose answers depend on `tag`: a provider
/// chain `1 → 2 → … → tag+3`, so `cone 1` reports a cone of `tag + 3`.
/// Round-tripping through the codec materialises every snapshot part.
fn tiny_set(tag: u32) -> SnapshotSet {
    let mut g = asgraph::AsGraph::new();
    for i in 1..=(tag + 2) {
        let link = asgraph::Link::new(asgraph::Asn(i), asgraph::Asn(i + 1)).expect("distinct");
        g.add_rel(
            link,
            asgraph::Rel::P2c {
                provider: asgraph::Asn(i),
            },
        )
        .expect("fresh link");
    }
    let snap = build_snapshot("asrank", &g);
    let key = SnapshotKey {
        config_hash: u64::from(tag),
        seed: 0,
        name: "asrank".to_owned(),
    };
    let (_, full) = ScenarioSnapshot::from_bytes(&snap.to_bytes(&key)).expect("round trip");
    let view = ClassifierView::resolve(&full).expect("codec materialises every part");
    SnapshotSet::new(vec![view], &SliceTable::empty())
}

const PROBES: [&str; 4] = ["cone 1", "member 1 3", "class 1 2", "ascov 1"];

/// The serial ground truth: what generation `tag` answers for the probes.
fn truth(tag: u32) -> Vec<String> {
    let set = tiny_set(tag);
    PROBES
        .iter()
        .map(|q| brevald::answer_line(&set, q))
        .collect()
}

#[test]
fn concurrent_readers_see_consistent_generations_during_reloads() {
    const GENERATIONS: u32 = 24;
    const READERS: usize = 4;

    let store = Arc::new(SnapshotStore::new(tiny_set(0)));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen: BTreeMap<u64, Vec<String>> = BTreeMap::new();
                while !stop.load(Ordering::Relaxed) {
                    // One resolve per iteration: every probe in this round
                    // answers against the same immutable generation.
                    let set = store.current();
                    let replies: Vec<String> = PROBES
                        .iter()
                        .map(|q| brevald::answer_line(&set, q))
                        .collect();
                    match seen.get(&set.generation()) {
                        None => {
                            seen.insert(set.generation(), replies);
                        }
                        Some(prev) => assert_eq!(
                            prev,
                            &replies,
                            "generation {} answered differently on a re-read",
                            set.generation()
                        ),
                    }
                }
                seen
            })
        })
        .collect();

    // Publish new generations while the readers hammer the store. The
    // publisher never waits for readers; readers never lock.
    for tag in 1..=GENERATIONS {
        store
            .publish(tiny_set(tag))
            .expect("well under generation capacity");
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);

    let mut observed: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for reader in readers {
        for (generation, replies) in reader.join().expect("reader thread panicked") {
            // Cross-thread: two threads that saw the same generation must
            // have byte-identical replies.
            match observed.get(&generation) {
                None => {
                    observed.insert(generation, replies);
                }
                Some(prev) => assert_eq!(
                    prev, &replies,
                    "generation {generation} differed across reader threads"
                ),
            }
        }
    }

    // Every observed generation matches the serial ground truth (tag ==
    // generation number by publish order), so no reader ever saw a torn
    // or half-swapped set.
    assert!(!observed.is_empty(), "readers observed no generations");
    for (generation, replies) in &observed {
        let tag = u32::try_from(*generation).expect("small generation");
        assert_eq!(
            replies,
            &truth(tag),
            "generation {generation} does not match its serial ground truth"
        );
    }
    // The final generation is the active one.
    assert_eq!(store.current().generation(), u64::from(GENERATIONS));
}

#[test]
fn replies_are_byte_identical_at_one_and_four_threads() {
    let set = tiny_set(5);
    let queries: Vec<String> = (0..64)
        .flat_map(|i| {
            [
                format!("cone {}", i % 9 + 1),
                format!("member 1 {}", i % 9 + 2),
                format!("class {} {}", i % 8 + 1, i % 8 + 2),
                format!("ascov {}", i % 9 + 1),
                "slice * *".to_owned(),
                "stats".to_owned(),
            ]
        })
        .collect();
    let one = breval_par::with_thread_cap(Some(1), || brevald::answer_batch(&set, &queries));
    let four = breval_par::with_thread_cap(Some(4), || brevald::answer_batch(&set, &queries));
    assert_eq!(one, four, "batch answers depend on the thread cap");
}
