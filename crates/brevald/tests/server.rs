//! End-to-end serve-loop tests: a warm-loaded snapshot set must answer
//! every query kind byte-identically to the cold-built one, the line
//! protocol must survive malformed input, batches must match singles, and
//! `reload` + `drain` must advance the generation without disturbing the
//! transport.

use breval_core::pipeline::{Scenario, ScenarioConfig};
use brevald::server::Server;
use brevald::set::SnapshotSet;
use brevald::slices;
use brevald::store::SnapshotStore;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

const SEED: u64 = 31;

fn config() -> ScenarioConfig {
    ScenarioConfig::small(SEED)
}

/// One scenario + persisted snapshot dir, shared by every test in this
/// binary (the pipeline run is the expensive part).
fn fixture() -> &'static (Scenario, PathBuf) {
    static FIXTURE: OnceLock<(Scenario, PathBuf)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = std::env::temp_dir().join("brevald_server_test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenario = Scenario::run(config());
        let written = SnapshotSet::save_all(&scenario, &dir).expect("persist snapshots");
        assert_eq!(written, 5, "4 classifiers + 1 slice table");
        (scenario, dir)
    })
}

/// A query list covering every kind, derived from the scenario's own
/// links so the answers are non-trivial.
fn query_corpus(scenario: &Scenario) -> Vec<String> {
    let mut queries = vec!["stats".to_owned(), "slice * *".to_owned()];
    // Every region × topo label (and the unmapped bucket), plus wildcards.
    for region in (0..=slices::REGION_NONE).filter_map(slices::region_label_of) {
        queries.push(format!("slice {region} *"));
    }
    for code in [0u8, 1, 2, 3, 5, 6, 7, 10, 11, 15] {
        let topo = slices::topo_label_of(code).expect("valid code");
        queries.push(format!("slice * {topo}"));
        queries.push(format!("slice AR° {topo}"));
    }
    // Per-link and per-AS queries over a spread of real links…
    for link in scenario.inferred_links.iter().step_by(97).take(24) {
        let (a, b) = (link.a().0, link.b().0);
        queries.push(format!("class {a} {b}"));
        queries.push(format!("cone {a}"));
        queries.push(format!("member {a} {b}"));
        queries.push(format!("member {b} {a}"));
        queries.push(format!("ascov {a}"));
    }
    // …a validated link…
    if let Some(link) = scenario.validation.labels.keys().next() {
        queries.push(format!("class {} {}", link.a().0, link.b().0));
    }
    // …and ASNs the scenario never saw.
    queries.push("cone 4199999999".to_owned());
    queries.push("member 4199999999 1".to_owned());
    queries.push("ascov 4199999999".to_owned());
    queries
}

/// Runs the serve loop over an in-memory transport and returns its full
/// output.
fn serve_transcript(initial: SnapshotSet, dir: &std::path::Path, input: &str) -> String {
    let store = Arc::new(SnapshotStore::new(initial));
    let mut server = Server::new(store, dir.to_path_buf(), config());
    let mut out = Vec::new();
    server
        .serve(Cursor::new(input.as_bytes().to_vec()), &mut out)
        .expect("in-memory transport never fails");
    String::from_utf8(out).expect("responses are UTF-8")
}

#[test]
fn warm_load_answers_every_query_kind_identically_to_cold_build() {
    let (scenario, dir) = fixture();
    let cold = SnapshotSet::from_scenario(scenario).expect("cold set");
    let warm = SnapshotSet::load(dir, &config()).expect("warm set");
    assert_eq!(warm.classifiers().len(), 4, "asrank problink toposcope gao");

    let queries = query_corpus(scenario);
    let mut interesting = 0usize;
    for q in &queries {
        let a = brevald::answer_line(&cold, q);
        let b = brevald::answer_line(&warm, q);
        assert_eq!(a, b, "cold and warm answers differ for '{q}'");
        assert!(a.starts_with("ok "), "'{q}' unexpectedly failed: {a}");
        if !a.contains("=-") && !a.ends_with("links=0 validated=0 coverage=0.000000") {
            interesting += 1;
        }
    }
    assert!(
        interesting >= queries.len() / 4,
        "too few queries hit real data ({interesting}/{}) — corpus is too synthetic",
        queries.len()
    );

    // The full serve-loop transcript is byte-identical too.
    let input = format!("{}\nquit\n", queries.join("\n"));
    let cold = SnapshotSet::from_scenario(scenario).expect("cold set");
    let warm = SnapshotSet::load(dir, &config()).expect("warm set");
    assert_eq!(
        serve_transcript(cold, dir, &input),
        serve_transcript(warm, dir, &input),
        "serve transcripts differ between warm and cold"
    );
}

#[test]
fn malformed_input_gets_err_lines_and_never_kills_the_loop() {
    let (_, dir) = fixture();
    let input = "bogus\ncone\ncone nope\nclass 5\nclass 5 5\nslice X *\n\n   \nstats\nquit\n";
    let out = serve_transcript(SnapshotSet::empty(), dir, input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 8, "6 errors + stats + bye: {out}");
    for err in &lines[..6] {
        assert!(err.starts_with("err "), "expected err line, got {err}");
    }
    assert!(
        lines[6].starts_with("ok stats "),
        "loop kept serving: {out}"
    );
    assert_eq!(lines[7], "ok bye");
}

#[test]
fn batch_answers_match_single_query_answers() {
    let (scenario, dir) = fixture();
    let warm = SnapshotSet::load(dir, &config()).expect("warm set");
    let queries = query_corpus(scenario);

    let singles: Vec<String> = queries
        .iter()
        .map(|q| brevald::answer_line(&warm, q))
        .collect();
    let batch_input = format!("batch {}\n{}\nquit\n", queries.len(), queries.join("\n"));
    let out = serve_transcript(warm, dir, &batch_input);
    let mut lines = out.lines();
    for (i, expected) in singles.iter().enumerate() {
        assert_eq!(lines.next(), Some(expected.as_str()), "batch line {i}");
    }
    assert_eq!(lines.next(), Some("ok bye"));
    assert_eq!(lines.next(), None);

    // Oversized and malformed batch headers are rejected, not honoured.
    let out = serve_transcript(
        SnapshotSet::empty(),
        dir,
        "batch 999999999\nbatch x\nquit\n",
    );
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines[0].starts_with("err batch larger"), "{out}");
    assert!(lines[1].starts_with("err batch needs"), "{out}");
}

#[test]
fn reload_swaps_in_a_new_generation_over_the_wire() {
    let (_, dir) = fixture();
    // Start from an empty generation 0; a reload warm-loads the persisted
    // snapshots and swaps them in as generation 1.
    let out = serve_transcript(
        SnapshotSet::empty(),
        dir,
        "stats\nreload\ndrain\nstats\nquit\n",
    );
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(
        lines[0], "ok stats gen=0 classifiers=0 nodes=0 links=0 validated=0",
        "{out}"
    );
    assert_eq!(lines[1], "ok reload started", "{out}");
    assert_eq!(lines[2], "ok drain gen=1", "{out}");
    assert!(
        lines[3].starts_with("ok stats gen=1 classifiers=4 "),
        "generation 1 serves the warm-loaded snapshots: {out}"
    );
    assert_eq!(lines[4], "ok bye");
}

#[test]
fn reload_failure_keeps_the_old_generation_serving() {
    let (_, dir) = fixture();
    let missing = dir.join("no_such_subdir");
    let store = Arc::new(SnapshotStore::new(SnapshotSet::empty()));
    let mut server = Server::new(Arc::clone(&store), missing, config());
    let mut out = Vec::new();
    server
        .serve(
            Cursor::new(b"reload\ndrain\nstats\nquit\n".to_vec()),
            &mut out,
        )
        .expect("transport ok");
    let out = String::from_utf8(out).expect("UTF-8");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines[0], "ok reload started", "{out}");
    assert_eq!(
        lines[1], "ok drain gen=0",
        "failed reload must not swap: {out}"
    );
    assert!(lines[2].starts_with("ok stats gen=0 "), "{out}");
}
