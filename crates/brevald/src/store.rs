//! The atomically-swapped snapshot store: lock-free readers, off-thread
//! publishers.
//!
//! # Why a slab and not a lock
//!
//! Readers on the query path must never block — not on a reloading writer,
//! not on each other. The safe-Rust way to get an atomically swappable
//! `Arc<T>` without reader locks is a **generation slab**: a fixed array of
//! [`OnceLock`] slots plus an [`AtomicUsize`] index naming the active slot.
//!
//! - A **read** is `active.load(Acquire)` followed by `OnceLock::get` on
//!   that slot — two atomic loads, no mutex, no CAS loop. `OnceLock::get`
//!   on an initialised slot is a plain acquire load; it can only block
//!   *during* initialisation, and a slot is always fully initialised
//!   *before* `active` is pointed at it.
//! - A **publish** fills the next free slot (`OnceLock::set`) and then
//!   stores its index into `active` with release ordering. In-flight
//!   readers keep the `Arc` they already cloned; new readers see the new
//!   generation. Nothing is ever mutated in place, so there are no torn
//!   reads by construction.
//!
//! Old generations stay pinned in their slots (their `Arc`s drop only when
//! the store does), which bounds the design: the slab holds
//! [`GENERATION_CAPACITY`] generations and [`SnapshotStore::publish`]
//! reports exhaustion as an error instead of wrapping. At one reload per
//! minute that is over four hours of continuous swapping — and a restart,
//! not silent reuse of live slots, is the correct response to running out.

use crate::set::SnapshotSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Maximum number of generations a store can hold over its lifetime.
pub const GENERATION_CAPACITY: usize = 256;

/// Why a new generation could not be published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishError {
    /// All [`GENERATION_CAPACITY`] slots are used; restart the server.
    CapacityExhausted,
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::CapacityExhausted => write!(
                f,
                "snapshot store generation capacity ({GENERATION_CAPACITY}) exhausted"
            ),
        }
    }
}

impl std::error::Error for PublishError {}

/// The lock-free snapshot store (see the module docs for the protocol).
pub struct SnapshotStore {
    slots: Box<[OnceLock<Arc<SnapshotSet>>]>,
    /// Index of the active slot; always initialised before being named.
    active: AtomicUsize,
    /// Number of slots claimed so far (slot 0 is the initial set).
    published: AtomicUsize,
}

impl SnapshotStore {
    /// A store whose generation 0 is `initial`.
    #[must_use]
    pub fn new(initial: SnapshotSet) -> Self {
        let slots: Box<[OnceLock<Arc<SnapshotSet>>]> =
            (0..GENERATION_CAPACITY).map(|_| OnceLock::new()).collect();
        let store = SnapshotStore {
            slots,
            active: AtomicUsize::new(0),
            published: AtomicUsize::new(1),
        };
        if let Some(slot) = store.slots.first() {
            let _ = slot.set(Arc::new(initial.with_generation(0)));
        }
        store
    }

    /// The active snapshot set. Lock-free: two atomic loads and an `Arc`
    /// bump; never blocks on a concurrent [`SnapshotStore::publish`].
    #[must_use]
    pub fn current(&self) -> Arc<SnapshotSet> {
        let idx = self.active.load(Ordering::Acquire);
        // Both lookups are infallible by protocol (`active` only ever names
        // an initialised slot); degrade to generation 0 rather than panic.
        self.slots
            .get(idx)
            .and_then(OnceLock::get)
            .or_else(|| self.slots.first().and_then(OnceLock::get))
            .map(Arc::clone)
            .unwrap_or_else(|| Arc::new(SnapshotSet::empty()))
    }

    /// Number of generations published so far (≥ 1).
    #[must_use]
    pub fn generations(&self) -> usize {
        self.published.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Publishes `set` as the next generation and atomically makes it the
    /// active one. Returns the generation number assigned. In-flight
    /// readers are never blocked: they keep the `Arc` they hold, and the
    /// swap is a single release store.
    pub fn publish(&self, set: SnapshotSet) -> Result<u64, PublishError> {
        let idx = self.published.fetch_add(1, Ordering::AcqRel);
        let Some(slot) = self.slots.get(idx) else {
            // Undo nothing: `published` saturates against the slab length
            // in `generations()`, and every later publish also fails.
            return Err(PublishError::CapacityExhausted);
        };
        let generation = idx as u64;
        let _ = slot.set(Arc::new(set.with_generation(generation)));
        self.active.store(idx, Ordering::Release);
        breval_obs::counter("brevald_reloads", 1);
        Ok(generation)
    }
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("generations", &self.generations())
            .field("capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_advances_the_active_generation() {
        let store = SnapshotStore::new(SnapshotSet::empty());
        assert_eq!(store.current().generation(), 0);
        let g = store.publish(SnapshotSet::empty()).expect("capacity left");
        assert_eq!(g, 1);
        assert_eq!(store.current().generation(), 1);
        assert_eq!(store.generations(), 2);
    }

    #[test]
    fn readers_keep_their_generation_across_a_publish() {
        let store = SnapshotStore::new(SnapshotSet::empty());
        let before = store.current();
        store.publish(SnapshotSet::empty()).expect("capacity left");
        // The old Arc is still alive and unchanged.
        assert_eq!(before.generation(), 0);
        assert_eq!(store.current().generation(), 1);
    }

    #[test]
    fn capacity_exhaustion_is_an_error_not_a_wrap() {
        let store = SnapshotStore::new(SnapshotSet::empty());
        for _ in 1..GENERATION_CAPACITY {
            store.publish(SnapshotSet::empty()).expect("capacity left");
        }
        assert!(matches!(
            store.publish(SnapshotSet::empty()),
            Err(PublishError::CapacityExhausted)
        ));
        // The store still serves the last good generation.
        assert_eq!(
            store.current().generation(),
            (GENERATION_CAPACITY - 1) as u64
        );
        assert_eq!(store.generations(), GENERATION_CAPACITY);
    }
}
