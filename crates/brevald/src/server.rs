//! The long-lived serve loop: a line protocol over any `BufRead`/`Write`
//! pair (stdin/stdout in the binary, in-memory buffers in tests).
//!
//! # Protocol
//!
//! One request per line, one response line per request, answered in order:
//!
//! ```text
//! cone <asn>                  → ok cone <asn> <name>=<cone>/<ppdc> …
//! member <asn> <asn>          → ok member <a> <m> <name>=0|1|- …
//! class <asn> <asn>           → ok class <a> <b> <name>=<rel> … val=<rel|-> vote=<rel> agree=<v>/<t>
//! ascov <asn>                 → ok ascov <asn> links=… validated=… coverage=…
//! slice <region|*> <topo|*>   → ok slice <region> <topo> links=… validated=… coverage=…
//! stats                       → ok stats gen=… classifiers=… nodes=… links=… validated=…
//! batch <n>                   → the next n lines are queries, fanned out
//!                               over the worker pool against ONE generation
//! reload                      → ok reload started (build + swap off-thread)
//! drain                       → ok drain gen=<g> (join any pending reload)
//! quit                        → ok bye (EOF works too)
//! ```
//!
//! Malformed input gets an `err <hint>` line; the loop never panics and
//! never exits on bad input. Every single query resolves the store's
//! current generation once; a batch resolves it once for the *whole*
//! batch, so a concurrent reload can never split a batch across
//! generations.

use crate::engine;
use crate::set::SnapshotSet;
use crate::store::SnapshotStore;
use breval_core::pipeline::ScenarioConfig;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Ceiling on `batch <n>` so a malformed count cannot make the loop
/// buffer unbounded input.
pub const MAX_BATCH: usize = 65_536;

/// The serve loop state: the lock-free store plus what a reload needs to
/// rebuild a generation (the snapshot directory and the scenario config).
pub struct Server {
    store: Arc<SnapshotStore>,
    dir: PathBuf,
    config: ScenarioConfig,
    pending_reload: Option<JoinHandle<()>>,
}

impl Server {
    /// A server answering from `store`, reloading from `dir` for `config`.
    #[must_use]
    pub fn new(store: Arc<SnapshotStore>, dir: PathBuf, config: ScenarioConfig) -> Self {
        Server {
            store,
            dir,
            config,
            pending_reload: None,
        }
    }

    /// The shared store (tests publish into it directly).
    #[must_use]
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Kicks off an off-thread warm reload: load every snapshot part plus
    /// the slice table from disk, then atomically publish the new
    /// generation. The serve loop (and every in-flight reader) keeps
    /// answering from the old generation until the swap lands. Errors bump
    /// `brevald_reload_errors` and leave the old generation active.
    fn start_reload(&mut self) -> Result<(), &'static str> {
        if let Some(handle) = &self.pending_reload {
            if !handle.is_finished() {
                return Err("reload already in progress");
            }
            self.join_reload();
        }
        let store = Arc::clone(&self.store);
        let dir = self.dir.clone();
        let config = self.config.clone();
        let handle = std::thread::Builder::new()
            .name("brevald-reload".into())
            .spawn(move || {
                let _span = breval_obs::span!("brevald_reload");
                match SnapshotSet::load(&dir, &config) {
                    Ok(set) => {
                        if store.publish(set).is_err() {
                            breval_obs::counter("brevald_reload_errors", 1);
                        }
                    }
                    Err(_) => breval_obs::counter("brevald_reload_errors", 1),
                }
            });
        match handle {
            Ok(handle) => {
                self.pending_reload = Some(handle);
                Ok(())
            }
            Err(_) => Err("spawning the reload thread failed"),
        }
    }

    /// Joins any pending reload thread (completed or not).
    fn join_reload(&mut self) {
        if let Some(handle) = self.pending_reload.take() {
            if handle.join().is_err() {
                breval_obs::counter("brevald_reload_errors", 1);
            }
        }
    }

    /// Runs the line protocol until EOF or `quit`. Responses go to `out`
    /// in request order; protocol errors are `err` lines, I/O errors on
    /// the transport itself end the loop.
    pub fn serve<R: BufRead, W: Write>(&mut self, input: R, mut out: W) -> std::io::Result<()> {
        let _span = breval_obs::span!("brevald_serve");
        let mut lines = input.lines();
        while let Some(line) = lines.next() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let mut words = trimmed.split_whitespace();
            match words.next() {
                Some("quit") => {
                    writeln!(out, "ok bye")?;
                    break;
                }
                Some("reload") => match self.start_reload() {
                    Ok(()) => writeln!(out, "ok reload started")?,
                    Err(msg) => writeln!(out, "err {msg}")?,
                },
                Some("drain") => {
                    self.join_reload();
                    writeln!(out, "ok drain gen={}", self.store.current().generation())?;
                }
                Some("batch") => {
                    let count = words.next().and_then(|w| w.parse::<usize>().ok());
                    match count {
                        Some(n) if n <= MAX_BATCH => {
                            let mut queries = Vec::with_capacity(n);
                            for _ in 0..n {
                                match lines.next() {
                                    Some(q) => queries.push(q?),
                                    None => break, // EOF mid-batch: answer what arrived
                                }
                            }
                            // One generation for the whole batch.
                            let set = self.store.current();
                            for reply in engine::answer_batch(&set, &queries) {
                                writeln!(out, "{reply}")?;
                            }
                        }
                        Some(_) => writeln!(out, "err batch larger than {MAX_BATCH}")?,
                        None => writeln!(out, "err batch needs a line count")?,
                    }
                }
                _ => {
                    let set = self.store.current();
                    writeln!(out, "{}", engine::answer_line(&set, trimmed))?;
                }
            }
            out.flush()?;
        }
        self.join_reload();
        out.flush()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_reload();
    }
}
