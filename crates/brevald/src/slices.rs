//! The region×topology slice table: one compact row per inferred link,
//! persisted alongside the per-classifier snapshots so a warm-started
//! server can answer coverage/bias queries without re-running the pipeline.
//!
//! The paper's coverage figures (Figs. 1–2) aggregate links by regional
//! class (`AR°`, `AF-AP`, …) and topological class (`S-TR`, `TR°`, …) and
//! divide the validated count by the link count per class. A
//! [`SliceTable`] stores exactly the inputs of that division — link
//! endpoints, region pair code, topo pair code, validated flag — in the
//! [`asgraph::io`] flat typed-array codec, and a [`SliceIndex`] derived at
//! load time answers any slice (including wildcards) and any per-AS
//! coverage lookup without allocating.
//!
//! Region pair codes are `ra * 5 + rb` over the RIR order AF, AP, AR, L, R
//! with `ra <= rb` (the same normalisation as
//! [`breval_core::classes::RegionClass::of`]); code [`REGION_NONE`] marks
//! links with an unmapped endpoint, which the paper's regional figures
//! discard. Topo pair codes are [`LinkClassifier::topo_pair_id`] codes
//! verbatim.

use asgraph::io::{ByteReader, ByteWriter, IoError};
use asgraph::{AsIndexer, Asn, Link};
use asregistry::RirRegion;
use breval_core::classes::{LinkClassifier, RegionClass};
use breval_core::pipeline::Scenario;
use breval_core::snapshot::{SnapshotError, SnapshotKey};
use std::path::{Path, PathBuf};

/// Leading magic of a slice-table file.
pub const SLICE_MAGIC: [u8; 8] = *b"BREVSLIC";
/// On-disk schema version this build writes and accepts.
pub const SLICE_VERSION: u32 = 1;
/// Region pair code for links with an unmapped (reserved/unknown) endpoint.
pub const REGION_NONE: u8 = 25;
/// Pseudo-classifier name slice tables are keyed under on disk.
pub const SLICE_KEY_NAME: &str = "slices";

const REGION_CODES: usize = 26;
const TOPO_CODES: usize = 16;
/// The ten valid topo pair codes, ascending (see `topo_pair_label`).
const VALID_TOPO: [u8; 10] = [0, 1, 2, 3, 5, 6, 7, 10, 11, 15];

/// One inferred link and its slice classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceRow {
    /// The link (normalised, `a < b`).
    pub link: Link,
    /// Region pair code (`ra * 5 + rb`, `ra <= rb`), or [`REGION_NONE`].
    pub region: u8,
    /// Topo pair code ([`LinkClassifier::topo_pair_id`]).
    pub topo: u8,
    /// Whether the cleaned validation set labels this link.
    pub validated: bool,
}

/// The position of `region` in the paper's AF, AP, AR, L, R order.
fn region_index(region: RirRegion) -> u8 {
    let mut idx = 0u8;
    for (i, r) in RirRegion::ALL.iter().enumerate() {
        if *r == region {
            idx = i as u8;
        }
    }
    idx
}

/// The region pair code of a classified link.
#[must_use]
pub fn region_code_of_class(class: Option<RegionClass>) -> u8 {
    match class {
        None => REGION_NONE,
        Some(RegionClass::Intra(r)) => region_index(r) * 5 + region_index(r),
        Some(RegionClass::Inter(a, b)) => {
            let (x, y) = (region_index(a), region_index(b));
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            lo * 5 + hi
        }
    }
}

/// The label of a region pair code (`AR°`, `AF-AP`, …), or `None` for
/// invalid codes. [`REGION_NONE`] renders as `none`.
#[must_use]
pub fn region_label_of(code: u8) -> Option<String> {
    if code == REGION_NONE {
        return Some("none".to_owned());
    }
    let (lo, hi) = (code / 5, code % 5);
    if lo > hi {
        return None;
    }
    let a = RirRegion::ALL.get(lo as usize)?;
    let b = RirRegion::ALL.get(hi as usize)?;
    Some(RegionClass::of(*a, *b).label())
}

/// Parses a region slice token (`AR°`, `AF-AP`, `none`) to its pair code.
#[must_use]
pub fn region_code_of(token: &str) -> Option<u8> {
    if token == "none" {
        return Some(REGION_NONE);
    }
    (0..REGION_NONE).find(|&code| region_label_of(code).as_deref() == Some(token))
}

/// The label of a topo pair code (`S-TR`, `TR°`, …), or `None` for codes
/// outside the valid ten. The non-panicking mirror of
/// [`LinkClassifier::topo_pair_label`].
#[must_use]
pub fn topo_label_of(code: u8) -> Option<&'static str> {
    if VALID_TOPO.contains(&code) {
        Some(LinkClassifier::topo_pair_label(code))
    } else {
        None
    }
}

/// Parses a topo slice token (`S-TR`, `TR°`, …) to its pair code.
#[must_use]
pub fn topo_code_of(token: &str) -> Option<u8> {
    VALID_TOPO
        .iter()
        .copied()
        .find(|c| LinkClassifier::topo_pair_label(*c) == token)
}

/// The persisted form: the key it was built under plus one row per
/// inferred link, in ascending link order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceTable {
    rows: Vec<SliceRow>,
}

impl SliceTable {
    /// An empty table.
    #[must_use]
    pub fn empty() -> Self {
        SliceTable { rows: Vec::new() }
    }

    /// Classifies every inferred link of a finished scenario. Rows come
    /// out in ascending link order (the `BTreeSet` iteration order), so
    /// cold-built and warm-loaded tables are byte-identical.
    #[must_use]
    pub fn from_scenario(scenario: &Scenario) -> Self {
        let rows = scenario
            .inferred_links
            .iter()
            .map(|link| SliceRow {
                link: *link,
                region: region_code_of_class(scenario.classifier.region_class(*link)),
                topo: scenario.classifier.topo_pair_id(*link),
                validated: scenario.validation.labels.contains_key(link),
            })
            .collect();
        SliceTable { rows }
    }

    /// The rows, ascending by link.
    #[must_use]
    pub fn rows(&self) -> &[SliceRow] {
        &self.rows
    }

    /// The on-disk key slice tables are stored under for `config`:
    /// the scenario's config hash and seed with the pseudo-classifier
    /// name [`SLICE_KEY_NAME`].
    #[must_use]
    pub fn key(config: &breval_core::pipeline::ScenarioConfig) -> SnapshotKey {
        SnapshotKey::of(config, SLICE_KEY_NAME)
    }

    /// Serializes the table under `key`.
    #[must_use]
    pub fn to_bytes(&self, key: &SnapshotKey) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&SLICE_MAGIC);
        w.put_u32(SLICE_VERSION);
        w.put_u64(key.config_hash);
        w.put_u64(key.seed);
        let mut flat: Vec<u32> = Vec::with_capacity(self.rows.len() * 3);
        for row in &self.rows {
            let meta = (u32::from(row.region) << 16)
                | (u32::from(row.topo) << 8)
                | u32::from(row.validated);
            flat.extend_from_slice(&[row.link.a().0, row.link.b().0, meta]);
        }
        w.put_u32_slice(&flat);
        w.into_bytes()
    }

    /// Decodes a slice-table stream, re-validating every row. Any failure
    /// is an `Err`, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<(SnapshotKey, Self), SnapshotError> {
        let mut r = ByteReader::new(bytes);
        r.expect_bytes(&SLICE_MAGIC)?;
        let version = r.take_u32()?;
        if version != SLICE_VERSION {
            return Err(IoError::BadVersion { found: version }.into());
        }
        let config_hash = r.take_u64()?;
        let seed = r.take_u64()?;
        let at = r.offset();
        let flat = r.take_u32_slice()?;
        r.finish()?;
        let invalid = |what| SnapshotError::Codec(IoError::Invalid { offset: at, what });
        if flat.len() % 3 != 0 {
            return Err(invalid("slice row array length is not a multiple of 3"));
        }
        let mut rows = Vec::with_capacity(flat.len() / 3);
        let mut prev: Option<Link> = None;
        for chunk in flat.chunks_exact(3) {
            let &[a, b, meta] = chunk else {
                continue; // chunks_exact(3) yields exactly three elements
            };
            let link = Link::new(Asn(a), Asn(b))
                .filter(|l| l.a().0 == a)
                .ok_or_else(|| invalid("slice row endpoints are not a normalised pair"))?;
            if prev.is_some_and(|p| p >= link) {
                return Err(invalid("slice rows are not in ascending link order"));
            }
            prev = Some(link);
            let region = (meta >> 16) as u8;
            let topo = ((meta >> 8) & 0xff) as u8;
            let validated = meta & 0xff;
            if meta > 0x00ff_ffff || validated > 1 {
                return Err(invalid("slice row meta word has reserved bits set"));
            }
            if region > REGION_NONE || (region < REGION_NONE && region / 5 > region % 5) {
                return Err(invalid("slice row region code is invalid"));
            }
            if !VALID_TOPO.contains(&topo) {
                return Err(invalid("slice row topo code is invalid"));
            }
            rows.push(SliceRow {
                link,
                region,
                topo,
                validated: validated == 1,
            });
        }
        Ok((
            SnapshotKey {
                config_hash,
                seed,
                name: SLICE_KEY_NAME.to_owned(),
            },
            SliceTable { rows },
        ))
    }

    /// Writes the table to `dir/<key.file_name()>`, creating `dir` if
    /// needed. Returns the path written.
    pub fn save(&self, dir: &Path, key: &SnapshotKey) -> Result<PathBuf, SnapshotError> {
        let _span = breval_obs::span!("snapshot_save");
        let bytes = self.to_bytes(key);
        std::fs::create_dir_all(dir)?;
        let path = dir.join(key.file_name());
        std::fs::write(&path, &bytes)?;
        breval_obs::counter("snapshot_bytes_written", bytes.len() as u64);
        Ok(path)
    }

    /// Loads the table stored for `key` under `dir`, verifying the file's
    /// embedded key. A key mismatch is a distinguishable error and bumps
    /// the `snapshot_key_mismatch` counter, exactly like snapshot loads.
    pub fn load(dir: &Path, key: &SnapshotKey) -> Result<Self, SnapshotError> {
        let _span = breval_obs::span!("snapshot_load");
        let bytes = std::fs::read(dir.join(key.file_name()))?;
        let (found, table) = SliceTable::from_bytes(&bytes)?;
        if &found != key {
            breval_obs::counter("snapshot_key_mismatch", 1);
            return Err(SnapshotError::KeyMismatch {
                expected: key.clone(),
                found,
            });
        }
        Ok(table)
    }
}

/// Query-ready aggregates derived from a [`SliceTable`]: per-cell link and
/// validated counts over region code × topo code, plus per-AS incident
/// link/validated counts. Built once per generation; every lookup after
/// that is allocation-free.
#[derive(Debug, Clone)]
pub struct SliceIndex {
    links: [[u64; TOPO_CODES]; REGION_CODES],
    validated: [[u64; TOPO_CODES]; REGION_CODES],
    total_links: u64,
    total_validated: u64,
    per_as: AsIndexer,
    as_links: Vec<u32>,
    as_validated: Vec<u32>,
}

impl SliceIndex {
    /// Aggregates `table` into cell and per-AS counts.
    #[must_use]
    pub fn build(table: &SliceTable) -> Self {
        let mut links = [[0u64; TOPO_CODES]; REGION_CODES];
        let mut validated = [[0u64; TOPO_CODES]; REGION_CODES];
        let mut endpoints: Vec<Asn> = Vec::with_capacity(table.rows.len() * 2);
        for row in &table.rows {
            endpoints.push(row.link.a());
            endpoints.push(row.link.b());
        }
        let per_as = AsIndexer::from_unsorted(endpoints);
        let mut as_links = vec![0u32; per_as.len()];
        let mut as_validated = vec![0u32; per_as.len()];
        let mut total_links = 0u64;
        let mut total_validated = 0u64;
        for row in &table.rows {
            let (r, t) = (row.region as usize, row.topo as usize);
            if r < REGION_CODES && t < TOPO_CODES {
                links[r][t] += 1;
                if row.validated {
                    validated[r][t] += 1;
                }
            }
            total_links += 1;
            total_validated += u64::from(row.validated);
            for asn in [row.link.a(), row.link.b()] {
                if let Some(id) = per_as.id(asn) {
                    as_links[id as usize] += 1;
                    as_validated[id as usize] += u64::from(row.validated) as u32;
                }
            }
        }
        SliceIndex {
            links,
            validated,
            total_links,
            total_validated,
            per_as,
            as_links,
            as_validated,
        }
    }

    /// Link and validated counts for a region×topology slice; `None` on
    /// either axis is a wildcard. Allocation-free (fixed-cell scan).
    #[must_use]
    pub fn slice_counts(&self, region: Option<u8>, topo: Option<u8>) -> (u64, u64) {
        let mut links = 0u64;
        let mut validated = 0u64;
        let mut r = 0usize;
        while r < REGION_CODES {
            let mut t = 0usize;
            while t < TOPO_CODES {
                let take = region.is_none_or(|want| want as usize == r)
                    && topo.is_none_or(|want| want as usize == t);
                if take {
                    links += self.links[r][t];
                    validated += self.validated[r][t];
                }
                t += 1;
            }
            r += 1;
        }
        (links, validated)
    }

    /// Incident link and validated counts for one AS (0, 0 if the AS is on
    /// no inferred link). Allocation-free (binary search + two reads).
    #[must_use]
    pub fn as_counts(&self, asn: Asn) -> (u32, u32) {
        match self.per_as.id(asn) {
            Some(id) => (self.as_links[id as usize], self.as_validated[id as usize]),
            None => (0, 0),
        }
    }

    /// Total inferred links in the table.
    #[must_use]
    pub fn total_links(&self) -> u64 {
        self.total_links
    }

    /// Total validated links in the table.
    #[must_use]
    pub fn total_validated(&self) -> u64 {
        self.total_validated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).expect("distinct test endpoints")
    }

    fn sample() -> SliceTable {
        SliceTable {
            rows: vec![
                SliceRow {
                    link: l(1, 2),
                    region: 12, // AR°
                    topo: 7,    // S-TR
                    validated: true,
                },
                SliceRow {
                    link: l(1, 3),
                    region: 12,
                    topo: 15, // TR°
                    validated: false,
                },
                SliceRow {
                    link: l(2, 3),
                    region: REGION_NONE,
                    topo: 15,
                    validated: true,
                },
            ],
        }
    }

    fn key() -> SnapshotKey {
        SnapshotKey {
            config_hash: 0x1234,
            seed: 9,
            name: SLICE_KEY_NAME.to_owned(),
        }
    }

    #[test]
    fn region_codes_round_trip_through_labels() {
        for code in 0..REGION_NONE {
            if code / 5 > code % 5 {
                continue; // non-normalised pair, never emitted
            }
            let label = region_label_of(code).expect("valid code has a label");
            assert_eq!(region_code_of(&label), Some(code), "label {label}");
        }
        assert_eq!(region_code_of("none"), Some(REGION_NONE));
        assert_eq!(region_code_of("XX"), None);
    }

    #[test]
    fn topo_codes_round_trip_through_labels() {
        for code in VALID_TOPO {
            let label = topo_label_of(code).expect("valid code has a label");
            assert_eq!(topo_code_of(label), Some(code), "label {label}");
        }
        assert_eq!(topo_label_of(4), None);
        assert_eq!(topo_code_of("bogus"), None);
    }

    #[test]
    fn slice_table_round_trips() {
        let table = sample();
        let bytes = table.to_bytes(&key());
        let (found, loaded) = SliceTable::from_bytes(&bytes).expect("round trip");
        assert_eq!(found, key());
        assert_eq!(loaded, table);
        assert_eq!(loaded.to_bytes(&key()), bytes);
    }

    #[test]
    fn corrupt_slice_tables_error_not_panic() {
        let bytes = sample().to_bytes(&key());
        for cut in 0..bytes.len() {
            assert!(SliceTable::from_bytes(&bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(SliceTable::from_bytes(&bad).is_err());
        // An out-of-range topo code in the first row is rejected.
        let mut bad = bytes.clone();
        let meta_at = bytes.len() - 4; // last row's meta word
        bad[meta_at + 1] = 4; // topo = 4: not a valid pair code
        assert!(SliceTable::from_bytes(&bad).is_err());
    }

    #[test]
    fn index_answers_slices_and_per_as() {
        let idx = SliceIndex::build(&sample());
        assert_eq!(idx.slice_counts(None, None), (3, 2));
        assert_eq!(idx.slice_counts(Some(12), None), (2, 1));
        assert_eq!(idx.slice_counts(None, Some(15)), (2, 1));
        assert_eq!(idx.slice_counts(Some(12), Some(7)), (1, 1));
        assert_eq!(idx.slice_counts(Some(0), Some(7)), (0, 0));
        assert_eq!(idx.as_counts(Asn(1)), (2, 1));
        assert_eq!(idx.as_counts(Asn(3)), (2, 1));
        assert_eq!(idx.as_counts(Asn(99)), (0, 0));
    }
}
