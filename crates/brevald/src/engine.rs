//! Query parsing, the allocation-free evaluation kernel, and response
//! formatting.
//!
//! The pipeline is split in three so the hot middle stays clean:
//!
//! 1. [`parse`] turns a request line into a `Copy` [`Query`] (allocates
//!    nothing but may reject),
//! 2. [`eval`] — the registered deepcheck hot kernel — answers it against
//!    one immutable [`SnapshotSet`] into a fixed-size `Copy` [`Reply`]
//!    (binary searches, bitset probes, and fixed-cell scans only; no
//!    allocation, no locks, no panics),
//! 3. [`format_reply`] renders the reply as one deterministic response
//!    line (allocates the `String`, outside the kernel).
//!
//! Every reply is a pure function of (generation, query), so two reads of
//! the same generation are byte-identical — the property the concurrent
//! reload tests pin down.

use crate::set::{SnapshotSet, MAX_CLASSIFIERS};
use crate::slices;
use asgraph::{Asn, ConeSizes, CsrGraph, Link, PpdcCones, Rel};
use std::fmt::Write as _;

/// A parsed query. `Copy` so batches can fan out without cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Customer-cone and PPDC-cone size of one AS, per classifier.
    Cone(Asn),
    /// Is `member` in the PPDC cone of the first AS? Per classifier.
    Member(Asn, Asn),
    /// Inferred relationship of a link per classifier, the validation
    /// label if the link is validated, and the cross-classifier vote.
    Class(Link),
    /// Per-AS validation coverage (incident links, validated links).
    AsCov(Asn),
    /// Region×topology slice coverage; `None` is a wildcard axis.
    Slice(Option<u8>, Option<u8>),
    /// Generation and corpus counters.
    Stats,
}

impl Query {
    /// The query-kind label used for per-kind observability counters and
    /// the qpsbench latency histograms.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Cone(_) => "cone",
            Query::Member(_, _) => "member",
            Query::Class(_) => "class",
            Query::AsCov(_) => "ascov",
            Query::Slice(_, _) => "slice",
            Query::Stats => "stats",
        }
    }
}

/// Every query kind, in grammar order (used by qpsbench's mix table).
pub const QUERY_KINDS: [&str; 6] = ["cone", "member", "class", "ascov", "slice", "stats"];

/// Parses one request line. Errors are static grammar hints, never panics.
pub fn parse(line: &str) -> Result<Query, &'static str> {
    let mut it = line.split_whitespace();
    let cmd = it.next().ok_or("empty query")?;
    let query = match cmd {
        "cone" => Query::Cone(parse_asn(it.next())?),
        "member" => Query::Member(parse_asn(it.next())?, parse_asn(it.next())?),
        "class" => {
            let (a, b) = (parse_asn(it.next())?, parse_asn(it.next())?);
            Query::Class(Link::new(a, b).ok_or("class needs two distinct routable ASNs")?)
        }
        "ascov" => Query::AsCov(parse_asn(it.next())?),
        "slice" => {
            let region = parse_axis(it.next(), slices::region_code_of, "unknown region class")?;
            let topo = parse_axis(it.next(), slices::topo_code_of, "unknown topology class")?;
            Query::Slice(region, topo)
        }
        "stats" => Query::Stats,
        _ => return Err("unknown query (try: cone member class ascov slice stats)"),
    };
    if it.next().is_some() {
        return Err("trailing arguments");
    }
    Ok(query)
}

fn parse_asn(tok: Option<&str>) -> Result<Asn, &'static str> {
    tok.ok_or("missing ASN argument")?
        .parse::<u32>()
        .map(Asn)
        .map_err(|_| "ASN is not a u32")
}

fn parse_axis(
    tok: Option<&str>,
    code_of: impl Fn(&str) -> Option<u8>,
    err: &'static str,
) -> Result<Option<u8>, &'static str> {
    let tok = tok.ok_or("missing slice axis (class label or *)")?;
    if tok == "*" {
        return Ok(None);
    }
    code_of(tok).map(Some).ok_or(err)
}

/// Per-classifier cone entry: `None` size means the AS is unknown to that
/// view (not interned / never path-observed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConeEntry {
    /// Customer-cone size over the inferred graph.
    pub cone: Option<u64>,
    /// PPDC (provider/peer observed) cone size.
    pub ppdc: Option<u64>,
}

/// The winning relationship of a cross-classifier vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// The relationship with the most exact-equality votes (ties break to
    /// the earliest classifier in serving order).
    pub rel: Rel,
    /// Classifiers voting for `rel`.
    pub votes: u8,
    /// Classifiers that know the link at all.
    pub total: u8,
}

/// A fixed-size, `Copy` answer (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reply {
    /// Answer to [`Query::Cone`].
    Cone {
        /// The queried AS.
        asn: Asn,
        /// One entry per classifier in serving order.
        per: [Option<ConeEntry>; MAX_CLASSIFIERS],
    },
    /// Answer to [`Query::Member`].
    Member {
        /// The cone owner.
        asn: Asn,
        /// The candidate member.
        member: Asn,
        /// Membership per classifier; `None` = owner not observed there.
        per: [Option<bool>; MAX_CLASSIFIERS],
    },
    /// Answer to [`Query::Class`].
    Class {
        /// The queried link.
        link: Link,
        /// Inferred relationship per classifier (`None` = link unknown).
        per: [Option<Option<Rel>>; MAX_CLASSIFIERS],
        /// The cleaned validation label, if this link is validated.
        validation: Option<Rel>,
        /// The cross-classifier disagreement vote.
        vote: Option<Vote>,
    },
    /// Answer to [`Query::AsCov`].
    AsCov {
        /// The queried AS.
        asn: Asn,
        /// Inferred links incident to it.
        links: u32,
        /// Validated links incident to it.
        validated: u32,
    },
    /// Answer to [`Query::Slice`].
    Slice {
        /// Region axis (code), `None` = wildcard.
        region: Option<u8>,
        /// Topology axis (code), `None` = wildcard.
        topo: Option<u8>,
        /// Inferred links in the slice.
        links: u64,
        /// Validated links in the slice.
        validated: u64,
    },
    /// Answer to [`Query::Stats`].
    Stats {
        /// The generation this reply was computed against.
        generation: u64,
        /// Classifiers in the set.
        classifiers: u8,
        /// Node count of the first classifier's graph.
        nodes: u64,
        /// Total inferred links in the slice table.
        links: u64,
        /// Total validated links in the slice table.
        validated: u64,
    },
}

/// The inferred relationship between two ASes in one CSR view, or `None`
/// if they share no link there. Binary searches over the sorted role
/// segments; allocation-free.
#[must_use]
pub fn rel_between(csr: &CsrGraph, a: Asn, b: Asn) -> Option<Rel> {
    let ia = CsrGraph::indexer(csr).id(a)?;
    let ib = CsrGraph::indexer(csr).id(b)?;
    if CsrGraph::providers(csr, ia).binary_search(&ib).is_ok() {
        return Some(Rel::P2c { provider: b });
    }
    if CsrGraph::customers(csr, ia).binary_search(&ib).is_ok() {
        return Some(Rel::P2c { provider: a });
    }
    if CsrGraph::peers(csr, ia).binary_search(&ib).is_ok() {
        return Some(Rel::P2p);
    }
    if CsrGraph::siblings(csr, ia).binary_search(&ib).is_ok() {
        return Some(Rel::S2s);
    }
    None
}

/// The validation label of `link` in a scored join (ascending by link).
fn scored_validation(scored: &[breval_core::metrics::ScoredLink], link: Link) -> Option<Rel> {
    scored
        .binary_search_by(|s| s.link.cmp(&link))
        .ok()
        .and_then(|i| scored.get(i))
        .map(|s| s.validation)
}

/// Evaluates one query against one immutable generation. This is the
/// registered deepcheck hot kernel: no allocation, no locks, no panics —
/// a pure function of (generation, query), so replies within a generation
/// are byte-identical regardless of thread interleaving.
#[must_use]
pub fn eval(set: &SnapshotSet, query: Query) -> Reply {
    let views = set.classifiers();
    match query {
        Query::Cone(asn) => {
            let mut per: [Option<ConeEntry>; MAX_CLASSIFIERS] = [None; MAX_CLASSIFIERS];
            for (slot, view) in per.iter_mut().zip(views) {
                *slot = Some(ConeEntry {
                    cone: ConeSizes::get(&view.cones, asn).map(|s| s as u64),
                    ppdc: PpdcCones::size(&view.ppdc, asn).map(|s| s as u64),
                });
            }
            Reply::Cone { asn, per }
        }
        Query::Member(asn, member) => {
            let mut per: [Option<bool>; MAX_CLASSIFIERS] = [None; MAX_CLASSIFIERS];
            for (slot, view) in per.iter_mut().zip(views) {
                *slot = PpdcCones::contains(&view.ppdc, asn, member);
            }
            Reply::Member { asn, member, per }
        }
        Query::Class(link) => {
            let mut per: [Option<Option<Rel>>; MAX_CLASSIFIERS] = [None; MAX_CLASSIFIERS];
            let mut validation: Option<Rel> = None;
            for (slot, view) in per.iter_mut().zip(views) {
                *slot = Some(rel_between(&view.csr, link.a(), link.b()));
                if validation.is_none() {
                    validation = scored_validation(&view.scored, link);
                }
            }
            let vote = tally_vote(&per);
            Reply::Class {
                link,
                per,
                validation,
                vote,
            }
        }
        Query::AsCov(asn) => {
            let (links, validated) = set.slice_index().as_counts(asn);
            Reply::AsCov {
                asn,
                links,
                validated,
            }
        }
        Query::Slice(region, topo) => {
            let (links, validated) = set.slice_index().slice_counts(region, topo);
            Reply::Slice {
                region,
                topo,
                links,
                validated,
            }
        }
        Query::Stats => Reply::Stats {
            generation: set.generation(),
            classifiers: views.len() as u8,
            nodes: views
                .first()
                .map_or(0, |v| CsrGraph::node_count(&v.csr) as u64),
            links: set.slice_index().total_links(),
            validated: set.slice_index().total_validated(),
        },
    }
}

/// Majority vote over the per-classifier relationships (exact equality,
/// provider included). Ties break to the earliest classifier.
fn tally_vote(per: &[Option<Option<Rel>>; MAX_CLASSIFIERS]) -> Option<Vote> {
    let mut best: Option<Vote> = None;
    let mut total = 0u8;
    for entry in per.iter() {
        if let Some(Some(_)) = entry {
            total += 1;
        }
    }
    for entry in per.iter() {
        let Some(Some(candidate)) = entry else {
            continue;
        };
        let mut votes = 0u8;
        for other in per.iter() {
            if let Some(Some(r)) = other {
                if r == candidate {
                    votes += 1;
                }
            }
        }
        let better = match best {
            None => true,
            Some(b) => votes > b.votes,
        };
        if better {
            best = Some(Vote {
                rel: *candidate,
                votes,
                total,
            });
        }
    }
    best
}

fn fmt_rel(out: &mut String, rel: Option<Rel>) {
    match rel {
        None => out.push('-'),
        Some(Rel::P2p) => out.push_str("p2p"),
        Some(Rel::S2s) => out.push_str("s2s"),
        Some(Rel::P2c { provider }) => {
            let _ = write!(out, "p2c:{}", provider.0);
        }
    }
}

fn fmt_coverage(out: &mut String, links: u64, validated: u64) {
    let coverage = if links == 0 {
        0.0
    } else {
        validated as f64 / links as f64
    };
    let _ = write!(
        out,
        "links={links} validated={validated} coverage={coverage:.6}"
    );
}

/// Renders a reply as its single deterministic response line.
#[must_use]
pub fn format_reply(set: &SnapshotSet, reply: &Reply) -> String {
    let views = set.classifiers();
    let mut out = String::from("ok ");
    match reply {
        Reply::Cone { asn, per } => {
            let _ = write!(out, "cone {}", asn.0);
            for (view, entry) in views.iter().zip(per.iter()) {
                let Some(entry) = entry else { continue };
                let _ = write!(out, " {}=", view.name);
                match entry.cone {
                    Some(c) => {
                        let _ = write!(out, "{c}");
                    }
                    None => out.push('-'),
                }
                out.push('/');
                match entry.ppdc {
                    Some(p) => {
                        let _ = write!(out, "{p}");
                    }
                    None => out.push('-'),
                }
            }
        }
        Reply::Member { asn, member, per } => {
            let _ = write!(out, "member {} {}", asn.0, member.0);
            for (view, entry) in views.iter().zip(per.iter()) {
                let _ = write!(out, " {}=", view.name);
                match entry {
                    Some(true) => out.push('1'),
                    Some(false) => out.push('0'),
                    None => out.push('-'),
                }
            }
        }
        Reply::Class {
            link,
            per,
            validation,
            vote,
        } => {
            let _ = write!(out, "class {} {}", link.a().0, link.b().0);
            for (view, entry) in views.iter().zip(per.iter()) {
                let Some(rel) = entry else { continue };
                let _ = write!(out, " {}=", view.name);
                fmt_rel(&mut out, *rel);
            }
            out.push_str(" val=");
            fmt_rel(&mut out, *validation);
            out.push_str(" vote=");
            match vote {
                None => out.push('-'),
                Some(v) => {
                    fmt_rel(&mut out, Some(v.rel));
                    let _ = write!(out, " agree={}/{}", v.votes, v.total);
                }
            }
        }
        Reply::AsCov {
            asn,
            links,
            validated,
        } => {
            let _ = write!(out, "ascov {} ", asn.0);
            fmt_coverage(&mut out, u64::from(*links), u64::from(*validated));
        }
        Reply::Slice {
            region,
            topo,
            links,
            validated,
        } => {
            out.push_str("slice ");
            match region.and_then(slices::region_label_of) {
                Some(label) => out.push_str(&label),
                None => out.push('*'),
            }
            out.push(' ');
            match topo.and_then(slices::topo_label_of) {
                Some(label) => out.push_str(label),
                None => out.push('*'),
            }
            out.push(' ');
            fmt_coverage(&mut out, *links, *validated);
        }
        Reply::Stats {
            generation,
            classifiers,
            nodes,
            links,
            validated,
        } => {
            let _ = write!(
                out,
                "stats gen={generation} classifiers={classifiers} nodes={nodes} links={links} validated={validated}"
            );
        }
    }
    out
}

/// Bumps the per-kind query counter (all six labels are registered).
fn count_query(kind: &'static str) {
    match kind {
        "cone" => breval_obs::counter("brevald_queries_cone", 1),
        "member" => breval_obs::counter("brevald_queries_member", 1),
        "class" => breval_obs::counter("brevald_queries_class", 1),
        "ascov" => breval_obs::counter("brevald_queries_ascov", 1),
        "slice" => breval_obs::counter("brevald_queries_slice", 1),
        _ => breval_obs::counter("brevald_queries_stats", 1),
    }
}

/// Parses, evaluates, and formats one request line against one
/// generation. Malformed queries come back as `err …` lines.
#[must_use]
pub fn answer_line(set: &SnapshotSet, line: &str) -> String {
    match parse(line) {
        Ok(query) => {
            count_query(query.kind());
            format_reply(set, &eval(set, query))
        }
        Err(msg) => {
            breval_obs::counter("brevald_queries_malformed", 1);
            let mut out = String::from("err ");
            out.push_str(msg);
            out
        }
    }
}

/// Answers a batch of request lines against **one** generation, fanning
/// out over the persistent worker pool. The whole batch sees the same
/// immutable set, so a concurrent reload never splits a batch across
/// generations; responses come back in request order at any thread cap.
#[must_use]
pub fn answer_batch<S: AsRef<str> + Sync>(set: &SnapshotSet, lines: &[S]) -> Vec<String> {
    let _span = breval_obs::span!("brevald_batch");
    breval_par::parallel_map(lines.len(), |i| match lines.get(i) {
        Some(line) => answer_line(set, line.as_ref()),
        None => String::from("err missing batch line"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("").is_err());
        assert!(parse("bogus 1").is_err());
        assert!(parse("cone").is_err());
        assert!(parse("cone notanumber").is_err());
        assert!(parse("cone 1 2").is_err());
        assert!(parse("class 5 5").is_err());
        assert!(parse("slice NOPE *").is_err());
        assert!(parse("slice * NOPE").is_err());
    }

    #[test]
    fn parse_accepts_the_grammar() {
        assert_eq!(parse("cone 65001"), Ok(Query::Cone(Asn(65001))));
        assert_eq!(parse("member 1 2"), Ok(Query::Member(Asn(1), Asn(2))));
        assert_eq!(
            parse("class 7 3"),
            Ok(Query::Class(
                Link::new(Asn(7), Asn(3)).expect("distinct ASNs")
            ))
        );
        assert_eq!(parse("ascov 9"), Ok(Query::AsCov(Asn(9))));
        assert_eq!(parse("slice * *"), Ok(Query::Slice(None, None)));
        assert_eq!(parse("slice AR° TR°"), Ok(Query::Slice(Some(12), Some(15))));
        assert_eq!(parse("stats"), Ok(Query::Stats));
    }

    #[test]
    fn empty_set_answers_every_kind_without_panicking() {
        let set = SnapshotSet::empty();
        for line in [
            "cone 1",
            "member 1 2",
            "class 1 2",
            "ascov 1",
            "slice * *",
            "slice AR° S-TR",
            "stats",
        ] {
            let reply = answer_line(&set, line);
            assert!(reply.starts_with("ok "), "{line} -> {reply}");
        }
        assert_eq!(
            answer_line(&set, "stats"),
            "ok stats gen=0 classifiers=0 nodes=0 links=0 validated=0"
        );
    }

    #[test]
    fn batch_preserves_request_order() {
        let set = SnapshotSet::empty();
        let lines: Vec<String> = (0..40).map(|i| format!("ascov {i}")).collect();
        let replies = answer_batch(&set, &lines);
        assert_eq!(replies.len(), 40);
        for (i, reply) in replies.iter().enumerate() {
            assert!(
                reply.starts_with(&format!("ok ascov {i} ")),
                "reply {i} = {reply}"
            );
        }
    }
}
