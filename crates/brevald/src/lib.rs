//! # brevald — lock-free snapshot query server
//!
//! A long-lived server loop answering per-AS and per-link queries against
//! immutable scenario snapshots:
//!
//! * **cone** size and **member**ship (customer cone and PPDC cone, per
//!   classifier),
//! * inferred **class** per classifier plus the cross-classifier
//!   disagreement vote and the validation label,
//! * validation coverage per AS (**ascov**) and per region×topology
//!   **slice** — the bias axes of the source paper.
//!
//! The serving core is three layers, each its own module:
//!
//! * [`set`] — one query-ready generation: every classifier's snapshot
//!   resolved into direct `Arc`s ([`set::ClassifierView`]) plus the
//!   region×topology [`slices::SliceIndex`]. Incomplete snapshots are an
//!   explicit error, never silently-empty answers.
//! * [`store`] — the atomically-swapped generation slab: lock-free
//!   readers ([`store::SnapshotStore::current`] is two atomic loads), a
//!   single release-store publish, no `unsafe`.
//! * [`engine`] — parse → allocation-free eval kernel → format. Replies
//!   are a pure function of (generation, query), so responses within a
//!   generation are byte-identical at any thread count; batches fan out
//!   over `breval_par`'s persistent pool.
//!
//! [`server::Server`] ties them together over any `BufRead`/`Write` pair;
//! the `brevald` binary wires it to stdin/stdout with warm start from the
//! binary snapshot format and off-thread `reload`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod server;
pub mod set;
pub mod slices;
pub mod store;

pub use engine::{answer_batch, answer_line, eval, parse, Query, Reply};
pub use server::Server;
pub use set::{ClassifierView, SnapshotSet, MAX_CLASSIFIERS};
pub use slices::{SliceIndex, SliceTable};
pub use store::{PublishError, SnapshotStore, GENERATION_CAPACITY};
