//! `brevald` — the long-lived snapshot query server.
//!
//! ```text
//! brevald [--seed N] [--dir PATH] [--cold]
//! ```
//!
//! Startup warm-loads every classifier snapshot plus the slice table from
//! `--dir` (written by a previous run or by `Scenario::save_snapshot`).
//! If the warm load fails — first run, stale key, corrupt file — the
//! server cold-builds the scenario, persists it to `--dir` so the *next*
//! start is warm, and serves from the fresh build. `--cold` forces that
//! path. Queries arrive on stdin, one per line; responses leave on stdout
//! (see `brevald::server` for the grammar). Diagnostics go to stderr.

#![forbid(unsafe_code)]

use breval_core::pipeline::{Scenario, ScenarioConfig};
use brevald::server::Server;
use brevald::set::SnapshotSet;
use brevald::store::SnapshotStore;
use std::path::PathBuf;
use std::sync::Arc;

/// Aborts with a labelled error instead of panicking (the server binary
/// is a deepcheck entry point, so its failure path must be panic-free).
fn die(msg: std::fmt::Arguments<'_>) -> ! {
    eprintln!("brevald: {msg}");
    std::process::exit(1);
}

struct Options {
    seed: u64,
    dir: PathBuf,
    cold: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        seed: 42,
        dir: std::env::temp_dir().join("brevald-snapshots"),
        cold: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die(format_args!("--seed needs a u64")));
            }
            "--dir" => {
                options.dir = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die(format_args!("--dir needs a path")));
            }
            "--cold" => options.cold = true,
            "--help" | "-h" => {
                eprintln!("usage: brevald [--seed N] [--dir PATH] [--cold]");
                std::process::exit(0);
            }
            other => die(format_args!("unknown argument '{other}' (try --help)")),
        }
    }
    options
}

fn main() {
    let options = parse_args();
    let config = ScenarioConfig::small(options.seed);

    let warm = if options.cold {
        None
    } else {
        SnapshotSet::load(&options.dir, &config).ok()
    };
    let initial = match warm {
        Some(set) => {
            eprintln!(
                "brevald: warm start from {} (seed {})",
                options.dir.display(),
                options.seed
            );
            set
        }
        None => {
            eprintln!(
                "brevald: cold build (seed {}), persisting to {}…",
                options.seed,
                options.dir.display()
            );
            let scenario = Scenario::run(config.clone());
            match SnapshotSet::save_all(&scenario, &options.dir) {
                Ok(written) => eprintln!("brevald: wrote {written} snapshot files"),
                Err(e) => eprintln!("brevald: persisting snapshots failed: {e} (serving anyway)"),
            }
            SnapshotSet::from_scenario(&scenario)
                .unwrap_or_else(|e| die(format_args!("building the query set failed: {e}")))
        }
    };

    let store = Arc::new(SnapshotStore::new(initial));
    let mut server = Server::new(store, options.dir, config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = server.serve(stdin.lock(), stdout.lock()) {
        die(format_args!("transport error: {e}"));
    }
}
