//! One query-ready generation: every classifier's fully-materialised
//! snapshot plus the region×topology slice index, resolved into direct
//! `Arc`s so the hot query path never touches a `OnceLock` accessor.
//!
//! A [`SnapshotSet`] is immutable after construction — building one (from
//! a finished [`Scenario`] or by warm-loading the PR 8 binary format) is
//! the *only* place parts are resolved, and a snapshot missing any part is
//! an explicit [`SnapshotError::Incomplete`] instead of a silently empty
//! answer table.

use crate::slices::{SliceIndex, SliceTable};
use asgraph::{ConeSizes, CsrGraph, PpdcCones};
use breval_core::metrics::ScoredLink;
use breval_core::pipeline::{Scenario, ScenarioConfig};
use breval_core::snapshot::{ScenarioSnapshot, SnapshotError, SnapshotKey};
use std::path::Path;
use std::sync::Arc;

/// Upper bound on classifiers a set can hold (fixed-size answer arrays on
/// the allocation-free query path are dimensioned by this).
pub const MAX_CLASSIFIERS: usize = 8;

/// One classifier's snapshot with every part resolved.
#[derive(Debug, Clone)]
pub struct ClassifierView {
    /// The classifier name (`"asrank"`, …).
    pub name: String,
    /// CSR mirror of the inferred relationship graph.
    pub csr: Arc<CsrGraph>,
    /// Customer-cone sizes over the inferred graph.
    pub cones: Arc<ConeSizes>,
    /// PPDC bitset cones.
    pub ppdc: Arc<PpdcCones>,
    /// PPDC cone sizes (popcounts).
    pub ppdc_sizes: Arc<ConeSizes>,
    /// Validation ⋈ inference join, ascending by link.
    pub scored: Arc<Vec<ScoredLink>>,
}

impl ClassifierView {
    /// Resolves every part of `snap`, or reports which part is missing.
    /// Warm-loaded snapshots always pass (the codec materialises all
    /// parts); lazily-built ones must have been forced first.
    ///
    /// The accessors are written in `Type::method(..)` form: short names
    /// like `scored` collide with `Scenario`'s lock-taking accessors under
    /// xtask's name-based call resolution, and this function sits on the
    /// warm-load path that the L010/L011 flow rules walk.
    pub fn resolve(snap: &ScenarioSnapshot) -> Result<Self, SnapshotError> {
        let missing = |part| SnapshotError::Incomplete {
            name: ScenarioSnapshot::name(snap).to_owned(),
            part,
        };
        Ok(ClassifierView {
            name: ScenarioSnapshot::name(snap).to_owned(),
            csr: ScenarioSnapshot::csr(snap).ok_or_else(|| missing("csr"))?,
            cones: ScenarioSnapshot::cone_sizes(snap).ok_or_else(|| missing("cone_sizes"))?,
            ppdc: ScenarioSnapshot::ppdc_cones(snap).ok_or_else(|| missing("ppdc_cones"))?,
            ppdc_sizes: ScenarioSnapshot::ppdc_sizes(snap).ok_or_else(|| missing("ppdc_sizes"))?,
            scored: ScenarioSnapshot::scored(snap).ok_or_else(|| missing("scored"))?,
        })
    }
}

/// The classifier names a scenario config materialises, in serving order.
#[must_use]
pub fn classifier_names(config: &ScenarioConfig) -> Vec<&'static str> {
    let mut names = vec!["asrank", "problink", "toposcope"];
    if config.include_gao {
        names.push("gao");
    }
    names
}

/// An immutable query-ready generation (see the module docs).
#[derive(Debug, Clone)]
pub struct SnapshotSet {
    generation: u64,
    classifiers: Vec<ClassifierView>,
    slice_index: Arc<SliceIndex>,
}

impl SnapshotSet {
    /// A set with no classifiers and an empty slice table — the stand-in
    /// the store degrades to if its invariants are ever violated.
    #[must_use]
    pub fn empty() -> Self {
        SnapshotSet {
            generation: 0,
            classifiers: Vec::new(),
            slice_index: Arc::new(SliceIndex::build(&SliceTable::empty())),
        }
    }

    /// Assembles a set from resolved parts.
    #[must_use]
    pub fn new(classifiers: Vec<ClassifierView>, slices: &SliceTable) -> Self {
        let mut classifiers = classifiers;
        classifiers.truncate(MAX_CLASSIFIERS);
        SnapshotSet {
            generation: 0,
            classifiers,
            slice_index: Arc::new(SliceIndex::build(slices)),
        }
    }

    /// The same set renumbered to `generation` (used by the store on
    /// publish; generations are assigned by slot, not by builder).
    #[must_use]
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The generation number the store assigned this set.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The classifier views, in serving order.
    #[must_use]
    pub fn classifiers(&self) -> &[ClassifierView] {
        &self.classifiers
    }

    /// The slice index of this generation.
    #[must_use]
    pub fn slice_index(&self) -> &SliceIndex {
        &self.slice_index
    }

    /// Builds a set from a finished scenario: forces every snapshot part
    /// for every classifier and derives the slice table from the
    /// scenario's own link/validation state.
    pub fn from_scenario(scenario: &Scenario) -> Result<Self, SnapshotError> {
        let mut views = Vec::new();
        for name in classifier_names(&scenario.config) {
            // Force the lazy parts, then resolve the snapshot whole.
            let _ = scenario.cone_sizes_arc(name); // also forces the CSR
            let _ = scenario.ppdc_sizes_arc(name); // also forces the cones
            let _ = scenario.scored_arc(name);
            views.push(ClassifierView::resolve(&scenario.snapshot_arc(name))?);
        }
        let slices = SliceTable::from_scenario(scenario);
        Ok(SnapshotSet::new(views, &slices))
    }

    /// Warm-loads a set from the PR 8 binary snapshots plus the slice
    /// table persisted under `dir` for `config`. Every part arrives
    /// materialised; key mismatches and missing files surface as errors.
    pub fn load(dir: &Path, config: &ScenarioConfig) -> Result<Self, SnapshotError> {
        let mut views = Vec::new();
        for name in classifier_names(config) {
            let snap = ScenarioSnapshot::load(dir, &SnapshotKey::of(config, name))?;
            views.push(ClassifierView::resolve(&snap)?);
        }
        let slices = SliceTable::load(dir, &SliceTable::key(config))?;
        Ok(SnapshotSet::new(views, &slices))
    }

    /// Persists everything a warm start needs: each classifier's snapshot
    /// (forcing lazy parts) and the slice table. Returns the number of
    /// files written.
    pub fn save_all(scenario: &Scenario, dir: &Path) -> Result<usize, SnapshotError> {
        let mut written = 0;
        for name in classifier_names(&scenario.config) {
            scenario.save_snapshot(dir, name)?;
            written += 1;
        }
        let slices = SliceTable::from_scenario(scenario);
        slices.save(dir, &SliceTable::key(&scenario.config))?;
        Ok(written + 1)
    }
}
