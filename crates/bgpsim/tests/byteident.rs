//! Byte-identity regression snapshot for the streaming RIB export.
//!
//! Captured from the pre-streaming (whole-world `Vec` accumulating)
//! simulator. The chunked per-origin drain must reproduce the identical
//! observation list — same routes, same order — at this seed. A digest
//! change means simulation output changed for existing users.

use topogen::{generate, TopologyConfig};

/// Captured from the pre-streaming simulator; see module docs.
const SMALL_16_RIB: u64 = 0xb36c_2a56_3e1b_afc9;

#[test]
fn small_seed_16_rib_is_byte_identical() {
    let topo = generate(&TopologyConfig::small(16));
    let snap = bgpsim::simulate(&topo);
    assert_eq!(snap.digest(), SMALL_16_RIB, "got {:#018x}", snap.digest());
}
