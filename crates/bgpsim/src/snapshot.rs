//! Full-mesh simulation: propagate every origin, record what each vantage
//! point exports to the collector, and serialise to real MRT bytes.

use crate::communities::{collector_communities, AnyCommunity};
use crate::propagate::{OriginRoutes, PropScratch, Propagator, RouteClass};
use crate::simgraph::SimGraph;
use asgraph::{asn::AS_TRANS, AsPath, Asn, PathSet};
use bgpwire::{
    attrs::{flatten_segments, AsPathSegment, PathAttribute},
    mrt, Community, LargeCommunity, WireError,
};
use serde::{Deserialize, Serialize};
use topogen::Topology;

/// Snapshot timestamp: 2018-04-01 00:00:00 UTC (the paper's snapshot month).
pub const SNAPSHOT_TIME: u32 = 1_522_540_800;

/// One route exported by a vantage point to the collector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteObservation {
    /// The vantage-point AS.
    pub vp: Asn,
    /// The origin AS.
    pub origin: Asn,
    /// The announced prefix.
    pub prefix: bgpwire::Ipv4Prefix,
    /// Best path at the VP: VP first, origin last, prepending included.
    pub path: Vec<Asn>,
    /// How the VP learned the route.
    pub class: RouteClass,
}

/// The collector's view of the simulated Internet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RibSnapshot {
    /// All observations, ordered by (origin, vp).
    pub observations: Vec<RouteObservation>,
    /// The collector peer sessions (copied from the topology).
    pub collector_peers: Vec<topogen::CollectorPeer>,
}

/// Runs the full simulation: one propagation per origin AS, observations
/// recorded at every collector peer. Parallel across origins; deterministic
/// output order.
#[must_use]
pub fn simulate(topology: &Topology) -> RibSnapshot {
    let graph = SimGraph::build(topology);
    simulate_with_graph(topology, &graph)
}

/// Origins per streaming chunk: peak intermediate memory is one chunk's
/// observation lists instead of the whole world's, while each dispatch still
/// keeps the work-stealing pool saturated.
const ORIGIN_CHUNK: usize = 2048;

/// [`simulate`] reusing a pre-built graph.
///
/// Collects the streamed chunks of [`simulate_streaming`] into one
/// [`RibSnapshot`]; use the streaming form directly when the observation list
/// need not be resident (per-chunk MRT writing, counting at scale).
#[must_use]
pub fn simulate_with_graph(topology: &Topology, graph: &SimGraph) -> RibSnapshot {
    let mut observations: Vec<RouteObservation> = Vec::new();
    simulate_streaming(topology, graph, |chunk| observations.extend(chunk));
    RibSnapshot {
        observations,
        collector_peers: topology.collector_peers.clone(),
    }
}

/// Runs the simulation and drains each origin's observations to `sink` in
/// origin order, one chunk of [`ORIGIN_CHUNK`] origins at a time.
///
/// Per-origin propagation cost is wildly skewed (Tier-1s reach everywhere,
/// stubs almost nowhere), so origins within a chunk are distributed over a
/// work-stealing queue (`breval-par`); each worker reuses one
/// [`Propagator`] plus a `(OriginRoutes, PropScratch)` buffer pair, so
/// steady-state propagation allocates only the observations themselves.
/// The concatenation of all sunk chunks is byte-identical to the batch
/// result at any thread count (and to the pre-streaming simulator —
/// `tests/byteident.rs` pins the digest).
pub fn simulate_streaming<F>(topology: &Topology, graph: &SimGraph, mut sink: F)
where
    F: FnMut(Vec<RouteObservation>),
{
    let _span = breval_obs::span!("simulate");
    let vps: Vec<(u32, topogen::CollectorPeer)> = topology
        .collector_peers
        .iter()
        .filter_map(|cp| graph.node(cp.asn).map(|n| (n, *cp)))
        .collect();

    // Sub-span around the parallel fan-out so the trace/manifest separate
    // the per-origin export from the sequential graph/VP setup above.
    let _export = breval_obs::span!("simulate_export");
    let mut total: u64 = 0;
    let mut start = 0usize;
    while start < graph.len() {
        let end = (start + ORIGIN_CHUNK).min(graph.len());
        let per_origin: Vec<Vec<RouteObservation>> = breval_par::parallel_map_init(
            end - start,
            || {
                (
                    Propagator::new(graph),
                    OriginRoutes::reusable(),
                    PropScratch::new(),
                )
            },
            |(engine, routes, scratch), chunk_idx| {
                let origin = (start + chunk_idx) as u32;
                let asn = graph.asn(origin);
                let Some(info) = topology.info(asn) else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                // Group this origin's prefixes by their TE mask so each
                // distinct announcement scope propagates once.
                let providers = graph.providers(origin);
                let mut by_mask: Vec<(Option<u32>, Vec<bgpwire::Ipv4Prefix>)> = Vec::new();
                for (i, prefix) in info.prefixes.iter().enumerate() {
                    let mask = info
                        .prefix_te
                        .get(i)
                        .copied()
                        .flatten()
                        .filter(|_| !providers.is_empty())
                        .map(|k| providers[usize::from(k) % providers.len()].0);
                    match by_mask.iter_mut().find(|(m, _)| *m == mask) {
                        Some((_, list)) => list.push(*prefix),
                        None => by_mask.push((mask, vec![*prefix])),
                    }
                }
                if by_mask.is_empty() {
                    by_mask.push((None, Vec::new()));
                }
                for (mask, prefixes) in by_mask {
                    engine.propagate_into(origin, mask, routes, scratch);
                    for (vp_node, cp) in &vps {
                        let Some(class) = routes.class(*vp_node) else {
                            continue;
                        };
                        // Partial feeds export customer routes only.
                        if !cp.full_feed && class != RouteClass::Customer {
                            continue;
                        }
                        if let Some(path) = routes.path(*vp_node, graph) {
                            for prefix in &prefixes {
                                out.push(RouteObservation {
                                    vp: cp.asn,
                                    origin: asn,
                                    prefix: *prefix,
                                    path: path.clone(),
                                    class,
                                });
                            }
                        }
                    }
                }
                out
            },
        );
        for obs in per_origin {
            total += obs.len() as u64;
            sink(obs);
        }
        start = end;
    }
    breval_obs::counter("route_observations", total);
}

impl RibSnapshot {
    /// FNV-1a 64 digest of every observation (order-sensitive) plus the
    /// collector-peer list. Pins the streaming per-chunk export to the
    /// historical batch output in regression tests.
    #[must_use]
    pub fn digest(&self) -> u64 {
        topogen::debug_digest(&(&self.observations, &self.collector_peers))
    }

    /// Converts to the [`PathSet`] consumed by inference algorithms.
    ///
    /// With `legacy_as4: false` (the default pipeline), paths carry true
    /// 4-byte ASNs. With `legacy_as4: true`, paths exported over 16-bit-only
    /// collector sessions have their 4-byte hops replaced by `AS_TRANS` —
    /// what a tool that ignores `AS4_PATH` would extract.
    #[must_use]
    pub fn to_pathset(&self, legacy_as4: bool) -> PathSet {
        let _span = breval_obs::span!("to_pathset");
        let two_byte: std::collections::BTreeSet<Asn> = self
            .collector_peers
            .iter()
            .filter(|cp| cp.two_byte_only)
            .map(|cp| cp.asn)
            .collect();
        let mut ps = PathSet::new();
        for obs in &self.observations {
            let hops: Vec<Asn> = if legacy_as4 && two_byte.contains(&obs.vp) {
                obs.path
                    .iter()
                    .map(|a| if a.is_four_byte() { AS_TRANS } else { *a })
                    .collect()
            } else {
                obs.path.clone()
            };
            ps.push(obs.vp, AsPath::new(hops));
        }
        breval_obs::counter("paths_exported", ps.len() as u64);
        ps
    }

    /// Serialises the snapshot to MRT `TABLE_DUMP_V2` bytes: a peer index
    /// table followed by one `RIB_IPV4_UNICAST` record per announced prefix.
    /// Entries from 16-bit-only sessions store the `AS_TRANS`-substituted
    /// `AS_PATH` plus the true `AS4_PATH` (as real collectors do).
    #[must_use]
    pub fn to_mrt(&self, topology: &Topology) -> Vec<u8> {
        let table = mrt::PeerIndexTable {
            collector_id: 0x0A0A_0A0A,
            view_name: "breval-sim".into(),
            peers: self
                .collector_peers
                .iter()
                .enumerate()
                .map(|(i, cp)| mrt::PeerEntry {
                    bgp_id: i as u32 + 1,
                    addr: 0x0A00_0000 + i as u32,
                    asn: cp.asn,
                    two_byte_only: cp.two_byte_only,
                })
                .collect(),
        };
        let peer_index: std::collections::BTreeMap<Asn, u16> = self
            .collector_peers
            .iter()
            .enumerate()
            .map(|(i, cp)| (cp.asn, i as u16))
            .collect();

        // Group observations per announced prefix.
        let mut by_prefix: std::collections::BTreeMap<bgpwire::Ipv4Prefix, Vec<&RouteObservation>> =
            std::collections::BTreeMap::new();
        for obs in &self.observations {
            by_prefix.entry(obs.prefix).or_default().push(obs);
        }

        let mut ribs = Vec::new();
        let mut sequence = 0u32;
        for (prefix, group) in &by_prefix {
            let entries: Vec<mrt::RibEntry> = group
                .iter()
                .filter_map(|obs| {
                    let idx = *peer_index.get(&obs.vp)?;
                    let two_byte = self.collector_peers[usize::from(idx)].two_byte_only;
                    Some(mrt::RibEntry {
                        peer_index: idx,
                        originated: SNAPSHOT_TIME,
                        attributes: path_attributes(topology, &obs.path, two_byte),
                    })
                })
                .collect();
            if entries.is_empty() {
                continue;
            }
            ribs.push(mrt::RibIpv4Unicast {
                sequence,
                prefix: *prefix,
                entries,
            });
            sequence += 1;
        }
        mrt::write_dump(&table, &ribs, SNAPSHOT_TIME)
    }
}

/// Builds the path-attribute list for one RIB entry.
fn path_attributes(
    topology: &Topology,
    path: &[Asn],
    two_byte_session: bool,
) -> Vec<PathAttribute> {
    let mut attrs = vec![PathAttribute::Origin(0)];
    let has_four_byte = path.iter().any(|a| a.is_four_byte());
    if two_byte_session && has_four_byte {
        let legacy: Vec<Asn> = path
            .iter()
            .map(|a| if a.is_four_byte() { AS_TRANS } else { *a })
            .collect();
        attrs.push(PathAttribute::AsPath(vec![AsPathSegment::sequence(legacy)]));
        attrs.push(PathAttribute::As4Path(vec![AsPathSegment::sequence(
            path.to_vec(),
        )]));
    } else {
        attrs.push(PathAttribute::AsPath(vec![AsPathSegment::sequence(
            path.to_vec(),
        )]));
    }
    attrs.push(PathAttribute::NextHop(0x0A00_0001));

    let mut classic: Vec<Community> = Vec::new();
    let mut large: Vec<LargeCommunity> = Vec::new();
    for c in collector_communities(topology, path) {
        match c {
            AnyCommunity::Classic(c) => classic.push(c),
            AnyCommunity::Large(lc) => large.push(lc),
        }
    }
    if !classic.is_empty() {
        attrs.push(PathAttribute::Communities(classic));
    }
    if !large.is_empty() {
        attrs.push(PathAttribute::LargeCommunities(large));
    }
    attrs
}

/// Rebuilds a [`PathSet`] from MRT bytes. With `reconstruct_as4: true` the
/// modern `AS4_PATH` merge is applied; with `false` the legacy view (literal
/// `AS_TRANS` hops) is extracted.
pub fn pathset_from_mrt(bytes: &[u8], reconstruct_as4: bool) -> Result<PathSet, WireError> {
    let (table, ribs) = mrt::read_dump(bytes)?;
    let mut ps = PathSet::new();
    for rib in &ribs {
        for entry in &rib.entries {
            let vp = table.peers[usize::from(entry.peer_index)].asn;
            let as_path = entry.attributes.iter().find_map(|a| match a {
                PathAttribute::AsPath(s) => Some(flatten_segments(s)),
                _ => None,
            });
            let as4_path = entry.attributes.iter().find_map(|a| match a {
                PathAttribute::As4Path(s) => Some(flatten_segments(s)),
                _ => None,
            });
            let Some(as_path) = as_path else { continue };
            let hops = if reconstruct_as4 {
                match as4_path {
                    Some(as4) => bgpwire::attrs::reconstruct_as4(&as_path, &as4),
                    None => as_path,
                }
            } else {
                as_path
            };
            ps.push(vp, AsPath::new(hops));
        }
    }
    Ok(ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    fn snapshot() -> (Topology, RibSnapshot) {
        let topo = topogen::generate(&TopologyConfig::small(16));
        let snap = simulate(&topo);
        (topo, snap)
    }

    #[test]
    fn simulation_is_deterministic() {
        let topo = topogen::generate(&TopologyConfig::small(16));
        let a = simulate(&topo);
        let b = simulate(&topo);
        assert_eq!(a.observations, b.observations);
    }

    #[test]
    fn streaming_chunks_concatenate_to_batch_result() {
        let topo = topogen::generate(&TopologyConfig::small(9));
        let graph = SimGraph::build(&topo);
        let batch = simulate_with_graph(&topo, &graph);
        let mut streamed: Vec<RouteObservation> = Vec::new();
        let mut chunks = 0usize;
        simulate_streaming(&topo, &graph, |chunk| {
            chunks += 1;
            streamed.extend(chunk);
        });
        assert_eq!(streamed, batch.observations);
        // One sink call per origin (chunks are drained origin-by-origin).
        assert_eq!(chunks, graph.len());
    }

    #[test]
    fn full_feed_vps_see_nearly_everything() {
        let (topo, snap) = snapshot();
        let full: Vec<Asn> = topo
            .collector_peers
            .iter()
            .filter(|cp| cp.full_feed)
            .map(|cp| cp.asn)
            .collect();
        let n_origins = topo.as_count();
        for vp in full.iter().take(5) {
            let count = snap.observations.iter().filter(|o| o.vp == *vp).count();
            // Not 100 %: origins single-homed behind a partial-transit
            // provider are legitimately invisible outside that provider's
            // customer cone (the §6.1 mechanism).
            assert!(
                count as f64 > 0.90 * n_origins as f64,
                "full-feed VP {vp} sees only {count}/{n_origins}"
            );
        }
    }

    #[test]
    fn partial_feed_vps_export_customer_routes_only() {
        let (topo, snap) = snapshot();
        let partial: Vec<Asn> = topo
            .collector_peers
            .iter()
            .filter(|cp| !cp.full_feed)
            .map(|cp| cp.asn)
            .collect();
        assert!(!partial.is_empty());
        for obs in &snap.observations {
            if partial.contains(&obs.vp) {
                assert_eq!(obs.class, RouteClass::Customer);
            }
        }
    }

    #[test]
    fn pathset_views_differ_only_on_two_byte_vps() {
        let (topo, snap) = snapshot();
        let modern = snap.to_pathset(false);
        let legacy = snap.to_pathset(true);
        assert_eq!(modern.len(), legacy.len());
        let two_byte: Vec<Asn> = topo
            .collector_peers
            .iter()
            .filter(|cp| cp.two_byte_only)
            .map(|cp| cp.asn)
            .collect();
        let mut saw_as_trans = false;
        for (m, l) in modern.paths().iter().zip(legacy.paths()) {
            assert_eq!(m.vp, l.vp);
            if m.path != l.path {
                assert!(two_byte.contains(&m.vp));
                assert!(l.path.hops().contains(&AS_TRANS));
                saw_as_trans = true;
            }
        }
        assert!(
            saw_as_trans,
            "expected at least one AS_TRANS-mangled path (two-byte VPs exist)"
        );
    }

    #[test]
    fn mrt_roundtrip_preserves_paths() {
        let (topo, snap) = snapshot();
        let bytes = snap.to_mrt(&topo);
        assert!(!bytes.is_empty());
        let modern = pathset_from_mrt(&bytes, true).unwrap();
        let legacy = pathset_from_mrt(&bytes, false).unwrap();
        // Every observation appears (possibly repeated per prefix).
        assert!(modern.len() >= snap.observations.len());
        // Modern reconstruction never contains AS_TRANS.
        for p in modern.paths() {
            assert!(!p.path.hops().contains(&AS_TRANS));
        }
        // Legacy view does, somewhere.
        assert!(legacy
            .paths()
            .iter()
            .any(|p| p.path.hops().contains(&AS_TRANS)));
    }

    #[test]
    fn observations_start_at_vp_and_end_at_origin() {
        let (_, snap) = snapshot();
        for obs in snap.observations.iter().take(500) {
            assert_eq!(obs.path.first(), Some(&obs.vp));
            assert_eq!(obs.path.last(), Some(&obs.origin));
        }
    }
}
