//! Per-origin Gao–Rexford route propagation.
//!
//! Three phases, each a deterministic bucket-queue Dijkstra over unit(ish)
//! weights (prepending adds 2):
//!
//! 1. **up**: the origin's route climbs customer→provider and sibling edges
//!    (customer-class routes). Partial-transit edges mark the route *scoped*
//!    at the provider: it is used and exported downward but never upward or
//!    laterally.
//! 2. **across**: every unscoped customer-class holder exports to its peers
//!    (one peer hop, peer-class routes).
//! 3. **down**: every route holder exports to customers (and siblings),
//!    provider-class routes flooding the customer cones.
//!
//! Route selection: class (customer < peer < provider), then path length,
//! then lowest next-hop ASN — the standard simulation tie-break.

use crate::simgraph::SimGraph;
use asgraph::Asn;
use serde::{Deserialize, Serialize};

/// How a route was learned, in preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RouteClass {
    /// Originated by the AS itself, or learned from a customer/sibling chain.
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a transit provider.
    Provider,
}

const CLASS_NONE: u8 = u8::MAX;
const NO_PARENT: u32 = u32::MAX;

/// Routing outcome of one origin's announcement: per-node best route as a
/// parent-pointer forest.
#[derive(Debug, Clone)]
pub struct OriginRoutes {
    origin: u32,
    class: Vec<u8>,
    len: Vec<u16>,
    parent: Vec<u32>,
    scoped: Vec<bool>,
    prepended: Vec<bool>,
}

impl OriginRoutes {
    /// An empty result buffer for [`Propagator::propagate_into`]; holds no
    /// routes until a propagation fills it. Reusing one buffer across origins
    /// keeps per-origin propagation allocation-free in steady state.
    #[must_use]
    pub fn reusable() -> Self {
        OriginRoutes {
            origin: 0,
            class: Vec::new(),
            len: Vec::new(),
            parent: Vec::new(),
            scoped: Vec::new(),
            prepended: Vec::new(),
        }
    }

    /// Re-initialises for a fresh origin, keeping the allocations.
    fn reset(&mut self, origin: u32, n: usize) {
        self.origin = origin;
        self.class.clear();
        self.class.resize(n, CLASS_NONE);
        self.len.clear();
        self.len.resize(n, u16::MAX);
        self.parent.clear();
        self.parent.resize(n, NO_PARENT);
        self.scoped.clear();
        self.scoped.resize(n, false);
        self.prepended.clear();
        self.prepended.resize(n, false);
    }

    /// The origin node id.
    #[must_use]
    pub fn origin(&self) -> u32 {
        self.origin
    }

    /// `true` if `node` has a route to the origin.
    #[must_use]
    pub fn has_route(&self, node: u32) -> bool {
        self.class[node as usize] != CLASS_NONE
    }

    /// The class of `node`'s best route.
    #[must_use]
    pub fn class(&self, node: u32) -> Option<RouteClass> {
        match self.class[node as usize] {
            0 => Some(RouteClass::Customer),
            1 => Some(RouteClass::Peer),
            2 => Some(RouteClass::Provider),
            _ => None,
        }
    }

    /// `true` if `node`'s best route is scoped by a partial-transit tag.
    #[must_use]
    pub fn scoped(&self, node: u32) -> bool {
        self.scoped[node as usize]
    }

    /// AS-path length of `node`'s best route (prepending included).
    #[must_use]
    pub fn path_len(&self, node: u32) -> Option<u16> {
        self.has_route(node).then(|| self.len[node as usize])
    }

    /// Reconstructs `node`'s AS path, node first and origin last, with
    /// prepending expanded. Returns `None` if `node` has no route.
    #[must_use]
    pub fn path(&self, node: u32, g: &SimGraph) -> Option<Vec<Asn>> {
        if !self.has_route(node) {
            return None;
        }
        let mut hops = Vec::with_capacity(usize::from(self.len[node as usize]) + 1);
        let mut cur = node;
        loop {
            hops.push(g.asn(cur));
            let parent = self.parent[cur as usize];
            if parent == NO_PARENT || cur == self.origin {
                break;
            }
            if self.prepended[cur as usize] {
                // The exporter (parent) prepended itself twice.
                hops.push(g.asn(parent));
                hops.push(g.asn(parent));
            }
            cur = parent;
        }
        Some(hops)
    }

    /// Count of nodes holding a route.
    #[must_use]
    pub fn reached(&self) -> usize {
        self.class.iter().filter(|c| **c != CLASS_NONE).count()
    }
}

/// Candidate route during relaxation.
#[derive(Clone, Copy)]
struct Candidate {
    node: u32,
    len: u16,
    parent: u32,
    scoped: bool,
    #[allow(dead_code)] // reconstructed paths read the per-node flag instead
    prepended: bool,
}

/// Deterministic bucket queue keyed by path length.
struct BucketQueue {
    buckets: Vec<Vec<Candidate>>,
    cursor: usize,
}

impl BucketQueue {
    fn new() -> Self {
        BucketQueue {
            buckets: Vec::new(),
            cursor: 0,
        }
    }

    fn push(&mut self, c: Candidate) {
        let len = usize::from(c.len);
        if self.buckets.len() <= len {
            self.buckets.resize_with(len + 1, Vec::new);
        }
        self.buckets[len].push(c);
    }

    fn pop(&mut self) -> Option<Candidate> {
        while self.cursor < self.buckets.len() {
            if let Some(c) = self.buckets[self.cursor].pop() {
                return Some(c);
            }
            self.cursor += 1;
        }
        None
    }

    /// Empties the queue while keeping every bucket's capacity.
    fn reset(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cursor = 0;
    }
}

/// Reusable per-worker propagation scratch: the bucket queue and the
/// settled-node stamps survive across origins, so steady-state propagation
/// performs no per-origin allocation. The settled set uses the epoch trick
/// (cf. `ConeScratch` in `asgraph`): bumping the epoch invalidates the whole
/// array in O(1) instead of an O(n) clear per Dijkstra pass.
pub struct PropScratch {
    q: BucketQueue,
    done: Vec<u32>,
    epoch: u32,
}

impl PropScratch {
    /// A fresh scratch; grows lazily to the graph size on first use.
    #[must_use]
    pub fn new() -> Self {
        PropScratch {
            q: BucketQueue::new(),
            done: Vec::new(),
            epoch: 0,
        }
    }

    /// Starts a new Dijkstra pass: empty queue, nothing settled.
    fn begin_pass(&mut self, n: usize) {
        if self.done.len() < n {
            self.done.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.done.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.q.reset();
    }

    fn is_done(&self, node: usize) -> bool {
        self.done[node] == self.epoch
    }

    fn mark_done(&mut self, node: usize) {
        self.done[node] = self.epoch;
    }
}

impl Default for PropScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The propagation engine; borrow once, run per origin.
#[derive(Debug, Clone, Copy)]
pub struct Propagator<'g> {
    g: &'g SimGraph,
}

impl<'g> Propagator<'g> {
    /// Creates an engine over `g`.
    #[must_use]
    pub fn new(g: &'g SimGraph) -> Self {
        Propagator { g }
    }

    /// Runs full propagation of `origin`'s announcement.
    #[must_use]
    pub fn propagate(&self, origin: u32) -> OriginRoutes {
        self.propagate_masked(origin, None)
    }

    /// Like [`Propagator::propagate`], but when `allowed_provider` is `Some`,
    /// the origin announces to that provider only (per-prefix traffic
    /// engineering). Peers, siblings and everything downstream are
    /// unaffected — only the origin's own provider announcements are scoped.
    #[must_use]
    pub fn propagate_masked(&self, origin: u32, allowed_provider: Option<u32>) -> OriginRoutes {
        let mut r = OriginRoutes::reusable();
        let mut s = PropScratch::new();
        self.propagate_into(origin, allowed_provider, &mut r, &mut s);
        r
    }

    /// Bounded-memory form of [`Propagator::propagate_masked`]: fills `r` in
    /// place, using `s` for the queue and settled set. A worker that reuses
    /// one `(OriginRoutes, PropScratch)` pair across a whole origin stream
    /// allocates nothing per origin once the buffers have grown to the graph
    /// size. The result is identical to the allocating form — same scans,
    /// same relaxation order.
    pub fn propagate_into(
        &self,
        origin: u32,
        allowed_provider: Option<u32>,
        r: &mut OriginRoutes,
        s: &mut PropScratch,
    ) {
        let n = self.g.len();
        r.reset(origin, n);
        let g = self.g;

        // `better`: does candidate (len, parent) beat node's stored route of
        // the same class? Equal lengths are broken by the node's own
        // deterministic next-hop preference (per-router diversity).
        let better = |r: &OriginRoutes, node: u32, len: u16, parent: u32| -> bool {
            let i = node as usize;
            len < r.len[i]
                || (len == r.len[i]
                    && r.parent[i] != NO_PARENT
                    && g.tie_pref(node, parent, origin) < g.tie_pref(node, r.parent[i], origin))
        };

        // ---- Phase 1: customer routes climb up ------------------------------
        r.class[origin as usize] = 0;
        r.len[origin as usize] = 0;
        r.parent[origin as usize] = NO_PARENT;
        s.begin_pass(n);
        s.q.push(Candidate {
            node: origin,
            len: 0,
            parent: NO_PARENT,
            scoped: false,
            prepended: false,
        });
        while let Some(c) = s.q.pop() {
            let i = c.node as usize;
            if s.is_done(i) || r.len[i] != c.len || r.parent[i] != c.parent {
                continue; // stale entry
            }
            s.mark_done(i);
            if r.scoped[i] {
                continue; // scoped routes never propagate upward
            }
            let prepend = g.prepends(c.node);
            let weight: u16 = if prepend { 3 } else { 1 };
            for &(provider, partial) in g.providers(c.node) {
                if c.node == origin {
                    if let Some(allowed) = allowed_provider {
                        if provider != allowed {
                            continue;
                        }
                    }
                }
                let cand_len = c.len.saturating_add(weight);
                if r.class[provider as usize] == 0 && !better(r, provider, cand_len, c.node) {
                    continue;
                }
                if r.class[provider as usize] == 0 && s.is_done(provider as usize) {
                    continue;
                }
                r.class[provider as usize] = 0;
                r.len[provider as usize] = cand_len;
                r.parent[provider as usize] = c.node;
                r.scoped[provider as usize] = partial;
                r.prepended[provider as usize] = prepend;
                s.q.push(Candidate {
                    node: provider,
                    len: cand_len,
                    parent: c.node,
                    scoped: partial,
                    prepended: prepend,
                });
            }
            // Siblings exchange everything; sibling-learned stays customer
            // class and unscoped links keep climbing.
            for &sib in g.siblings(c.node) {
                let cand_len = c.len.saturating_add(1);
                if r.class[sib as usize] == 0
                    && (s.is_done(sib as usize) || !better(r, sib, cand_len, c.node))
                {
                    continue;
                }
                r.class[sib as usize] = 0;
                r.len[sib as usize] = cand_len;
                r.parent[sib as usize] = c.node;
                r.scoped[sib as usize] = c.scoped;
                r.prepended[sib as usize] = false;
                s.q.push(Candidate {
                    node: sib,
                    len: cand_len,
                    parent: c.node,
                    scoped: c.scoped,
                    prepended: false,
                });
            }
        }

        // ---- Phase 2: one peer hop -------------------------------------------
        // Holders of unscoped customer-class routes export to peers, in
        // ascending node order. A TE-pinned announcement is scoped to the
        // chosen provider: the origin itself does not announce it to its
        // peers.
        for u in 0..n as u32 {
            let holds = r.class[u as usize] == 0
                && !r.scoped[u as usize]
                && !(u == origin && allowed_provider.is_some());
            if !holds {
                continue;
            }
            let prepend = g.prepends(u);
            let weight: u16 = if prepend { 3 } else { 1 };
            let cand_len = r.len[u as usize].saturating_add(weight);
            for &v in g.peers(u) {
                let vi = v as usize;
                match r.class[vi] {
                    0 => {} // customer route is strictly better
                    1 => {
                        if better(r, v, cand_len, u) {
                            r.len[vi] = cand_len;
                            r.parent[vi] = u;
                            r.prepended[vi] = prepend;
                        }
                    }
                    _ => {
                        r.class[vi] = 1;
                        r.len[vi] = cand_len;
                        r.parent[vi] = u;
                        r.scoped[vi] = false;
                        r.prepended[vi] = prepend;
                    }
                }
            }
        }

        // ---- Phase 3: flood down customer cones -------------------------------
        s.begin_pass(n);
        for i in 0..n as u32 {
            if r.class[i as usize] != CLASS_NONE {
                s.q.push(Candidate {
                    node: i,
                    len: r.len[i as usize],
                    parent: r.parent[i as usize],
                    scoped: r.scoped[i as usize],
                    prepended: r.prepended[i as usize],
                });
            }
        }
        while let Some(c) = s.q.pop() {
            let i = c.node as usize;
            if s.is_done(i) || r.len[i] != c.len || r.parent[i] != c.parent {
                continue;
            }
            s.mark_done(i);
            let cand_len = c.len.saturating_add(1);
            for &(customer, _) in g.customers(c.node) {
                let ci = customer as usize;
                // Adopt only if no better-class route exists.
                let adopt = match r.class[ci] {
                    CLASS_NONE => true,
                    2 => !s.is_done(ci) && better(r, customer, cand_len, c.node),
                    _ => false,
                };
                if adopt {
                    r.class[ci] = 2;
                    r.len[ci] = cand_len;
                    r.parent[ci] = c.node;
                    r.scoped[ci] = false;
                    r.prepended[ci] = false;
                    s.q.push(Candidate {
                        node: customer,
                        len: cand_len,
                        parent: c.node,
                        scoped: false,
                        prepended: false,
                    });
                }
            }
            for &sib in g.siblings(c.node) {
                let si = sib as usize;
                let adopt = match r.class[si] {
                    CLASS_NONE => true,
                    2 => !s.is_done(si) && better(r, sib, cand_len, c.node),
                    _ => false,
                };
                if adopt {
                    r.class[si] = 2;
                    r.len[si] = cand_len;
                    r.parent[si] = c.node;
                    r.scoped[si] = false;
                    r.prepended[si] = false;
                    s.q.push(Candidate {
                        node: sib,
                        len: cand_len,
                        parent: c.node,
                        scoped: false,
                        prepended: false,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asgraph::{Link, Rel};
    use topogen::{generate, Topology, TopologyConfig};

    fn small_world() -> (Topology, SimGraph) {
        let topo = generate(&TopologyConfig::small(11));
        let g = SimGraph::build(&topo);
        (topo, g)
    }

    #[test]
    fn origin_reaches_everyone_in_connected_topology() {
        let (topo, g) = small_world();
        let engine = Propagator::new(&g);
        // Any stub origin should reach (be reachable from) every AS: global
        // reachability via the Tier-1 clique.
        let stub = topo
            .ases
            .values()
            .find(|i| i.tier == topogen::TierClass::Stub && i.special.is_none())
            .expect("generated topology contains plain stubs")
            .asn;
        let routes = engine.propagate(g.node(stub).expect("stub is in the sim graph"));
        let reached = routes.reached();
        assert!(
            reached as f64 > 0.99 * g.len() as f64,
            "only {reached}/{} reached",
            g.len()
        );
    }

    #[test]
    fn reused_scratch_matches_fresh_allocation() {
        let (_, g) = small_world();
        let engine = Propagator::new(&g);
        let mut routes = OriginRoutes::reusable();
        let mut scratch = PropScratch::new();
        // Reuse one buffer pair across many origins (including TE masks) and
        // compare against the allocating path every time.
        for origin in (0..g.len() as u32).step_by(41) {
            let mask = g.providers(origin).first().map(|(p, _)| *p);
            for m in [None, mask] {
                engine.propagate_into(origin, m, &mut routes, &mut scratch);
                let fresh = engine.propagate_masked(origin, m);
                assert_eq!(routes.reached(), fresh.reached(), "origin {origin}");
                for node in 0..g.len() as u32 {
                    assert_eq!(routes.class(node), fresh.class(node));
                    assert_eq!(routes.path_len(node), fresh.path_len(node));
                    assert_eq!(routes.path(node, &g), fresh.path(node, &g));
                }
            }
        }
    }

    #[test]
    fn paths_are_valley_free() {
        let (topo, g) = small_world();
        let engine = Propagator::new(&g);
        let graph = topo
            .ground_truth_graph()
            .expect("generated topology is a valid graph");
        let origins: Vec<u32> = (0..g.len() as u32).step_by(37).collect();
        for origin in origins {
            let routes = engine.propagate(origin);
            for node in (0..g.len() as u32).step_by(53) {
                let Some(path) = routes.path(node, &g) else {
                    continue;
                };
                asgraph::check_valley_free(&graph, &path)
                    .unwrap_or_else(|v| panic!("{v} in path {path:?}"));
            }
        }
    }

    #[test]
    fn scoped_routes_never_cross_the_provider_laterally() {
        let (topo, g) = small_world();
        let engine = Propagator::new(&g);
        // Find a partial-transit customer of cogent.
        let cogent = g.node(topo.cogent).expect("cogent is in the sim graph");
        let partial_customer = g
            .customers(cogent)
            .iter()
            .find(|(_, partial)| *partial)
            .map(|(c, _)| *c)
            .expect("cogent has partial customers");
        let routes = engine.propagate(partial_customer);
        // Cogent itself has the route, scoped.
        assert!(routes.has_route(cogent));
        // No other Tier-1's best path may go through cogent: the scoped route
        // is never exported to peers.
        for t1 in &topo.tier1 {
            if *t1 == topo.cogent {
                continue;
            }
            let node = g.node(*t1).expect("tier-1 is in the sim graph");
            if let Some(path) = routes.path(node, &g) {
                let via_cogent = path
                    .windows(2)
                    .any(|w| w[0] == topo.cogent && w[1] != topo.cogent);
                // The path may *start* elsewhere; cogent must not appear as a
                // transit hop between the T1 and the origin.
                assert!(
                    !path.contains(&topo.cogent) || !via_cogent,
                    "scoped route leaked through cogent: {path:?}"
                );
                assert!(
                    !path[..path.len() - 1].contains(&topo.cogent),
                    "scoped route leaked through cogent: {path:?}"
                );
            }
        }
    }

    #[test]
    fn paths_terminate_at_origin_and_are_loop_free() {
        let (_, g) = small_world();
        let engine = Propagator::new(&g);
        let origin = 0u32;
        let routes = engine.propagate(origin);
        for node in 0..g.len() as u32 {
            if let Some(path) = routes.path(node, &g) {
                assert_eq!(
                    *path.last().expect("routed paths are non-empty"),
                    g.asn(origin)
                );
                assert_eq!(path[0], g.asn(node));
                let mut compressed = path.clone();
                compressed.dedup();
                let mut sorted = compressed.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), compressed.len(), "loop in {path:?}");
            }
        }
    }

    #[test]
    fn preference_customer_over_peer_over_provider() {
        // Hand-built diamond: origin O is customer of A and peer of B; B is
        // customer of A. A must pick the customer route (via B? no: direct).
        use asgraph::GtRel;
        use std::collections::BTreeMap;
        let mk = |n: u32| Asn(n);
        let mut links = BTreeMap::new();
        let l = |a: u32, b: u32| Link::new(mk(a), mk(b)).expect("distinct endpoints");
        // A(1) provider of O(10) and B(2); O peers with B.
        links.insert(l(1, 10), GtRel::simple(Rel::P2c { provider: mk(1) }));
        links.insert(l(1, 2), GtRel::simple(Rel::P2c { provider: mk(1) }));
        links.insert(l(2, 10), GtRel::simple(Rel::P2p));
        let mut ases = BTreeMap::new();
        for n in [1u32, 2, 10] {
            ases.insert(
                mk(n),
                topogen::AsInfo {
                    asn: mk(n),
                    region: asregistry::RirRegion::Arin,
                    allocated_region: asregistry::RirRegion::Arin,
                    country: "US".into(),
                    org: asregistry::org::OrgId(format!("@{n}")),
                    tier: topogen::TierClass::Transit,
                    special: None,
                    prefixes: vec![],
                    prefix_te: vec![],
                    manrs: false,
                    hijacker: false,
                    publishes_communities: true,
                    prepends: false,
                },
            );
        }
        let topo = Topology {
            ases,
            links,
            tier1: [mk(1)].into_iter().collect(),
            hypergiants: Default::default(),
            cogent: mk(1),
            collector_peers: vec![],
            ixps: vec![],
        };
        let g = SimGraph::build(&topo);
        let engine = Propagator::new(&g);
        let routes = engine.propagate(g.node(mk(10)).expect("origin is in the sim graph"));
        // B hears O via peer (len 1) and would hear via provider A (len 2):
        // peer wins by class.
        let b = g.node(mk(2)).expect("AS2 is in the sim graph");
        assert_eq!(routes.class(b), Some(RouteClass::Peer));
        assert_eq!(
            routes.path(b, &g).expect("b has a route"),
            vec![mk(2), mk(10)]
        );
        // A hears O directly from its customer: class customer, len 1.
        let a = g.node(mk(1)).expect("AS1 is in the sim graph");
        assert_eq!(routes.class(a), Some(RouteClass::Customer));
        assert_eq!(
            routes.path(a, &g).expect("a has a route"),
            vec![mk(1), mk(10)]
        );
    }

    #[test]
    fn prepending_lengthens_observed_paths() {
        let (topo, g) = small_world();
        let engine = Propagator::new(&g);
        // Find a prepending AS with a provider.
        let prepender = (0..g.len() as u32)
            .find(|&i| g.prepends(i) && !g.providers(i).is_empty())
            .expect("some AS prepends");
        let routes = engine.propagate(prepender);
        let (provider, _) = g.providers(prepender)[0];
        if let Some(path) = routes.path(provider, &g) {
            if path.len() > 2 {
                let dup = path.windows(2).filter(|w| w[0] == w[1]).count();
                assert!(dup >= 2, "expected prepending in {path:?}");
            }
        }
        let _ = topo;
    }
}
