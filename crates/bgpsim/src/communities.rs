//! BGP community semantics for the simulation.
//!
//! Every transit-capable AS tags routes on ingress with an *informational*
//! community encoding the relationship to the neighbor it learned the route
//! from — exactly the encodings Luckie et al. scrape to build "best-effort"
//! validation data. Which scheme an AS uses varies (as in reality); whether
//! the scheme is *publicly documented* is the `publishes_communities` flag on
//! the AS, and that flag — not the tagging — is what drives validation
//! coverage.
//!
//! *Action* communities model the §6.1 mechanism: a partial-transit customer
//! tags its announcements with the provider's `…:990` community ("do not
//! export to peers"); the provider honours and then strips it, so the tag is
//! visible in the provider's own RIB (looking glass) but never at collectors.
//!
//! ASes with 4-byte ASNs cannot put their ASN into a classic RFC 1997
//! community, so they tag with RFC 8092 large communities instead.

use asgraph::{Asn, Rel};
use bgpwire::{Community, LargeCommunity};
use serde::{Deserialize, Serialize};
use topogen::{TierClass, Topology};

/// Ingress relationship classes encoded by informational communities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IngressRel {
    /// Learned from a customer.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

/// A community dictionary: how one AS encodes ingress relationships.
///
/// Three schemes circulate (selected by ASN, stable per AS). Scheme 2's peer
/// value collides with the informal `:666` blackhole convention — a real
/// ambiguity the paper discusses for 3356:666.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommunityScheme {
    /// Value part meaning "learned from customer".
    pub customer: u16,
    /// Value part meaning "learned from peer".
    pub peer: u16,
    /// Value part meaning "learned from provider".
    pub provider: u16,
}

/// The `…:990` action value: "do not export this route to peers/providers".
pub const ACTION_NO_EXPORT_TO_PEERS: u16 = 990;

/// The scheme used by `asn` (deterministic).
#[must_use]
pub fn scheme_of(asn: Asn) -> CommunityScheme {
    match asn.0 % 3 {
        0 => CommunityScheme {
            customer: 100,
            peer: 200,
            provider: 300,
        },
        1 => CommunityScheme {
            customer: 1000,
            peer: 2000,
            provider: 3000,
        },
        _ => CommunityScheme {
            customer: 3,
            peer: 666, // collides with the blackhole convention
            provider: 9,
        },
    }
}

impl CommunityScheme {
    /// The value part for an ingress class.
    #[must_use]
    pub fn value(&self, rel: IngressRel) -> u16 {
        match rel {
            IngressRel::Customer => self.customer,
            IngressRel::Peer => self.peer,
            IngressRel::Provider => self.provider,
        }
    }

    /// Decodes a value part back to an ingress class.
    #[must_use]
    pub fn decode(&self, value: u16) -> Option<IngressRel> {
        if value == self.customer {
            Some(IngressRel::Customer)
        } else if value == self.peer {
            Some(IngressRel::Peer)
        } else if value == self.provider {
            Some(IngressRel::Provider)
        } else {
            None
        }
    }
}

/// A community observed on a route, classic or large.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnyCommunity {
    /// RFC 1997 classic community.
    Classic(Community),
    /// RFC 8092 large community.
    Large(LargeCommunity),
}

impl AnyCommunity {
    /// The informational tag `tagger` attaches for an ingress class.
    #[must_use]
    pub fn informational(tagger: Asn, rel: IngressRel) -> Self {
        let value = scheme_of(tagger).value(rel);
        if tagger.is_four_byte() {
            AnyCommunity::Large(LargeCommunity::new(tagger.0, 0, u32::from(value)))
        } else {
            AnyCommunity::Classic(Community::new(tagger.0 as u16, value))
        }
    }

    /// The action tag addressed to `provider` (set by its customer).
    #[must_use]
    pub fn action_no_export_to_peers(provider: Asn) -> Self {
        if provider.is_four_byte() {
            AnyCommunity::Large(LargeCommunity::new(
                provider.0,
                0,
                u32::from(ACTION_NO_EXPORT_TO_PEERS),
            ))
        } else {
            AnyCommunity::Classic(Community::new(provider.0 as u16, ACTION_NO_EXPORT_TO_PEERS))
        }
    }

    /// The AS-part of the community (16-bit taggers are ambiguous: any 4-byte
    /// ASN sharing the low 16 bits maps to the same classic community).
    #[must_use]
    pub fn asn_part(&self) -> u32 {
        match self {
            AnyCommunity::Classic(c) => u32::from(c.asn),
            AnyCommunity::Large(lc) => lc.global,
        }
    }

    /// The value part.
    #[must_use]
    pub fn value_part(&self) -> u32 {
        match self {
            AnyCommunity::Classic(c) => u32::from(c.value),
            AnyCommunity::Large(lc) => lc.local2,
        }
    }
}

/// Whether `asn` tags informational ingress communities at all. Transit
/// operators and Tier-1s do; stubs and most hypergiants do not (they have no
/// ingress routes to speak of).
#[must_use]
pub fn tags_communities(topology: &Topology, asn: Asn) -> bool {
    matches!(
        topology.info(asn).map(|i| i.tier),
        Some(TierClass::Tier1 | TierClass::Transit)
    )
}

/// The ingress class `x` records for a route learned from `neighbor`,
/// according to ground truth.
///
/// Sibling-learned routes are tagged *as customer routes*: operator community
/// schemes rarely have a dedicated sibling value, so the org's internal ASes
/// get the customer tag — which is precisely how sibling links end up inside
/// community-derived validation data with a P2C label (the 210 entries the
/// paper's §4.2 removes via AS2Org).
#[must_use]
pub fn ingress_rel(topology: &Topology, x: Asn, neighbor: Asn) -> Option<IngressRel> {
    let link = asgraph::Link::new(x, neighbor)?;
    match topology.gt_rel(link)?.base {
        Rel::P2c { provider } if provider == x => Some(IngressRel::Customer),
        Rel::P2c { .. } => Some(IngressRel::Provider),
        Rel::P2p => Some(IngressRel::Peer),
        Rel::S2s => Some(IngressRel::Customer),
    }
}

/// Computes the communities visible on `path` (receiver-first, origin-last)
/// **at a route collector**: every tagging hop's informational ingress tag,
/// action communities stripped.
#[must_use]
pub fn collector_communities(topology: &Topology, path: &[Asn]) -> Vec<AnyCommunity> {
    let mut compressed: Vec<Asn> = path.to_vec();
    compressed.dedup();
    let mut out = Vec::new();
    for w in compressed.windows(2) {
        let (x, neighbor) = (w[0], w[1]); // x learned from neighbor
        if !tags_communities(topology, x) {
            continue;
        }
        if let Some(rel) = ingress_rel(topology, x, neighbor) {
            out.push(AnyCommunity::informational(x, rel));
        }
    }
    out
}

/// Computes the communities visible on `path` **in the RIB of the receiving
/// AS itself** (`path[0]`): like the collector view, plus any action
/// community its customer tagged on the directly received announcement (not
/// yet stripped).
#[must_use]
pub fn rib_communities(topology: &Topology, path: &[Asn]) -> Vec<AnyCommunity> {
    let mut out = collector_communities(topology, path);
    let mut compressed: Vec<Asn> = path.to_vec();
    compressed.dedup();
    if compressed.len() >= 2 {
        // breval-lint: allow(L009) -- guarded by the len() >= 2 check on the line above
        let (receiver, sender) = (compressed[0], compressed[1]);
        if let Some(link) = asgraph::Link::new(receiver, sender) {
            if let Some(gt) = topology.gt_rel(link) {
                if gt.partial_transit && gt.base.provider() == Some(receiver) {
                    out.push(AnyCommunity::action_no_export_to_peers(receiver));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    #[test]
    fn schemes_are_stable_and_decodable() {
        for asn in [Asn(174), Asn(3356), Asn(200_001), Asn(7018)] {
            let s = scheme_of(asn);
            for rel in [IngressRel::Customer, IngressRel::Peer, IngressRel::Provider] {
                assert_eq!(s.decode(s.value(rel)), Some(rel));
            }
            assert_eq!(s.decode(65_432), None);
        }
    }

    #[test]
    fn four_byte_taggers_use_large_communities() {
        let c = AnyCommunity::informational(Asn(200_000), IngressRel::Peer);
        assert!(matches!(c, AnyCommunity::Large(_)));
        assert_eq!(c.asn_part(), 200_000);
        let c = AnyCommunity::informational(Asn(3356), IngressRel::Peer);
        assert!(matches!(c, AnyCommunity::Classic(_)));
        assert_eq!(c.asn_part(), 3356);
    }

    #[test]
    fn collector_view_tags_every_transit_hop() {
        let topo = topogen::generate(&TopologyConfig::small(13));
        // Find a P2C chain t1 -> transit -> stub via the ground truth graph.
        let g = topo.ground_truth_graph().unwrap();
        let t1 = *topo.tier1.iter().next().unwrap();
        let transit = g
            .customers(t1)
            .into_iter()
            .find(|c| !g.customers(*c).is_empty())
            .expect("t1 has transit customer");
        let stub = g.customers(transit)[0];
        let path = vec![t1, transit, stub];
        let comms = collector_communities(&topo, &path);
        // Both t1 and transit tag "learned from customer".
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0].asn_part(), t1.0);
        assert_eq!(comms[0].value_part(), u32::from(scheme_of(t1).customer));
        assert_eq!(comms[1].asn_part(), transit.0);
    }

    #[test]
    fn action_community_only_in_provider_rib() {
        let topo = topogen::generate(&TopologyConfig::small(13));
        let cogent = topo.cogent;
        // Find a partial-transit customer.
        let (link, _) = topo
            .links
            .iter()
            .find(|(l, r)| {
                r.partial_transit && r.base.provider() == Some(cogent) && l.contains(cogent)
            })
            .expect("cogent partial customer exists");
        let customer = link.other(cogent).unwrap();
        let path = vec![cogent, customer];
        let collector = collector_communities(&topo, &path);
        let rib = rib_communities(&topo, &path);
        let action = AnyCommunity::action_no_export_to_peers(cogent);
        assert!(!collector.contains(&action), "action tag must be stripped");
        assert!(rib.contains(&action), "action tag visible in cogent's RIB");
    }

    #[test]
    fn prepended_paths_tag_once_per_as() {
        let topo = topogen::generate(&TopologyConfig::small(13));
        let g = topo.ground_truth_graph().unwrap();
        let t1 = *topo.tier1.iter().next().unwrap();
        let transit = g.customers(t1)[0];
        let path = vec![t1, transit, transit, transit];
        let comms = collector_communities(&topo, &path);
        assert_eq!(comms.len(), 1);
    }
}
