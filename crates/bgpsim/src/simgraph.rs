//! Index-compressed view of a topology for fast per-origin propagation.

use asgraph::{Asn, Rel};
use topogen::Topology;

/// Dense-index adjacency view over a [`Topology`].
///
/// Node ids are `u32` indices into sorted-ASN order, so per-origin state fits
/// in flat arrays.
#[derive(Debug, Clone)]
pub struct SimGraph {
    asn_of: Vec<Asn>,
    /// providers[i] = (provider node, this edge is partial-transit)
    providers: Vec<Vec<(u32, bool)>>,
    customers: Vec<Vec<(u32, bool)>>,
    peers: Vec<Vec<u32>>,
    siblings: Vec<Vec<u32>>,
    prepends: Vec<bool>,
}

impl SimGraph {
    /// Builds the indexed view from a topology's *base* relationships.
    #[must_use]
    pub fn build(topology: &Topology) -> Self {
        let asn_of: Vec<Asn> = topology.ases.keys().copied().collect();
        let n = asn_of.len();
        let idx = |asn: Asn| -> Option<u32> { asn_of.binary_search(&asn).ok().map(|i| i as u32) };
        let mut providers = vec![Vec::new(); n];
        let mut customers = vec![Vec::new(); n];
        let mut peers = vec![Vec::new(); n];
        let mut siblings = vec![Vec::new(); n];
        for (link, gt) in &topology.links {
            let (Some(a), Some(b)) = (idx(link.a()), idx(link.b())) else {
                continue;
            };
            match gt.base {
                Rel::P2c { provider } => {
                    let (p, c) = if provider == link.a() { (a, b) } else { (b, a) };
                    providers[c as usize].push((p, gt.partial_transit));
                    customers[p as usize].push((c, gt.partial_transit));
                }
                Rel::P2p => {
                    peers[a as usize].push(b);
                    peers[b as usize].push(a);
                }
                Rel::S2s => {
                    siblings[a as usize].push(b);
                    siblings[b as usize].push(a);
                }
            }
        }
        let prepends = asn_of
            .iter()
            .map(|asn| topology.ases[asn].prepends)
            .collect();
        SimGraph {
            asn_of,
            providers,
            customers,
            peers,
            siblings,
            prepends,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.asn_of.len()
    }

    /// `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.asn_of.is_empty()
    }

    /// The ASN of node `i`.
    #[must_use]
    pub fn asn(&self, i: u32) -> Asn {
        self.asn_of[i as usize]
    }

    /// The node id of `asn`.
    #[must_use]
    pub fn node(&self, asn: Asn) -> Option<u32> {
        self.asn_of.binary_search(&asn).ok().map(|i| i as u32)
    }

    /// Providers of node `i` with the partial-transit edge flag.
    #[must_use]
    pub fn providers(&self, i: u32) -> &[(u32, bool)] {
        &self.providers[i as usize]
    }

    /// Customers of node `i` with the partial-transit edge flag.
    #[must_use]
    pub fn customers(&self, i: u32) -> &[(u32, bool)] {
        &self.customers[i as usize]
    }

    /// Peers of node `i`.
    #[must_use]
    pub fn peers(&self, i: u32) -> &[u32] {
        &self.peers[i as usize]
    }

    /// Siblings of node `i`.
    #[must_use]
    pub fn siblings(&self, i: u32) -> &[u32] {
        &self.siblings[i as usize]
    }

    /// Whether node `i` prepends on upward/lateral exports.
    #[must_use]
    pub fn prepends(&self, i: u32) -> bool {
        self.prepends[i as usize]
    }

    /// Deterministic per-(AS, next-hop, destination) tie-break preference
    /// among equal-length routes: lower value wins. Models the per-router,
    /// per-prefix diversity of the real BGP decision process (hot-potato IGP
    /// distances, router-id, route age). A destination-independent tie-break
    /// would make an AS pick the *same* neighbor for every destination,
    /// systematically hiding the other links from collectors — which the
    /// real Internet does not do.
    #[must_use]
    pub fn tie_pref(&self, node: u32, next_hop: u32, origin: u32) -> u64 {
        let a = u64::from(self.asn(node).0);
        let b = u64::from(self.asn(next_hop).0);
        let c = u64::from(self.asn(origin).0);
        let mut z = a
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    #[test]
    fn build_round_trips_adjacency() {
        let topo = topogen::generate(&TopologyConfig::small(5));
        let g = SimGraph::build(&topo);
        assert_eq!(g.len(), topo.as_count());
        // Spot-check: every ground-truth P2C edge appears in both directions.
        let graph = topo.ground_truth_graph().unwrap();
        for asn in graph.ases() {
            let i = g.node(asn).unwrap();
            assert_eq!(g.asn(i), asn);
            let mut sim_provs: Vec<Asn> = g.providers(i).iter().map(|(p, _)| g.asn(*p)).collect();
            sim_provs.sort();
            assert_eq!(sim_provs, graph.providers(asn));
            let mut sim_peers: Vec<Asn> = g.peers(i).iter().map(|p| g.asn(*p)).collect();
            sim_peers.sort();
            sim_peers.dedup();
            let mut exp_peers = graph.peers(asn);
            exp_peers.sort();
            assert_eq!(sim_peers, exp_peers);
        }
    }

    #[test]
    fn partial_flags_survive() {
        let topo = topogen::generate(&TopologyConfig::small(5));
        let g = SimGraph::build(&topo);
        let n_partial_topo = topo.links.values().filter(|r| r.partial_transit).count();
        let n_partial_sim: usize = (0..g.len() as u32)
            .map(|i| g.providers(i).iter().filter(|(_, p)| *p).count())
            .sum();
        assert_eq!(n_partial_topo, n_partial_sim);
        assert!(n_partial_sim > 0);
    }
}
