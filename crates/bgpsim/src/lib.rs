//! # bgpsim — BGP route propagation substrate
//!
//! Simulates interdomain routing over a [`topogen::Topology`] under the
//! Gao–Rexford model:
//!
//! * route preference: customer-learned > peer-learned > provider-learned,
//!   then shortest AS path, then lowest next-hop ASN;
//! * selective export: routes learned from customers (or originated) are
//!   exported everywhere; routes learned from peers/providers are exported to
//!   customers only;
//! * **community-scoped export**: a partial-transit customer tags its routes
//!   with its provider's `…:990` action community, which stops the provider
//!   from exporting them to its peers and providers (the §6.1 Cogent
//!   mechanism) — the tag itself is stripped before further redistribution,
//!   so it is visible in the provider's own RIB (looking glass) but not at
//!   route collectors;
//! * sibling (S2S) links exchange all routes in both directions;
//! * path prepending on upward/lateral exports for ASes with the habit
//!   (region-dependent, after Marcos et al. 2020).
//!
//! The output is a [`RibSnapshot`]: the routes observed at each collector-peer
//! vantage point, exportable to real MRT `TABLE_DUMP_V2` bytes via `bgpwire`
//! and to the [`asgraph::PathSet`] the inference algorithms consume. A
//! [`LookingGlass`] answers per-AS RIB queries for the case study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod communities;
pub mod lg;
pub mod propagate;
pub mod simgraph;
pub mod snapshot;

pub use collector::{establish_sessions, EstablishedSession};
pub use lg::{LgRoute, LookingGlass};
pub use propagate::{OriginRoutes, PropScratch, Propagator, RouteClass};
pub use simgraph::SimGraph;
pub use snapshot::{
    simulate, simulate_streaming, simulate_with_graph, RibSnapshot, RouteObservation,
};
