//! Looking-glass queries: the §6.1 case study inspects a Tier-1's *own* RIB,
//! where customer-set action communities are still visible.

use crate::communities::{rib_communities, AnyCommunity};
use crate::propagate::{Propagator, RouteClass};
use crate::simgraph::SimGraph;
use asgraph::Asn;
use serde::{Deserialize, Serialize};
use topogen::Topology;

/// A route as seen in an AS's own RIB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LgRoute {
    /// The queried AS.
    pub at: Asn,
    /// The origin whose announcement is inspected.
    pub origin: Asn,
    /// Best path, queried AS first, origin last.
    pub path: Vec<Asn>,
    /// How the route was learned.
    pub class: RouteClass,
    /// Communities on the route *including* not-yet-stripped action tags.
    pub communities: Vec<AnyCommunity>,
}

/// An on-demand looking glass over a topology: queries re-run a single-origin
/// propagation, so no global RIB state is stored.
pub struct LookingGlass<'t> {
    topology: &'t Topology,
    graph: SimGraph,
}

impl<'t> LookingGlass<'t> {
    /// Builds the looking glass (indexes the topology once).
    #[must_use]
    pub fn new(topology: &'t Topology) -> Self {
        LookingGlass {
            graph: SimGraph::build(topology),
            topology,
        }
    }

    /// Reuses an already-built [`SimGraph`].
    #[must_use]
    pub fn with_graph(topology: &'t Topology, graph: SimGraph) -> Self {
        LookingGlass { topology, graph }
    }

    /// Queries `at`'s best route towards `origin`'s prefix. `None` if either
    /// AS is unknown or no route exists.
    #[must_use]
    pub fn query(&self, at: Asn, origin: Asn) -> Option<LgRoute> {
        let at_node = self.graph.node(at)?;
        let origin_node = self.graph.node(origin)?;
        let routes = Propagator::new(&self.graph).propagate(origin_node);
        let path = routes.path(at_node, &self.graph)?;
        let class = routes.class(at_node)?;
        let communities = rib_communities(self.topology, &path);
        Some(LgRoute {
            at,
            origin,
            path,
            class,
            communities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    #[test]
    fn cogent_lg_shows_action_community_for_partial_customers() {
        let topo = topogen::generate(&TopologyConfig::small(21));
        let lg = LookingGlass::new(&topo);
        let cogent = topo.cogent;
        let (link, _) = topo
            .links
            .iter()
            .find(|(l, r)| {
                r.partial_transit && r.base.provider() == Some(cogent) && l.contains(cogent)
            })
            .expect("partial customer exists");
        let customer = link.other(cogent).unwrap();
        let route = lg.query(cogent, customer).expect("route present");
        assert_eq!(route.class, RouteClass::Customer);
        let action = AnyCommunity::action_no_export_to_peers(cogent);
        assert!(
            route.communities.contains(&action),
            "looking glass must reveal the 990 action tag"
        );
    }

    #[test]
    fn unknown_asns_yield_none() {
        let topo = topogen::generate(&TopologyConfig::small(21));
        let lg = LookingGlass::new(&topo);
        assert!(lg.query(Asn(999_999_999), topo.cogent).is_none());
        assert!(lg.query(topo.cogent, Asn(999_999_999)).is_none());
    }
}
