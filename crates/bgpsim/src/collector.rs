//! Collector session establishment: the OPEN handshake that *produces* each
//! vantage point's ASN encoding.
//!
//! The topology's `two_byte_only` flag models a VP running legacy software;
//! here the flag is realised as an actual RFC 4271/5492 OPEN exchange (real
//! bytes, real capability negotiation), so the `AS_TRANS` pipeline downstream
//! rests on the same mechanism as in production collectors.

use bgpwire::{negotiate, AsnEncoding, OpenMessage, SessionParams, WireError};
use serde::{Deserialize, Serialize};
use topogen::{CollectorPeer, Topology};

/// The collector's own ASN (RouteViews peers from AS6447; we use a synthetic
/// private collector AS).
pub const COLLECTOR_ASN: asgraph::Asn = asgraph::Asn(6447);

/// One established collector session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EstablishedSession {
    /// The vantage-point peer.
    pub peer: CollectorPeer,
    /// Negotiated parameters.
    pub params: SessionParams,
}

/// Performs the OPEN handshake with every collector peer, through actual
/// encoded/decoded OPEN messages.
///
/// Returns an error only if a peer's OPEN fails to round-trip (which would
/// indicate a wire-format bug — exercised in tests).
pub fn establish_sessions(topology: &Topology) -> Result<Vec<EstablishedSession>, WireError> {
    let collector_open = OpenMessage::modern(COLLECTOR_ASN, 0x0A0A_0A0A);
    let mut out = Vec::with_capacity(topology.collector_peers.len());
    for peer in &topology.collector_peers {
        // The peer speaks on the wire; the collector decodes what arrives.
        let peer_open = if peer.two_byte_only {
            OpenMessage::legacy(peer.asn, peer.asn.0)
        } else {
            OpenMessage::modern(peer.asn, peer.asn.0)
        };
        let bytes = peer_open.encode();
        let mut slice = &bytes[..];
        let received = OpenMessage::decode(&mut slice)?;
        let params = negotiate(&collector_open, &received);
        out.push(EstablishedSession {
            peer: *peer,
            params,
        });
    }
    Ok(out)
}

/// Convenience: the sessions that negotiated down to 2-byte encoding — the
/// `AS_TRANS` producers.
#[must_use]
pub fn two_byte_sessions(sessions: &[EstablishedSession]) -> Vec<CollectorPeer> {
    sessions
        .iter()
        .filter(|s| s.params.asn_encoding == AsnEncoding::TwoByte)
        .map(|s| s.peer)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    #[test]
    fn negotiation_matches_peer_software() {
        let topo = topogen::generate(&TopologyConfig::small(9));
        let sessions = establish_sessions(&topo).expect("handshakes round-trip");
        assert_eq!(sessions.len(), topo.collector_peers.len());
        for s in &sessions {
            let expected = if s.peer.two_byte_only {
                AsnEncoding::TwoByte
            } else {
                AsnEncoding::FourByte
            };
            assert_eq!(
                s.params.asn_encoding, expected,
                "session with {} negotiated wrong encoding",
                s.peer.asn
            );
        }
        // The legacy sessions are exactly the flagged ones.
        let legacy = two_byte_sessions(&sessions);
        let flagged: Vec<_> = topo
            .collector_peers
            .iter()
            .filter(|p| p.two_byte_only)
            .copied()
            .collect();
        assert_eq!(legacy, flagged);
        assert!(!legacy.is_empty(), "small config should have legacy VPs");
    }

    #[test]
    fn hold_time_is_minimum() {
        let topo = topogen::generate(&TopologyConfig::small(9));
        let sessions = establish_sessions(&topo).unwrap();
        for s in sessions {
            assert_eq!(s.params.hold_time, 180);
        }
    }
}
