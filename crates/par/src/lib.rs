//! Work-stealing parallel execution for the breval pipeline, backed by a
//! **persistent worker pool**.
//!
//! # Design
//!
//! The pipeline's fan-out points (per-origin route propagation, per-AS cone
//! BFS, per-group ensemble inference, per-link classification) all share one
//! shape: `n` independent index-addressed work items whose per-item cost
//! varies wildly — a Tier-1's propagation or cone BFS costs orders of
//! magnitude more than a stub's. Static chunking serialises the tail behind
//! whichever chunk drew the expensive items; this module replaces it with a
//! **range-splitting work-stealing queue**: each worker owns a contiguous
//! index range, pops from its front, and when empty steals the upper half of
//! the largest remaining victim range. Stolen ranges stay contiguous, so
//! cache locality of index-adjacent items survives stealing.
//!
//! # Pool lifecycle
//!
//! Worker threads are spawned **once**, lazily, on the first parallel call
//! that needs them, and then park on a job channel between calls — a
//! [`parallel_map`] call submits jobs to the resident workers instead of
//! spawning threads. The pool is grow-only: raising the thread cap adds
//! workers, lowering it merely idles the surplus (they stay parked). The
//! calling thread always participates as worker 0, so a cap of `k` uses the
//! caller plus at most `k - 1` resident workers. The pool is never torn
//! down; parked workers are detached at process exit and reaped by the OS.
//! [`pool_thread_count`] exposes the resident-worker count for tests.
//!
//! Nested parallel calls (a work item that itself calls [`parallel_map`],
//! e.g. TopoScope's per-VP-group fan-out inside the ensemble fan-out) run
//! **inline** on the worker that hit them. This keeps the pool deadlock-free
//! (a job never blocks waiting for pool capacity held by its own ancestors)
//! and costs nothing in coverage: the outer call already saturates the cap.
//!
//! # Determinism
//!
//! [`parallel_map`] returns results **in item-index order** regardless of
//! thread count or steal interleaving: workers tag each result with its
//! index and the caller-side assembly places them positionally. Any
//! computation that is a pure function of its index therefore produces
//! byte-identical output at 1 and N threads — the property
//! `tests/determinism.rs` locks in for the whole pipeline.
//!
//! # Thread cap
//!
//! The worker count is `min(n_items, max_threads())`. [`max_threads`]
//! resolves, in order: the programmatic override ([`set_max_threads`]), the
//! `BREVAL_THREADS` environment variable, then
//! `std::thread::available_parallelism()`. A cap of 1 runs inline on the
//! calling thread — no submission, no queue.
//!
//! # Observability
//!
//! Workers adopt the calling thread's observability span context
//! (`breval_obs::adopt_context`) for the duration of each submission, so
//! spans and counters fired inside work items attribute to the pipeline
//! stage that submitted them instead of dangling at the manifest's top
//! level. The adoption guard is scoped to the submission: a parked worker
//! carries no stale context into the next call.
//!
//! When observability is on, each worker additionally wraps its busy slice
//! in `breval_obs::journal_span("pool_worker")` (one timeline slice per
//! worker per call, wall + allocation attribution under
//! `<stage>/pool_worker`), tallies per-item runtimes into the
//! `parallel_map_item_ns` histogram (locally per worker, merged once at
//! slice end — no per-item lock), and the call flushes pool-health
//! counters on the submitting thread: steal attempts / successes / lost
//! races, items run by the caller vs in total, jobs submitted, and worker
//! park/unpark deltas. All of it is behind the `BREVAL_OBS` switch; a
//! disabled run takes the exact pre-instrumentation path. Timing uses
//! `breval_obs::clock_ns` — the sanctioned clock reader — so this crate
//! still contains no `std::time` (lint L004).

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable capping worker threads (`0` or unset = hardware).
pub const ENV_THREADS: &str = "BREVAL_THREADS";

/// Programmatic override: 0 = unset (fall through to env / hardware).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads for all subsequent parallel calls.
/// `Some(n)` forces `n` (min 1); `None` clears the override so the
/// `BREVAL_THREADS` environment variable / hardware default applies again.
/// Lowering the cap idles surplus resident pool workers but never joins
/// them (the pool is grow-only).
pub fn set_max_threads(n: Option<usize>) {
    MAX_THREADS.store(n.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Runs `f` with the thread cap pinned to `cap`, restoring the previous
/// override afterwards — even if `f` panics — and **serialising** against
/// every other `with_thread_cap` call in the process under a global lock.
///
/// This is the sanctioned way for tests (and benchmarks sweeping thread
/// counts) to mutate the cap: bare [`set_max_threads`] calls from
/// concurrently running `#[test]`s race on the process-global override,
/// so one test's `Some(1)` can leak into another's timing window. Scoping
/// + locking here removes that flake class at the root.
pub fn with_thread_cap<T>(cap: Option<usize>, f: impl FnOnce() -> T) -> T {
    static CAP_LOCK: Mutex<()> = Mutex::new(());
    let _serial = lock(&CAP_LOCK);
    let prev = MAX_THREADS.swap(cap.map_or(0, |n| n.max(1)), Ordering::Relaxed);
    // Restore on unwind too: a panicking closure must not leave its cap
    // behind for whoever takes the lock next.
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The current worker-thread cap: programmatic override, else
/// `BREVAL_THREADS`, else `available_parallelism()` (min 1).
#[must_use]
pub fn max_threads() -> usize {
    let forced = MAX_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var(ENV_THREADS) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-wide resident pool. Spawned lazily and never dropped:
/// parked workers are detached at process exit.
static POOL: OnceLock<scoped_threadpool::Pool> = OnceLock::new();

/// Returns the resident pool, grown to at least `threads` workers.
fn resident_pool(threads: usize) -> &'static scoped_threadpool::Pool {
    let pool = POOL.get_or_init(|| scoped_threadpool::Pool::new(0));
    let want = u32::try_from(threads).unwrap_or(u32::MAX);
    pool.ensure_threads(want);
    // Grow-only invariant: the pool always covers the largest cap it has
    // ever been asked for; lowering the cap idles workers, never joins
    // them. `pool_thread_count()` therefore tracks the high-water mark,
    // not the active cap — `effective_workers` is the cap-side accounting.
    debug_assert!(
        pool.thread_count() >= want,
        "resident pool shrank below a requested cap"
    );
    pool
}

/// Number of resident pool worker threads spawned so far (the calling
/// thread, which participates as worker 0, is not counted).
///
/// Because the pool is grow-only this is a **high-water mark**: after
/// [`set_max_threads`] lowers the cap, the count stays at the largest cap
/// ever used while the surplus workers idle parked. Use
/// [`effective_workers`] for how many threads a call will actually run on.
#[must_use]
pub fn pool_thread_count() -> usize {
    POOL.get().map_or(0, |p| p.thread_count() as usize)
}

/// The number of threads (caller included) a parallel call over `n` items
/// will actually use under the current cap: `min(max_threads(), n)`, and
/// `0` for an empty call. This — not [`pool_thread_count`] — is the
/// honest per-call accounting once the cap has been lowered below the
/// pool's resident high-water mark.
#[must_use]
pub fn effective_workers(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    max_threads().min(n).max(1)
}

/// Ceiling on the chunk count [`input_scaled_chunk`] aims for: beyond it the
/// per-chunk bookkeeping (one partial result per chunk) starts to dominate.
const MAX_CHUNKS: usize = 256;

/// Items per chunk for a chunked fan-out over `len` items: `base` (the
/// caller's tuned granularity) until the input is large enough that `base`
/// would produce more than [`MAX_CHUNKS`] chunks, then `len / 256` so the
/// chunk count stays bounded at million-item scale. The result depends on
/// the input length only — **never** on the thread count — so chunk
/// boundaries, and with them any order-sensitive merged output, are
/// byte-identical on 1 thread and 64.
#[must_use]
pub fn input_scaled_chunk(len: usize, base: usize) -> usize {
    debug_assert!(base > 0, "chunk base must be positive");
    base.max(len / MAX_CHUNKS)
}

thread_local! {
    /// True while this thread is executing work items of a parallel call —
    /// nested calls detect it and run inline instead of re-submitting.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// RAII entry into "executing parallel work items" state; restores the
/// previous flag on drop so a worker parked after a job is clean.
struct NestedGuard {
    prev: bool,
}

impl NestedGuard {
    fn enter() -> NestedGuard {
        NestedGuard {
            prev: IN_PARALLEL.with(|c| c.replace(true)),
        }
    }
}

impl Drop for NestedGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL.with(|c| c.set(prev));
    }
}

fn is_nested() -> bool {
    IN_PARALLEL.with(Cell::get)
}

/// A work-stealing queue over the index range `0..n`: one contiguous
/// `[lo, hi)` range per worker; owners pop from the front, thieves split
/// the upper half of the largest remaining victim range.
struct StealQueue {
    ranges: Vec<Mutex<(usize, usize)>>,
    /// Pool-health tallies for this call (relaxed; read once at flush).
    steal_attempts: AtomicU64,
    steal_successes: AtomicU64,
    steal_lost_races: AtomicU64,
}

impl StealQueue {
    /// Partitions `0..n` into `workers` near-equal contiguous ranges.
    fn new(n: usize, workers: usize) -> Self {
        let per = n / workers;
        let extra = n % workers;
        let mut lo = 0;
        let ranges = (0..workers)
            .map(|w| {
                let len = per + usize::from(w < extra);
                let r = (lo, lo + len);
                lo += len;
                Mutex::new(r)
            })
            .collect();
        StealQueue {
            ranges,
            steal_attempts: AtomicU64::new(0),
            steal_successes: AtomicU64::new(0),
            steal_lost_races: AtomicU64::new(0),
        }
    }

    /// Pops the next index for worker `me`: front of its own range, else
    /// the first index of the upper half stolen from the largest victim.
    /// A steal always yields at least one item — with `remaining >= 1`,
    /// `mid = lo + remaining / 2 < hi`, so a thief takes a victim's last
    /// item rather than leaving it behind.
    fn next(&self, me: usize) -> Option<usize> {
        {
            let mut own = lock(&self.ranges[me]);
            if own.0 < own.1 {
                let i = own.0;
                own.0 += 1;
                return Some(i);
            }
        }
        loop {
            // Pick the victim with the most remaining work (snapshot; the
            // steal below re-checks under the victim's lock).
            let victim = self
                .ranges
                .iter()
                .enumerate()
                .filter(|(w, _)| *w != me)
                .map(|(w, r)| {
                    let r = lock(r);
                    (r.1.saturating_sub(r.0), w)
                })
                .max()
                .filter(|(remaining, _)| *remaining > 0);
            let (_, victim) = victim?;
            self.steal_attempts.fetch_add(1, Ordering::Relaxed);
            let stolen = {
                let mut v = lock(&self.ranges[victim]);
                let remaining = v.1.saturating_sub(v.0);
                if remaining == 0 {
                    None // lost the race to another thief
                } else {
                    // Keep the lower half with the victim, take the upper
                    // (non-empty: mid < hi whenever remaining >= 1).
                    let mid = v.0 + remaining / 2;
                    let stolen = (mid, v.1);
                    v.1 = mid;
                    Some(stolen)
                }
            };
            if let Some((lo, hi)) = stolen {
                debug_assert!(lo < hi, "a successful steal is never empty");
                self.steal_successes.fetch_add(1, Ordering::Relaxed);
                let mut own = lock(&self.ranges[me]);
                *own = (lo + 1, hi);
                return Some(lo);
            }
            self.steal_lost_races.fetch_add(1, Ordering::Relaxed);
            // Lost the race: another thief emptied the snapshot's largest
            // victim first. Yield before re-scanning so draining the final
            // items doesn't degenerate into hot-spinning thieves locking
            // every range per iteration.
            std::thread::yield_now();
        }
    }
}

/// Locks a mutex, ignoring poisoning (worker panics propagate via the
/// scope's panic slot).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Applies `f` to every index in `0..n` across the resident worker pool
/// and returns the results in index order. `f` must be a pure function of
/// its index for the output to be thread-count independent.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_init(n, || (), |(), i| f(i))
}

/// [`parallel_map`] with per-worker state: `init` runs once on each worker
/// that participates in this call (e.g. to build a scratch propagation
/// engine) and the state is passed mutably to every item that worker
/// processes. Results are in index order; for thread-count-independent
/// output, `f`'s result must not depend on the state's history.
pub fn parallel_map_init<S, T, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = max_threads().min(n);
    if workers <= 1 || is_nested() {
        // Single-threaded cap, or already inside a parallel work item:
        // run inline on this thread (no submission, no queue). Item
        // latencies and item counters are still tallied so the
        // `parallel_map_item_ns` histogram and `pool_items_*` counters
        // mean the same thing at every thread cap (no worker slice or
        // steal/park counters, though — there is no pool activity).
        let _nested = NestedGuard::enter();
        let mut state = init();
        if breval_obs::enabled() {
            let mut items = breval_obs::Histogram::new();
            let out = (0..n)
                .map(|i| {
                    let t0 = breval_obs::clock_ns();
                    let v = f(&mut state, i);
                    items.record(breval_obs::clock_ns().saturating_sub(t0));
                    v
                })
                .collect();
            breval_obs::histogram_merge("parallel_map_item_ns", &items);
            breval_obs::counter("pool_items_total", n as u64);
            breval_obs::counter("pool_items_caller", n as u64);
            return out;
        }
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let queue = StealQueue::new(n, workers);
    let parent = breval_obs::current_path();
    // One result bucket per worker: each worker locks only its own bucket,
    // so there is no cross-worker contention on the results.
    let buckets: Vec<Mutex<Vec<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(Vec::new())).collect();

    let obs_on = breval_obs::enabled();
    let run_worker = |me: usize| {
        let _nested = NestedGuard::enter();
        let _ctx = breval_obs::adopt_context(parent.as_deref());
        let mut state = init();
        let mut out = Vec::new();
        if obs_on {
            // One timeline slice per worker per call, plus per-item
            // latencies tallied locally (merged under one lock at the end
            // so the hot loop stays lock-free on the obs side).
            let _slice = breval_obs::journal_span("pool_worker");
            let mut items = breval_obs::Histogram::new();
            while let Some(i) = queue.next(me) {
                let t0 = breval_obs::clock_ns();
                out.push((i, f(&mut state, i)));
                items.record(breval_obs::clock_ns().saturating_sub(t0));
            }
            breval_obs::histogram_merge("parallel_map_item_ns", &items);
        } else {
            while let Some(i) = queue.next(me) {
                out.push((i, f(&mut state, i)));
            }
        }
        *lock(&buckets[me]) = out;
    };

    // The pool supplies `workers - 1` jobs; the caller drains worker 0's
    // range itself (and steals the rest if the pool is busy elsewhere), so
    // the call makes progress even with zero free resident workers.
    let parks0 = obs_on.then(scoped_threadpool::pool_health);
    let pool = resident_pool(workers - 1);
    pool.scoped(|scope| {
        let run_worker = &run_worker;
        for me in 1..workers {
            scope.execute(move || run_worker(me));
        }
        run_worker(0);
    });
    if let Some((parks0, unparks0, _)) = parks0 {
        // Flushed on the submitting thread, so the counters attribute to
        // the stage that ran this parallel call.
        let (parks1, unparks1, _) = scoped_threadpool::pool_health();
        breval_obs::counter("pool_items_total", n as u64);
        // breval-lint: allow(L009) -- workers >= 2 past the inline early return, so bucket 0 exists
        breval_obs::counter("pool_items_caller", lock(&buckets[0]).len() as u64);
        breval_obs::counter("pool_jobs_submitted", (workers - 1) as u64);
        breval_obs::counter(
            "pool_steal_attempts",
            queue.steal_attempts.load(Ordering::Relaxed),
        );
        breval_obs::counter(
            "pool_steal_successes",
            queue.steal_successes.load(Ordering::Relaxed),
        );
        breval_obs::counter(
            "pool_steal_lost_races",
            queue.steal_lost_races.load(Ordering::Relaxed),
        );
        breval_obs::counter("pool_worker_parks", parks1.saturating_sub(parks0));
        breval_obs::counter("pool_worker_unparks", unparks1.saturating_sub(unparks0));
    }

    // Positional assembly restores index order independent of stealing.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, v) in lock(&bucket).drain(..) {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index processed exactly once"))
        .collect()
}

pub mod baseline {
    //! Spawn-per-call reference implementation, kept solely so
    //! `experiments parbench` can measure the resident pool's per-call
    //! overhead win against the old behaviour. Not used by the pipeline.

    use super::{max_threads, StealQueue};

    /// The pre-pool [`parallel_map`](super::parallel_map): identical
    /// work-stealing queue and index-ordered assembly, but spawns fresh
    /// worker threads via `crossbeam::scope` on every call.
    pub fn parallel_map_spawn<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = max_threads().min(n);
        if workers <= 1 {
            return (0..n).map(&f).collect();
        }
        let queue = StealQueue::new(n, workers);
        let parent = breval_obs::current_path();
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        crossbeam::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let queue = &queue;
                    let f = &f;
                    let parent = parent.as_deref();
                    s.spawn(move |_| {
                        let _ctx = breval_obs::adopt_context(parent);
                        let mut out = Vec::new();
                        while let Some(i) = queue.next(me) {
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                tagged.extend(h.join().expect("breval-par baseline worker panicked"));
            }
        })
        .expect("breval-par baseline scope");
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in tagged {
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index processed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// The override is process-global; tests touching it serialise here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn results_are_in_index_order() {
        let _t = locked();
        for threads in [1, 2, 3, 8] {
            set_max_threads(Some(threads));
            let out = parallel_map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        set_max_threads(None);
    }

    #[test]
    fn skewed_workloads_complete_and_stay_ordered() {
        let _t = locked();
        set_max_threads(Some(4));
        // Item 0 is very expensive: static chunking would idle three
        // workers; stealing must still return everything in order.
        let out = parallel_map(64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i as u64
        });
        assert_eq!(out, (0..64u64).collect::<Vec<_>>());
        set_max_threads(None);
    }

    #[test]
    fn init_runs_once_per_worker() {
        let _t = locked();
        set_max_threads(Some(3));
        let inits = AtomicU32::new(0);
        let out = parallel_map_init(
            30,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0u32
            },
            |scratch, i| {
                *scratch += 1;
                i
            },
        );
        assert_eq!(out.len(), 30);
        assert!(
            inits.load(Ordering::SeqCst) <= 3,
            "at most one init per worker"
        );
        set_max_threads(None);
    }

    #[test]
    fn empty_and_single_item() {
        let _t = locked();
        set_max_threads(Some(4));
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
        set_max_threads(None);
    }

    #[test]
    fn more_workers_than_items() {
        let _t = locked();
        set_max_threads(Some(16));
        assert_eq!(parallel_map(3, |i| i), vec![0, 1, 2]);
        set_max_threads(None);
    }

    #[test]
    fn cap_override_round_trips() {
        let _t = locked();
        set_max_threads(Some(2));
        assert_eq!(max_threads(), 2);
        set_max_threads(Some(0)); // clamped to 1
        assert_eq!(max_threads(), 1);
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn with_thread_cap_scopes_and_restores_the_override() {
        let _t = locked();
        set_max_threads(Some(5));
        let inner = with_thread_cap(Some(2), || {
            assert_eq!(max_threads(), 2);
            parallel_map(10, |i| i)
        });
        assert_eq!(inner, (0..10).collect::<Vec<_>>());
        assert_eq!(max_threads(), 5, "previous override restored");
        set_max_threads(None);
    }

    #[test]
    fn with_thread_cap_restores_on_panic() {
        let _t = locked();
        set_max_threads(Some(5));
        let r = std::panic::catch_unwind(|| {
            with_thread_cap(Some(1), || panic!("injected"));
        });
        assert!(r.is_err());
        assert_eq!(max_threads(), 5, "cap restored despite the panic");
        set_max_threads(None);
    }

    #[test]
    fn effective_workers_tracks_the_cap_not_the_pool() {
        let _t = locked();
        // Grow the pool high, then lower the cap: the resident count stays
        // at its high-water mark while the per-call accounting follows the
        // cap.
        set_max_threads(Some(4));
        let _ = parallel_map(32, |i| i);
        let high_water = pool_thread_count();
        assert!(high_water >= 3);
        set_max_threads(Some(2));
        assert_eq!(effective_workers(32), 2);
        assert_eq!(effective_workers(1), 1);
        assert_eq!(effective_workers(0), 0);
        assert!(
            pool_thread_count() >= high_water,
            "lowering the cap must never shrink the pool"
        );
        set_max_threads(None);
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let _t = locked();
        set_max_threads(Some(3));
        let _ = parallel_map(32, |i| i);
        let after_first = pool_thread_count();
        assert!(after_first >= 2, "cap 3 needs >= 2 resident workers");
        for _ in 0..5 {
            let _ = parallel_map(32, |i| i * 2);
        }
        assert_eq!(
            pool_thread_count(),
            after_first,
            "consecutive calls must reuse parked workers, not spawn"
        );
        set_max_threads(None);
    }

    #[test]
    fn nested_calls_run_inline_and_stay_ordered() {
        let _t = locked();
        set_max_threads(Some(4));
        let out = parallel_map(8, |i| {
            // Inner call runs inline on whichever worker owns item i.
            let inner = parallel_map(4, move |j| i * 10 + j);
            assert_eq!(inner, (0..4).map(|j| i * 10 + j).collect::<Vec<_>>());
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
        set_max_threads(None);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let _t = locked();
        set_max_threads(Some(4));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(16, |i| {
                assert!(i != 9, "injected failure");
                i
            })
        }));
        assert!(r.is_err(), "a panicking work item must fail the call");
        // The pool survives the panic and keeps serving.
        assert_eq!(parallel_map(4, |i| i), vec![0, 1, 2, 3]);
        set_max_threads(None);
    }

    #[test]
    fn baseline_spawn_map_matches_pool_map() {
        let _t = locked();
        set_max_threads(Some(4));
        let pool = parallel_map(50, |i| i * 3);
        let spawn = baseline::parallel_map_spawn(50, |i| i * 3);
        assert_eq!(pool, spawn);
        set_max_threads(None);
    }

    #[test]
    fn pool_health_counters_flush_to_the_submitting_stage() {
        let _t = locked();
        breval_obs::set_enabled(true);
        breval_obs::reset();
        set_max_threads(Some(3));
        {
            let _outer = breval_obs::span("parbench_pool_map");
            let _ = parallel_map(40, |i| i);
        }
        let m = breval_obs::RunManifest::capture("par-health", 0);
        let stage = m
            .stages
            .iter()
            .find(|s| s.name == "parbench_pool_map")
            .expect("span recorded");
        assert_eq!(stage.counters.get("pool_items_total"), Some(&40));
        assert_eq!(stage.counters.get("pool_jobs_submitted"), Some(&2));
        // The caller's share can legitimately be 0 (resident workers may
        // drain everything, stealing the caller's range, before the caller
        // pops its first item on a loaded machine) — only bounded above.
        let caller = stage.counters["pool_items_caller"];
        assert!(caller <= 40, "caller ran {caller} items");
        // Worker busy slices appear as a child stage, one call per worker.
        let slices = m
            .stages
            .iter()
            .find(|s| s.name == "parbench_pool_map/pool_worker")
            .expect("pool_worker slices recorded");
        assert_eq!(slices.calls, 3);
        // Item latencies land in the histogram with quantiles populated.
        let h = &m.histograms["parallel_map_item_ns"];
        assert_eq!(h.count, 40);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99);
        breval_obs::set_enabled(false);
        set_max_threads(None);
    }

    #[test]
    fn workers_adopt_caller_span_context() {
        let _t = locked();
        breval_obs::set_enabled(true);
        breval_obs::reset();
        set_max_threads(Some(3));
        {
            let _outer = breval_obs::span("sanitize");
            let _ = parallel_map(12, |i| {
                breval_obs::counter("paths_sanitized_kept", 1);
                i
            });
        }
        // All 12 increments attribute to the submitting span's path even
        // though they ran on worker threads.
        let m = breval_obs::RunManifest::capture("par-test", 0);
        let stage = m
            .stages
            .iter()
            .find(|s| s.name == "sanitize")
            .expect("span recorded");
        assert_eq!(stage.counters.get("paths_sanitized_kept"), Some(&12));
        breval_obs::set_enabled(false);
        set_max_threads(None);
    }

    #[test]
    fn input_scaled_chunk_scales_with_length_not_threads() {
        // Small inputs keep the caller's tuned base untouched, so existing
        // scales chunk exactly as before the re-tune.
        assert_eq!(input_scaled_chunk(0, 512), 512);
        assert_eq!(input_scaled_chunk(10_000, 512), 512);
        assert_eq!(input_scaled_chunk(512 * MAX_CHUNKS, 512), 512);
        // Past base*MAX_CHUNKS the chunk grows linearly with the input, so
        // the chunk count stays bounded by MAX_CHUNKS (+1 for the remainder).
        let big = 4_000_000;
        let chunk = input_scaled_chunk(big, 512);
        assert_eq!(chunk, big / MAX_CHUNKS);
        assert!(big.div_ceil(chunk) <= MAX_CHUNKS + 1);
        // The result is a pure function of the length — identical under any
        // thread cap, which is what keeps chunked output thread-invariant.
        let _t = locked();
        for cap in [1, 2, 7] {
            set_max_threads(Some(cap));
            assert_eq!(input_scaled_chunk(big, 512), chunk);
            assert_eq!(input_scaled_chunk(1000, 256), 256);
        }
        set_max_threads(None);
    }
}
