//! Property tests: wire formats round-trip, and decoders never panic on
//! arbitrary bytes (fuzz-style).

use asgraph::Asn;
use bgpwire::{
    attrs::{AsPathSegment, PathAttribute},
    mrt::{self, MrtRecord, PeerEntry, PeerIndexTable, RibEntry, RibIpv4Unicast},
    update::{AsnEncoding, UpdateMessage},
    Community, Ipv4Prefix, LargeCommunity,
};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(addr, len).unwrap())
}

fn arb_asn() -> impl Strategy<Value = Asn> {
    prop_oneof![
        (1u32..65_000).prop_map(Asn),
        (131_072u32..4_000_000).prop_map(Asn),
    ]
}

fn arb_community() -> impl Strategy<Value = Community> {
    (any::<u16>(), any::<u16>()).prop_map(|(a, v)| Community::new(a, v))
}

fn arb_attr() -> impl Strategy<Value = PathAttribute> {
    prop_oneof![
        (0u8..3).prop_map(PathAttribute::Origin),
        prop::collection::vec(arb_asn(), 1..8)
            .prop_map(|asns| PathAttribute::AsPath(vec![AsPathSegment::sequence(asns)])),
        any::<u32>().prop_map(PathAttribute::NextHop),
        any::<u32>().prop_map(PathAttribute::Med),
        prop::collection::vec(arb_community(), 0..70).prop_map(PathAttribute::Communities),
        prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..10).prop_map(|v| {
            PathAttribute::LargeCommunities(
                v.into_iter()
                    .map(|(g, l1, l2)| LargeCommunity::new(g, l1, l2))
                    .collect(),
            )
        }),
    ]
}

proptest! {
    /// Prefix NLRI encoding round-trips.
    #[test]
    fn prefix_roundtrip(p in arb_prefix()) {
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut slice = &buf[..];
        prop_assert_eq!(Ipv4Prefix::decode(&mut slice).unwrap(), p);
        prop_assert!(slice.is_empty());
    }

    /// UPDATE messages round-trip under 4-byte encoding.
    #[test]
    fn update_roundtrip_four_byte(
        nlri in prop::collection::vec(arb_prefix(), 0..6),
        withdrawn in prop::collection::vec(arb_prefix(), 0..6),
        attrs in prop::collection::vec(arb_attr(), 0..6),
    ) {
        let msg = UpdateMessage { withdrawn, attributes: attrs, nlri };
        let bytes = msg.encode(AsnEncoding::FourByte);
        let mut slice = &bytes[..];
        let decoded = UpdateMessage::decode(&mut slice, AsnEncoding::FourByte).unwrap();
        prop_assert!(slice.is_empty());
        prop_assert_eq!(decoded, msg);
    }

    /// Two-byte encoding: a correct consumer always recovers the true path.
    #[test]
    fn as4_reconstruction_recovers_path(
        path in prop::collection::vec(arb_asn(), 1..10),
        nlri in prop::collection::vec(arb_prefix(), 1..3),
    ) {
        let msg = UpdateMessage::announcement(nlri, path.clone(), vec![]);
        let bytes = msg.encode(AsnEncoding::TwoByte);
        let mut slice = &bytes[..];
        let decoded = UpdateMessage::decode(&mut slice, AsnEncoding::TwoByte).unwrap();
        prop_assert_eq!(decoded.as_path().unwrap(), path.clone());
        // The legacy view substitutes AS_TRANS for every 4-byte ASN.
        let legacy = decoded.as_path_legacy().unwrap();
        for (orig, leg) in path.iter().zip(&legacy) {
            if orig.is_four_byte() {
                prop_assert!(leg.is_as_trans());
            } else {
                prop_assert_eq!(orig, leg);
            }
        }
    }

    /// The UPDATE decoder never panics on arbitrary bytes.
    #[test]
    fn update_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut slice = &bytes[..];
        let _ = UpdateMessage::decode(&mut slice, AsnEncoding::FourByte);
        let mut slice = &bytes[..];
        let _ = UpdateMessage::decode(&mut slice, AsnEncoding::TwoByte);
    }

    /// The MRT decoder never panics on arbitrary bytes.
    #[test]
    fn mrt_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut slice = &bytes[..];
        let _ = MrtRecord::decode(&mut slice);
        let _ = mrt::read_dump(&bytes);
    }

    /// A corrupted byte in a valid UPDATE either still decodes or errors —
    /// never panics (fault injection).
    #[test]
    fn update_corruption_is_graceful(
        path in prop::collection::vec(arb_asn(), 1..6),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let msg = UpdateMessage::announcement(
            vec![Ipv4Prefix::new(0xC000_0200, 24).unwrap()],
            path,
            vec![Community::new(174, 990)],
        );
        let mut bytes = msg.encode(AsnEncoding::FourByte);
        let idx = pos.index(bytes.len());
        bytes[idx] ^= xor;
        let mut slice = &bytes[..];
        let _ = UpdateMessage::decode(&mut slice, AsnEncoding::FourByte);
    }

    /// Full MRT dumps round-trip.
    #[test]
    fn dump_roundtrip(
        peer_asns in prop::collection::vec((arb_asn(), any::<bool>()), 1..5),
        prefixes in prop::collection::vec(arb_prefix(), 1..5),
    ) {
        let table = PeerIndexTable {
            collector_id: 7,
            view_name: "view".into(),
            peers: peer_asns
                .iter()
                .enumerate()
                .map(|(i, (asn, two))| PeerEntry {
                    bgp_id: i as u32,
                    addr: i as u32,
                    // A 16-bit session cannot carry a 4-byte peer ASN.
                    asn: if *two && asn.is_four_byte() { Asn(65_000) } else { *asn },
                    two_byte_only: *two,
                })
                .collect(),
        };
        let ribs: Vec<RibIpv4Unicast> = prefixes
            .iter()
            .enumerate()
            .map(|(i, p)| RibIpv4Unicast {
                sequence: i as u32,
                prefix: *p,
                entries: vec![RibEntry {
                    peer_index: (i % table.peers.len()) as u16,
                    originated: 0,
                    attributes: vec![PathAttribute::Origin(0)],
                }],
            })
            .collect();
        let bytes = mrt::write_dump(&table, &ribs, 1_522_540_800);
        let (t2, r2) = mrt::read_dump(&bytes).unwrap();
        prop_assert_eq!(t2, table);
        prop_assert_eq!(r2, ribs);
    }
}
