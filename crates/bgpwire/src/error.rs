//! Wire-format decoding errors.

use std::fmt;

/// Errors raised while decoding BGP or MRT bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes while `expected` more were needed for `context`.
    Truncated {
        /// What was being decoded.
        context: &'static str,
        /// How many more bytes were needed.
        expected: usize,
    },
    /// The 16-byte BGP marker was not all-ones.
    BadMarker,
    /// The BGP message type octet was not the expected value.
    UnexpectedMessageType {
        /// The type octet found.
        found: u8,
    },
    /// A declared length field is inconsistent with the surrounding structure.
    BadLength {
        /// What was being decoded.
        context: &'static str,
        /// The offending declared length.
        declared: usize,
    },
    /// A prefix length octet exceeded 32 bits.
    BadPrefixLength {
        /// The offending bit length.
        bits: u8,
    },
    /// An attribute's value was malformed.
    BadAttribute {
        /// Attribute type code.
        type_code: u8,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An AS_PATH segment type octet was invalid.
    BadSegmentKind {
        /// The offending segment-type octet.
        kind: u8,
    },
    /// An MRT record declared an unsupported type/subtype combination.
    UnsupportedMrt {
        /// MRT type.
        mrt_type: u16,
        /// MRT subtype.
        subtype: u16,
    },
    /// A RIB entry referenced a peer index not present in the peer table.
    UnknownPeerIndex {
        /// The offending index.
        index: u16,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context, expected } => {
                write!(
                    f,
                    "truncated input decoding {context}: needed {expected} more bytes"
                )
            }
            WireError::BadMarker => write!(f, "BGP marker is not all-ones"),
            WireError::UnexpectedMessageType { found } => {
                write!(f, "unexpected BGP message type {found}")
            }
            WireError::BadLength { context, declared } => {
                write!(f, "inconsistent length {declared} in {context}")
            }
            WireError::BadPrefixLength { bits } => write!(f, "prefix length {bits} > 32"),
            WireError::BadAttribute { type_code, reason } => {
                write!(f, "malformed attribute type {type_code}: {reason}")
            }
            WireError::BadSegmentKind { kind } => write!(f, "invalid AS_PATH segment kind {kind}"),
            WireError::UnsupportedMrt { mrt_type, subtype } => {
                write!(f, "unsupported MRT record {mrt_type}/{subtype}")
            }
            WireError::UnknownPeerIndex { index } => {
                write!(f, "RIB entry references unknown peer index {index}")
            }
        }
    }
}

impl std::error::Error for WireError {}
