//! BGP community attributes.
//!
//! Classic communities (RFC 1997) are the colon-separated `ASN:value` pairs
//! whose *documented meanings* are the paper's "best-effort" validation source;
//! large communities (RFC 8092) are the triplet form. The semantics layer
//! (which community means "learned from peer" etc.) lives in `valdata` — this
//! module is the wire representation only.

use crate::error::WireError;
use asgraph::Asn;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A classic RFC 1997 community: 16-bit ASN part and 16-bit value part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Community {
    /// The AS part (high 16 bits).
    pub asn: u16,
    /// The value part (low 16 bits).
    pub value: u16,
}

impl Community {
    /// `NO_EXPORT` (RFC 1997 well-known).
    pub const NO_EXPORT: Community = Community {
        asn: 0xFFFF,
        value: 0xFF01,
    };
    /// `NO_ADVERTISE` (RFC 1997 well-known).
    pub const NO_ADVERTISE: Community = Community {
        asn: 0xFFFF,
        value: 0xFF02,
    };
    /// `BLACKHOLE` (RFC 7999).
    pub const BLACKHOLE: Community = Community {
        asn: 0xFFFF,
        value: 0x029A,
    };

    /// Builds a community from its AS and value parts.
    #[must_use]
    pub fn new(asn: u16, value: u16) -> Self {
        Community { asn, value }
    }

    /// The packed 32-bit wire value.
    #[must_use]
    pub fn raw(self) -> u32 {
        (u32::from(self.asn) << 16) | u32::from(self.value)
    }

    /// Unpacks from the 32-bit wire value.
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        Community {
            asn: (raw >> 16) as u16,
            value: (raw & 0xFFFF) as u16,
        }
    }

    /// Encodes the 4-byte wire form.
    pub fn encode<B: BufMut>(self, buf: &mut B) {
        buf.put_u32(self.raw());
    }

    /// Decodes one community.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if buf.remaining() < 4 {
            return Err(WireError::Truncated {
                context: "community",
                expected: 4 - buf.remaining(),
            });
        }
        Ok(Community::from_raw(buf.get_u32()))
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn, self.value)
    }
}

impl FromStr for Community {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || WireError::BadAttribute {
            type_code: 8,
            reason: "bad community string",
        };
        let (a, v) = s.split_once(':').ok_or_else(err)?;
        Ok(Community {
            asn: a.parse().map_err(|_| err())?,
            value: v.parse().map_err(|_| err())?,
        })
    }
}

/// An RFC 8092 large community: `global:local1:local2`, each 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LargeCommunity {
    /// Global administrator (usually the tagging ASN).
    pub global: u32,
    /// First local data part.
    pub local1: u32,
    /// Second local data part.
    pub local2: u32,
}

impl LargeCommunity {
    /// Builds a large community.
    #[must_use]
    pub fn new(global: u32, local1: u32, local2: u32) -> Self {
        LargeCommunity {
            global,
            local1,
            local2,
        }
    }

    /// The tagging AS (global administrator) as an [`Asn`].
    #[must_use]
    pub fn tagger(self) -> Asn {
        Asn(self.global)
    }

    /// Encodes the 12-byte wire form.
    pub fn encode<B: BufMut>(self, buf: &mut B) {
        buf.put_u32(self.global);
        buf.put_u32(self.local1);
        buf.put_u32(self.local2);
    }

    /// Decodes one large community.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if buf.remaining() < 12 {
            return Err(WireError::Truncated {
                context: "large community",
                expected: 12 - buf.remaining(),
            });
        }
        Ok(LargeCommunity {
            global: buf.get_u32(),
            local1: buf.get_u32(),
            local2: buf.get_u32(),
        })
    }
}

impl fmt::Display for LargeCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.global, self.local1, self.local2)
    }
}

impl FromStr for LargeCommunity {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || WireError::BadAttribute {
            type_code: 32,
            reason: "bad large community string",
        };
        let mut parts = s.split(':');
        let g = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let l1 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let l2 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(LargeCommunity::new(g, l1, l2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn raw_roundtrip() {
        let c = Community::new(3356, 666);
        assert_eq!(Community::from_raw(c.raw()), c);
        assert_eq!(c.to_string(), "3356:666");
        assert_eq!("3356:666".parse::<Community>().unwrap(), c);
        assert!("3356".parse::<Community>().is_err());
        assert!("a:b".parse::<Community>().is_err());
    }

    #[test]
    fn wellknown_values() {
        assert_eq!(Community::NO_EXPORT.raw(), 0xFFFF_FF01);
        assert_eq!(Community::NO_ADVERTISE.raw(), 0xFFFF_FF02);
        assert_eq!(Community::BLACKHOLE.raw(), 0xFFFF_029A);
    }

    #[test]
    fn wire_roundtrip() {
        let c = Community::new(174, 990);
        let mut buf = BytesMut::new();
        c.encode(&mut buf);
        assert_eq!(buf.len(), 4);
        let mut s = &buf[..];
        assert_eq!(Community::decode(&mut s).unwrap(), c);

        let lc = LargeCommunity::new(200_000, 1, 2);
        let mut buf = BytesMut::new();
        lc.encode(&mut buf);
        assert_eq!(buf.len(), 12);
        let mut s = &buf[..];
        assert_eq!(LargeCommunity::decode(&mut s).unwrap(), lc);
        assert_eq!(lc.tagger(), Asn(200_000));
    }

    #[test]
    fn truncated_decode() {
        let mut s: &[u8] = &[0, 1];
        assert!(matches!(
            Community::decode(&mut s),
            Err(WireError::Truncated { .. })
        ));
        let mut s: &[u8] = &[0; 11];
        assert!(matches!(
            LargeCommunity::decode(&mut s),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn large_parse() {
        let lc: LargeCommunity = "4200000000:7:8".parse().unwrap();
        assert_eq!(lc, LargeCommunity::new(4_200_000_000, 7, 8));
        assert!("1:2".parse::<LargeCommunity>().is_err());
        assert!("1:2:3:4".parse::<LargeCommunity>().is_err());
    }
}
