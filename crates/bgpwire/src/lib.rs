//! # bgpwire — BGP and MRT wire formats
//!
//! Byte-level encoding/decoding for the data formats the paper's measurement
//! pipeline consumes:
//!
//! * **BGP UPDATE** messages (RFC 4271) with the path attributes relevant to
//!   relationship inference and community-based validation: `ORIGIN`,
//!   `AS_PATH`, `NEXT_HOP`, `COMMUNITIES` (RFC 1997), `LARGE_COMMUNITIES`
//!   (RFC 8092), and `AS4_PATH` (RFC 6793).
//! * **2-byte vs 4-byte ASN capability** (RFC 6793): encoding for a 16-bit-only
//!   peer substitutes `AS_TRANS` (23456) into `AS_PATH` and carries the true
//!   path in `AS4_PATH`. Tooling that ignores `AS4_PATH` produces AS paths —
//!   and, downstream, validation labels — involving AS23456. This is exactly
//!   the spurious-label class the paper removes in §4.2.
//! * **BGP OPEN / KEEPALIVE / NOTIFICATION** with capability advertisement
//!   (RFC 5492): the 4-octet-AS capability negotiation is where a session's
//!   [`AsnEncoding`] comes from.
//! * **MRT** `TABLE_DUMP_V2` RIB exports (RFC 6396): `PEER_INDEX_TABLE` plus
//!   `RIB_IPV4_UNICAST` records, as published by RouteViews / RIPE RIS.
//!
//! All decoders are panic-free on arbitrary input (property-tested) and return
//! structured [`WireError`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrs;
pub mod community;
pub mod error;
pub mod mrt;
pub mod open;
pub mod prefix;
pub mod update;

pub use attrs::{AsPathSegment, PathAttribute, SegmentKind};
pub use community::{Community, LargeCommunity};
pub use error::WireError;
pub use mrt::{MrtRecord, PeerEntry, PeerIndexTable, RibEntry, RibIpv4Unicast};
pub use open::{negotiate, Capability, NotificationMessage, OpenMessage, SessionParams};
pub use prefix::Ipv4Prefix;
pub use update::{AsnEncoding, UpdateMessage};
