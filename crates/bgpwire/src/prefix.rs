//! IPv4 prefixes and the BGP NLRI variable-length encoding.

use crate::error::WireError;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix in NLRI form: a network address plus a bit length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Builds a prefix, masking `addr` down to `len` bits. `len` must be ≤ 32.
    pub fn new(addr: u32, len: u8) -> Result<Self, WireError> {
        if len > 32 {
            return Err(WireError::BadPrefixLength { bits: len });
        }
        Ok(Ipv4Prefix {
            addr: addr & Self::mask(len),
            len,
        })
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// The masked network address.
    #[must_use]
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix bit length.
    #[must_use]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` for a zero-bit prefix (the default route).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` for the zero-length default route.
    #[must_use]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Number of address-covering host addresses (2^(32-len)).
    #[must_use]
    pub fn address_count(&self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }

    /// `true` if `other` is fully contained in `self`.
    #[must_use]
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// Encodes into the NLRI wire form: 1 length octet + ceil(len/8) address
    /// octets.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.len);
        let octets = self.addr.to_be_bytes();
        let n = usize::from(self.len).div_ceil(8);
        buf.put_slice(&octets[..n]);
    }

    /// Decodes one NLRI prefix from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated {
                context: "NLRI prefix length",
                expected: 1,
            });
        }
        let len = buf.get_u8();
        if len > 32 {
            return Err(WireError::BadPrefixLength { bits: len });
        }
        let n = usize::from(len).div_ceil(8);
        if buf.remaining() < n {
            return Err(WireError::Truncated {
                context: "NLRI prefix bytes",
                expected: n - buf.remaining(),
            });
        }
        let mut octets = [0u8; 4];
        for octet in octets.iter_mut().take(n) {
            *octet = buf.get_u8();
        }
        Ipv4Prefix::new(u32::from_be_bytes(octets), len)
    }

    /// Encoded size in bytes.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        1 + usize::from(self.len).div_ceil(8)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", o[0], o[1], o[2], o[3], self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || WireError::BadLength {
            context: "prefix string",
            declared: s.len(),
        };
        let (addr_s, len_s) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len_s.parse().map_err(|_| err())?;
        let mut octets = [0u8; 4];
        let mut it = addr_s.split('.');
        for octet in &mut octets {
            *octet = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        }
        if it.next().is_some() {
            return Err(err());
        }
        Ipv4Prefix::new(u32::from_be_bytes(octets), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn masks_host_bits() {
        let p = Ipv4Prefix::new(0xC0A8_01FF, 24).unwrap();
        assert_eq!(p.addr(), 0xC0A8_0100);
        assert_eq!(p.to_string(), "192.168.1.0/24");
    }

    #[test]
    fn rejects_long_prefix() {
        assert!(Ipv4Prefix::new(0, 33).is_err());
    }

    #[test]
    fn parse_roundtrip() {
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "192.0.2.0/24",
            "198.51.100.4/30",
            "1.2.3.4/32",
        ] {
            let p: Ipv4Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/40".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn wire_roundtrip_various_lengths() {
        for len in [0u8, 1, 7, 8, 9, 16, 17, 24, 25, 32] {
            let p = Ipv4Prefix::new(0xDEAD_BEEF, len).unwrap();
            let mut buf = BytesMut::new();
            p.encode(&mut buf);
            assert_eq!(buf.len(), p.wire_len());
            let mut slice = &buf[..];
            let decoded = Ipv4Prefix::decode(&mut slice).unwrap();
            assert_eq!(p, decoded);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn decode_truncated() {
        let mut empty: &[u8] = &[];
        assert!(matches!(
            Ipv4Prefix::decode(&mut empty),
            Err(WireError::Truncated { .. })
        ));
        let mut short: &[u8] = &[24, 192, 0]; // /24 needs 3 octets, has 2
        assert!(matches!(
            Ipv4Prefix::decode(&mut short),
            Err(WireError::Truncated { .. })
        ));
        let mut bad: &[u8] = &[60, 1, 2, 3, 4];
        assert!(matches!(
            Ipv4Prefix::decode(&mut bad),
            Err(WireError::BadPrefixLength { bits: 60 })
        ));
    }

    #[test]
    fn covers() {
        let p8: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let p24: Ipv4Prefix = "10.1.2.0/24".parse().unwrap();
        let other: Ipv4Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(p8.covers(&p24));
        assert!(!p24.covers(&p8));
        assert!(!p8.covers(&other));
        assert!(p8.covers(&p8));
        assert_eq!(p24.address_count(), 256);
    }
}
