//! BGP path attributes (RFC 4271 §4.3) — the subset used by route collectors
//! and relationship-inference pipelines.

use crate::community::{Community, LargeCommunity};
use crate::error::WireError;
use asgraph::Asn;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Attribute type codes.
pub mod type_code {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// COMMUNITIES (RFC 1997).
    pub const COMMUNITIES: u8 = 8;
    /// AS4_PATH (RFC 6793).
    pub const AS4_PATH: u8 = 17;
    /// LARGE_COMMUNITIES (RFC 8092).
    pub const LARGE_COMMUNITIES: u8 = 32;
}

mod flag {
    pub const OPTIONAL: u8 = 0x80;
    pub const TRANSITIVE: u8 = 0x40;
    pub const EXTENDED: u8 = 0x10;
}

/// How ASNs are encoded inside `AS_PATH` (RFC 6793 capability negotiation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsnEncoding {
    /// Legacy 16-bit peer: 4-byte ASNs are replaced with `AS_TRANS` in
    /// `AS_PATH` and the true path travels in `AS4_PATH`.
    TwoByte,
    /// 4-byte-capable peer (the modern default).
    FourByte,
}

/// AS_PATH segment kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Unordered set (route aggregation artefact).
    AsSet,
    /// Ordered sequence — the common case.
    AsSequence,
}

impl SegmentKind {
    fn as_u8(self) -> u8 {
        match self {
            SegmentKind::AsSet => 1,
            SegmentKind::AsSequence => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            1 => Ok(SegmentKind::AsSet),
            2 => Ok(SegmentKind::AsSequence),
            kind => Err(WireError::BadSegmentKind { kind }),
        }
    }
}

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsPathSegment {
    /// Segment kind.
    pub kind: SegmentKind,
    /// Member ASNs (≤ 255 per segment on the wire).
    pub asns: Vec<Asn>,
}

impl AsPathSegment {
    /// A sequence segment.
    #[must_use]
    pub fn sequence(asns: Vec<Asn>) -> Self {
        AsPathSegment {
            kind: SegmentKind::AsSequence,
            asns,
        }
    }
}

/// A decoded path attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathAttribute {
    /// ORIGIN: 0 = IGP, 1 = EGP, 2 = INCOMPLETE.
    Origin(u8),
    /// AS_PATH segments, ASN width per the session encoding.
    AsPath(Vec<AsPathSegment>),
    /// NEXT_HOP IPv4 address.
    NextHop(u32),
    /// MULTI_EXIT_DISC.
    Med(u32),
    /// LOCAL_PREF.
    LocalPref(u32),
    /// RFC 1997 communities.
    Communities(Vec<Community>),
    /// RFC 6793 AS4_PATH (always 4-byte ASNs).
    As4Path(Vec<AsPathSegment>),
    /// RFC 8092 large communities.
    LargeCommunities(Vec<LargeCommunity>),
    /// Anything else, preserved opaquely for transparent re-encoding.
    Unknown {
        /// Original flag octet.
        flags: u8,
        /// Attribute type code.
        type_code: u8,
        /// Raw value bytes.
        value: Vec<u8>,
    },
}

fn encode_segments<B: BufMut>(segments: &[AsPathSegment], enc: AsnEncoding, buf: &mut B) {
    for seg in segments {
        buf.put_u8(seg.kind.as_u8());
        buf.put_u8(seg.asns.len() as u8);
        for asn in &seg.asns {
            match enc {
                AsnEncoding::TwoByte => {
                    let wire = if asn.is_four_byte() {
                        asgraph::asn::AS_TRANS.0 as u16
                    } else {
                        asn.0 as u16
                    };
                    buf.put_u16(wire);
                }
                AsnEncoding::FourByte => buf.put_u32(asn.0),
            }
        }
    }
}

fn decode_segments(mut value: &[u8], enc: AsnEncoding) -> Result<Vec<AsPathSegment>, WireError> {
    let mut segments = Vec::new();
    while value.has_remaining() {
        if value.remaining() < 2 {
            return Err(WireError::Truncated {
                context: "AS_PATH segment header",
                expected: 2 - value.remaining(),
            });
        }
        let kind = SegmentKind::from_u8(value.get_u8())?;
        let count = usize::from(value.get_u8());
        let width = match enc {
            AsnEncoding::TwoByte => 2,
            AsnEncoding::FourByte => 4,
        };
        if value.remaining() < count * width {
            return Err(WireError::Truncated {
                context: "AS_PATH segment members",
                expected: count * width - value.remaining(),
            });
        }
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            let asn = match enc {
                AsnEncoding::TwoByte => u32::from(value.get_u16()),
                AsnEncoding::FourByte => value.get_u32(),
            };
            asns.push(Asn(asn));
        }
        segments.push(AsPathSegment { kind, asns });
    }
    Ok(segments)
}

impl PathAttribute {
    /// The attribute's type code.
    #[must_use]
    pub fn type_code(&self) -> u8 {
        match self {
            PathAttribute::Origin(_) => type_code::ORIGIN,
            PathAttribute::AsPath(_) => type_code::AS_PATH,
            PathAttribute::NextHop(_) => type_code::NEXT_HOP,
            PathAttribute::Med(_) => type_code::MED,
            PathAttribute::LocalPref(_) => type_code::LOCAL_PREF,
            PathAttribute::Communities(_) => type_code::COMMUNITIES,
            PathAttribute::As4Path(_) => type_code::AS4_PATH,
            PathAttribute::LargeCommunities(_) => type_code::LARGE_COMMUNITIES,
            PathAttribute::Unknown { type_code, .. } => *type_code,
        }
    }

    fn canonical_flags(&self) -> u8 {
        match self {
            PathAttribute::Origin(_)
            | PathAttribute::AsPath(_)
            | PathAttribute::NextHop(_)
            | PathAttribute::LocalPref(_) => flag::TRANSITIVE,
            PathAttribute::Med(_) => flag::OPTIONAL,
            PathAttribute::Communities(_)
            | PathAttribute::As4Path(_)
            | PathAttribute::LargeCommunities(_) => flag::OPTIONAL | flag::TRANSITIVE,
            PathAttribute::Unknown { flags, .. } => *flags & !flag::EXTENDED,
        }
    }

    fn encode_value(&self, enc: AsnEncoding) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            PathAttribute::Origin(v) => buf.put_u8(*v),
            PathAttribute::AsPath(segments) => encode_segments(segments, enc, &mut buf),
            PathAttribute::NextHop(v) | PathAttribute::Med(v) | PathAttribute::LocalPref(v) => {
                buf.put_u32(*v)
            }
            PathAttribute::Communities(cs) => {
                for c in cs {
                    c.encode(&mut buf);
                }
            }
            PathAttribute::As4Path(segments) => {
                encode_segments(segments, AsnEncoding::FourByte, &mut buf)
            }
            PathAttribute::LargeCommunities(lcs) => {
                for lc in lcs {
                    lc.encode(&mut buf);
                }
            }
            PathAttribute::Unknown { value, .. } => buf.put_slice(value),
        }
        buf.to_vec()
    }

    /// Encodes the full attribute (flags, type, length, value).
    pub fn encode<B: BufMut>(&self, enc: AsnEncoding, buf: &mut B) {
        let value = self.encode_value(enc);
        let mut flags = self.canonical_flags();
        if value.len() > 255 {
            flags |= flag::EXTENDED;
        }
        buf.put_u8(flags);
        buf.put_u8(self.type_code());
        if flags & flag::EXTENDED != 0 {
            buf.put_u16(value.len() as u16);
        } else {
            buf.put_u8(value.len() as u8);
        }
        buf.put_slice(&value);
    }

    /// Decodes one attribute from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B, enc: AsnEncoding) -> Result<Self, WireError> {
        if buf.remaining() < 3 {
            return Err(WireError::Truncated {
                context: "attribute header",
                expected: 3 - buf.remaining(),
            });
        }
        let flags = buf.get_u8();
        let tc = buf.get_u8();
        let len = if flags & flag::EXTENDED != 0 {
            if buf.remaining() < 2 {
                return Err(WireError::Truncated {
                    context: "attribute extended length",
                    expected: 2 - buf.remaining(),
                });
            }
            usize::from(buf.get_u16())
        } else {
            if buf.remaining() < 1 {
                return Err(WireError::Truncated {
                    context: "attribute length",
                    expected: 1,
                });
            }
            usize::from(buf.get_u8())
        };
        if buf.remaining() < len {
            return Err(WireError::Truncated {
                context: "attribute value",
                expected: len - buf.remaining(),
            });
        }
        let mut value = vec![0u8; len];
        buf.copy_to_slice(&mut value);
        let attr = match tc {
            type_code::ORIGIN => {
                if value.len() != 1 {
                    return Err(WireError::BadAttribute {
                        type_code: tc,
                        reason: "ORIGIN must be 1 byte",
                    });
                }
                // breval-lint: allow(L009) -- value.len() == 1 validated above
                PathAttribute::Origin(value[0])
            }
            type_code::AS_PATH => PathAttribute::AsPath(decode_segments(&value, enc)?),
            type_code::AS4_PATH => {
                PathAttribute::As4Path(decode_segments(&value, AsnEncoding::FourByte)?)
            }
            type_code::NEXT_HOP | type_code::MED | type_code::LOCAL_PREF => {
                if value.len() != 4 {
                    return Err(WireError::BadAttribute {
                        type_code: tc,
                        reason: "expected 4-byte value",
                    });
                }
                // breval-lint: allow(L009) -- value.len() == 4 validated above; indices 0..=3 are in bounds
                let v = u32::from_be_bytes([value[0], value[1], value[2], value[3]]);
                match tc {
                    type_code::NEXT_HOP => PathAttribute::NextHop(v),
                    type_code::MED => PathAttribute::Med(v),
                    _ => PathAttribute::LocalPref(v),
                }
            }
            type_code::COMMUNITIES => {
                if value.len() % 4 != 0 {
                    return Err(WireError::BadAttribute {
                        type_code: tc,
                        reason: "COMMUNITIES length not a multiple of 4",
                    });
                }
                let mut cs = Vec::with_capacity(value.len() / 4);
                let mut slice = &value[..];
                while slice.has_remaining() {
                    cs.push(Community::decode(&mut slice)?);
                }
                PathAttribute::Communities(cs)
            }
            type_code::LARGE_COMMUNITIES => {
                if value.len() % 12 != 0 {
                    return Err(WireError::BadAttribute {
                        type_code: tc,
                        reason: "LARGE_COMMUNITIES length not a multiple of 12",
                    });
                }
                let mut lcs = Vec::with_capacity(value.len() / 12);
                let mut slice = &value[..];
                while slice.has_remaining() {
                    lcs.push(LargeCommunity::decode(&mut slice)?);
                }
                PathAttribute::LargeCommunities(lcs)
            }
            _ => PathAttribute::Unknown {
                flags,
                type_code: tc,
                value,
            },
        };
        Ok(attr)
    }
}

/// Flattens AS_PATH segments into a hop list (AS_SET members are appended in
/// order — adequate for inference pipelines, which discard set paths anyway).
#[must_use]
pub fn flatten_segments(segments: &[AsPathSegment]) -> Vec<Asn> {
    segments
        .iter()
        .flat_map(|s| s.asns.iter().copied())
        .collect()
}

/// Reconstructs the true 4-byte path from an `AS_PATH` containing `AS_TRANS`
/// and the accompanying `AS4_PATH` (RFC 6793 §4.2.3).
///
/// The `AS4_PATH` replaces the *trailing* portion of the flattened `AS_PATH`;
/// leading entries (added by non-capable speakers) are preserved. If the
/// `AS4_PATH` is longer than the `AS_PATH`, the `AS_PATH` wins (per RFC).
#[must_use]
pub fn reconstruct_as4(as_path: &[Asn], as4_path: &[Asn]) -> Vec<Asn> {
    if as4_path.is_empty() || as4_path.len() > as_path.len() {
        return as_path.to_vec();
    }
    let keep = as_path.len() - as4_path.len();
    let mut out = Vec::with_capacity(as_path.len());
    out.extend_from_slice(&as_path[..keep]);
    out.extend_from_slice(as4_path);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(attr: &PathAttribute, enc: AsnEncoding) -> PathAttribute {
        let mut buf = BytesMut::new();
        attr.encode(enc, &mut buf);
        let mut slice = &buf[..];
        let decoded = PathAttribute::decode(&mut slice, enc).unwrap();
        assert!(slice.is_empty(), "trailing bytes after decode");
        decoded
    }

    #[test]
    fn origin_roundtrip() {
        let a = PathAttribute::Origin(0);
        assert_eq!(roundtrip(&a, AsnEncoding::FourByte), a);
    }

    #[test]
    fn aspath_roundtrip_four_byte() {
        let a = PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![
            Asn(3356),
            Asn(200_000),
            Asn(64_499),
        ])]);
        assert_eq!(roundtrip(&a, AsnEncoding::FourByte), a);
    }

    #[test]
    fn aspath_two_byte_substitutes_as_trans() {
        let a = PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![
            Asn(3356),
            Asn(200_000), // 4-byte only
        ])]);
        let decoded = roundtrip(&a, AsnEncoding::TwoByte);
        let PathAttribute::AsPath(segments) = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(
            flatten_segments(&segments),
            vec![Asn(3356), asgraph::asn::AS_TRANS]
        );
    }

    #[test]
    fn communities_roundtrip() {
        let a = PathAttribute::Communities(vec![Community::new(174, 990), Community::NO_EXPORT]);
        assert_eq!(roundtrip(&a, AsnEncoding::FourByte), a);
    }

    #[test]
    fn large_communities_roundtrip() {
        let a = PathAttribute::LargeCommunities(vec![LargeCommunity::new(200_000, 1, 2)]);
        assert_eq!(roundtrip(&a, AsnEncoding::FourByte), a);
    }

    #[test]
    fn extended_length_for_big_attrs() {
        // 100 communities = 400 bytes > 255 → extended length.
        let cs: Vec<Community> = (0..100).map(|i| Community::new(i, i)).collect();
        let a = PathAttribute::Communities(cs);
        assert_eq!(roundtrip(&a, AsnEncoding::FourByte), a);
    }

    #[test]
    fn unknown_attr_preserved() {
        let a = PathAttribute::Unknown {
            flags: 0xC0,
            type_code: 99,
            value: vec![1, 2, 3],
        };
        assert_eq!(roundtrip(&a, AsnEncoding::FourByte), a);
    }

    #[test]
    fn bad_inputs_error_not_panic() {
        let mut empty: &[u8] = &[];
        assert!(PathAttribute::decode(&mut empty, AsnEncoding::FourByte).is_err());
        // ORIGIN with wrong length.
        let mut bad: &[u8] = &[0x40, 1, 2, 0, 0];
        assert!(PathAttribute::decode(&mut bad, AsnEncoding::FourByte).is_err());
        // AS_PATH with bad segment kind.
        let mut bad: &[u8] = &[0x40, 2, 2, 9, 0];
        assert!(matches!(
            PathAttribute::decode(&mut bad, AsnEncoding::FourByte),
            Err(WireError::BadSegmentKind { kind: 9 })
        ));
        // COMMUNITIES with non-multiple-of-4 length.
        let mut bad: &[u8] = &[0xC0, 8, 3, 0, 0, 0];
        assert!(PathAttribute::decode(&mut bad, AsnEncoding::FourByte).is_err());
        // Declared length beyond buffer.
        let mut bad: &[u8] = &[0x40, 1, 200, 0];
        assert!(matches!(
            PathAttribute::decode(&mut bad, AsnEncoding::FourByte),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn as4_reconstruction() {
        // Path through a 16-bit speaker: [65001, AS_TRANS, AS_TRANS],
        // AS4_PATH carries the true tail [200001, 200002].
        let as_path = vec![Asn(65_001), Asn(23_456), Asn(23_456)];
        let as4 = vec![Asn(200_001), Asn(200_002)];
        assert_eq!(
            reconstruct_as4(&as_path, &as4),
            vec![Asn(65_001), Asn(200_001), Asn(200_002)]
        );
        // AS4_PATH longer than AS_PATH → keep AS_PATH.
        assert_eq!(reconstruct_as4(&[Asn(1)], &[Asn(2), Asn(3)]), vec![Asn(1)]);
        assert_eq!(reconstruct_as4(&[Asn(1)], &[]), vec![Asn(1)]);
    }
}
