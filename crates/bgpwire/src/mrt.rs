//! MRT export format (RFC 6396), `TABLE_DUMP_V2` subset — the format in which
//! route collectors (RouteViews, RIPE RIS) publish the RIB snapshots that the
//! paper's inference pipelines consume.

use crate::attrs::{AsnEncoding, PathAttribute};
use crate::error::WireError;
use crate::prefix::Ipv4Prefix;
use asgraph::Asn;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// MRT type for TABLE_DUMP_V2.
pub const TYPE_TABLE_DUMP_V2: u16 = 13;
/// Subtype: peer index table.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// Subtype: IPv4 unicast RIB.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;

/// One collector peer (vantage point) in the peer index table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerEntry {
    /// Peer BGP identifier.
    pub bgp_id: u32,
    /// Peer IPv4 address.
    pub addr: u32,
    /// Peer ASN.
    pub asn: Asn,
    /// `true` if the peering session is 16-bit-only (no 4-octet-AS capability).
    pub two_byte_only: bool,
}

/// The `PEER_INDEX_TABLE` record.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerIndexTable {
    /// Collector BGP identifier.
    pub collector_id: u32,
    /// Optional view name.
    pub view_name: String,
    /// Peers, indexable by RIB entries.
    pub peers: Vec<PeerEntry>,
}

/// One per-peer entry of a RIB record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// Index into the peer table.
    pub peer_index: u16,
    /// When the route was originated (unix time).
    pub originated: u32,
    /// BGP path attributes (4-byte ASN encoding, per RFC 6396 §4.3.4).
    pub attributes: Vec<PathAttribute>,
}

/// A `RIB_IPV4_UNICAST` record: all peers' routes for one prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibIpv4Unicast {
    /// Record sequence number.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Per-peer entries.
    pub entries: Vec<RibEntry>,
}

/// A decoded MRT record (supported subset).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MrtRecord {
    /// A peer index table.
    PeerIndexTable(PeerIndexTable),
    /// An IPv4 unicast RIB record.
    RibIpv4Unicast(RibIpv4Unicast),
}

impl PeerIndexTable {
    fn encode_body(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32(self.collector_id);
        buf.put_u16(self.view_name.len() as u16);
        buf.put_slice(self.view_name.as_bytes());
        buf.put_u16(self.peers.len() as u16);
        for p in &self.peers {
            // Bit 0: address family (0 = IPv4). Bit 1: AS size (1 = 32 bit).
            let peer_type = if p.two_byte_only { 0x00 } else { 0x02 };
            buf.put_u8(peer_type);
            buf.put_u32(p.bgp_id);
            buf.put_u32(p.addr);
            if p.two_byte_only {
                buf.put_u16(p.asn.0 as u16);
            } else {
                buf.put_u32(p.asn.0);
            }
        }
        buf.to_vec()
    }

    fn decode_body(mut body: &[u8]) -> Result<Self, WireError> {
        if body.remaining() < 8 {
            return Err(WireError::Truncated {
                context: "peer index table header",
                expected: 8 - body.remaining(),
            });
        }
        let collector_id = body.get_u32();
        let name_len = usize::from(body.get_u16());
        if body.remaining() < name_len {
            return Err(WireError::Truncated {
                context: "view name",
                expected: name_len - body.remaining(),
            });
        }
        let mut name = vec![0u8; name_len];
        body.copy_to_slice(&mut name);
        let view_name = String::from_utf8(name).map_err(|_| WireError::BadLength {
            context: "view name utf8",
            declared: name_len,
        })?;
        if body.remaining() < 2 {
            return Err(WireError::Truncated {
                context: "peer count",
                expected: 2,
            });
        }
        let count = usize::from(body.get_u16());
        let mut peers = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            if body.remaining() < 1 {
                return Err(WireError::Truncated {
                    context: "peer type",
                    expected: 1,
                });
            }
            let peer_type = body.get_u8();
            if peer_type & 0x01 != 0 {
                return Err(WireError::UnsupportedMrt {
                    mrt_type: TYPE_TABLE_DUMP_V2,
                    subtype: SUBTYPE_PEER_INDEX_TABLE,
                });
            }
            let two_byte_only = peer_type & 0x02 == 0;
            let need = 8 + if two_byte_only { 2 } else { 4 };
            if body.remaining() < need {
                return Err(WireError::Truncated {
                    context: "peer entry",
                    expected: need - body.remaining(),
                });
            }
            let bgp_id = body.get_u32();
            let addr = body.get_u32();
            let asn = if two_byte_only {
                Asn(u32::from(body.get_u16()))
            } else {
                Asn(body.get_u32())
            };
            peers.push(PeerEntry {
                bgp_id,
                addr,
                asn,
                two_byte_only,
            });
        }
        Ok(PeerIndexTable {
            collector_id,
            view_name,
            peers,
        })
    }
}

impl RibIpv4Unicast {
    fn encode_body(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32(self.sequence);
        self.prefix.encode(&mut buf);
        buf.put_u16(self.entries.len() as u16);
        for e in &self.entries {
            buf.put_u16(e.peer_index);
            buf.put_u32(e.originated);
            let mut attr_buf = BytesMut::new();
            for a in &e.attributes {
                a.encode(AsnEncoding::FourByte, &mut attr_buf);
            }
            buf.put_u16(attr_buf.len() as u16);
            buf.put_slice(&attr_buf);
        }
        buf.to_vec()
    }

    fn decode_body(mut body: &[u8]) -> Result<Self, WireError> {
        if body.remaining() < 4 {
            return Err(WireError::Truncated {
                context: "RIB sequence",
                expected: 4 - body.remaining(),
            });
        }
        let sequence = body.get_u32();
        let prefix = Ipv4Prefix::decode(&mut body)?;
        if body.remaining() < 2 {
            return Err(WireError::Truncated {
                context: "RIB entry count",
                expected: 2,
            });
        }
        let count = usize::from(body.get_u16());
        let mut entries = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            if body.remaining() < 8 {
                return Err(WireError::Truncated {
                    context: "RIB entry header",
                    expected: 8 - body.remaining(),
                });
            }
            let peer_index = body.get_u16();
            let originated = body.get_u32();
            let attr_len = usize::from(body.get_u16());
            if body.remaining() < attr_len {
                return Err(WireError::Truncated {
                    context: "RIB entry attributes",
                    expected: attr_len - body.remaining(),
                });
            }
            let mut attr_bytes = &body[..attr_len];
            body.advance(attr_len);
            let mut attributes = Vec::new();
            while attr_bytes.has_remaining() {
                attributes.push(PathAttribute::decode(
                    &mut attr_bytes,
                    AsnEncoding::FourByte,
                )?);
            }
            entries.push(RibEntry {
                peer_index,
                originated,
                attributes,
            });
        }
        Ok(RibIpv4Unicast {
            sequence,
            prefix,
            entries,
        })
    }
}

impl MrtRecord {
    /// Encodes the record with its MRT common header.
    #[must_use]
    pub fn encode(&self, timestamp: u32) -> Vec<u8> {
        let (subtype, body) = match self {
            MrtRecord::PeerIndexTable(t) => (SUBTYPE_PEER_INDEX_TABLE, t.encode_body()),
            MrtRecord::RibIpv4Unicast(r) => (SUBTYPE_RIB_IPV4_UNICAST, r.encode_body()),
        };
        let mut buf = BytesMut::with_capacity(12 + body.len());
        buf.put_u32(timestamp);
        buf.put_u16(TYPE_TABLE_DUMP_V2);
        buf.put_u16(subtype);
        buf.put_u32(body.len() as u32);
        buf.put_slice(&body);
        buf.to_vec()
    }

    /// Decodes one record from the front of `buf`, returning its timestamp.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<(u32, Self), WireError> {
        if buf.remaining() < 12 {
            return Err(WireError::Truncated {
                context: "MRT header",
                expected: 12 - buf.remaining(),
            });
        }
        let timestamp = buf.get_u32();
        let mrt_type = buf.get_u16();
        let subtype = buf.get_u16();
        let length = buf.get_u32() as usize;
        if buf.remaining() < length {
            return Err(WireError::Truncated {
                context: "MRT body",
                expected: length - buf.remaining(),
            });
        }
        let mut body = vec![0u8; length];
        buf.copy_to_slice(&mut body);
        if mrt_type != TYPE_TABLE_DUMP_V2 {
            return Err(WireError::UnsupportedMrt { mrt_type, subtype });
        }
        let record = match subtype {
            SUBTYPE_PEER_INDEX_TABLE => {
                MrtRecord::PeerIndexTable(PeerIndexTable::decode_body(&body)?)
            }
            SUBTYPE_RIB_IPV4_UNICAST => {
                MrtRecord::RibIpv4Unicast(RibIpv4Unicast::decode_body(&body)?)
            }
            _ => return Err(WireError::UnsupportedMrt { mrt_type, subtype }),
        };
        Ok((timestamp, record))
    }
}

/// Writes a complete RIB dump: peer index table followed by the RIB records.
#[must_use]
pub fn write_dump(table: &PeerIndexTable, ribs: &[RibIpv4Unicast], timestamp: u32) -> Vec<u8> {
    let mut out = MrtRecord::PeerIndexTable(table.clone()).encode(timestamp);
    for rib in ribs {
        out.extend_from_slice(&MrtRecord::RibIpv4Unicast(rib.clone()).encode(timestamp));
    }
    out
}

/// Reads a complete RIB dump produced by [`write_dump`]. The peer index table
/// must precede any RIB record (as in real collector dumps), and every RIB
/// entry must reference a valid peer index.
pub fn read_dump(bytes: &[u8]) -> Result<(PeerIndexTable, Vec<RibIpv4Unicast>), WireError> {
    let mut slice = bytes;
    let mut table: Option<PeerIndexTable> = None;
    let mut ribs = Vec::new();
    while slice.has_remaining() {
        let (_, record) = MrtRecord::decode(&mut slice)?;
        match record {
            MrtRecord::PeerIndexTable(t) => table = Some(t),
            MrtRecord::RibIpv4Unicast(r) => {
                let t = table.as_ref().ok_or(WireError::UnsupportedMrt {
                    mrt_type: TYPE_TABLE_DUMP_V2,
                    subtype: SUBTYPE_RIB_IPV4_UNICAST,
                })?;
                for e in &r.entries {
                    if usize::from(e.peer_index) >= t.peers.len() {
                        return Err(WireError::UnknownPeerIndex {
                            index: e.peer_index,
                        });
                    }
                }
                ribs.push(r);
            }
        }
    }
    let table = table.ok_or(WireError::Truncated {
        context: "peer index table",
        expected: 12,
    })?;
    Ok((table, ribs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPathSegment;

    fn sample_table() -> PeerIndexTable {
        PeerIndexTable {
            collector_id: 0xC0A8_0001,
            view_name: "rrc00".into(),
            peers: vec![
                PeerEntry {
                    bgp_id: 1,
                    addr: 0x0A00_0001,
                    asn: Asn(3356),
                    two_byte_only: false,
                },
                PeerEntry {
                    bgp_id: 2,
                    addr: 0x0A00_0002,
                    asn: Asn(65_010),
                    two_byte_only: true,
                },
            ],
        }
    }

    fn sample_rib(seq: u32) -> RibIpv4Unicast {
        RibIpv4Unicast {
            sequence: seq,
            prefix: "203.0.113.0/24".parse().unwrap(),
            entries: vec![RibEntry {
                peer_index: 0,
                originated: 1_522_540_800,
                attributes: vec![
                    PathAttribute::Origin(0),
                    PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![
                        Asn(3356),
                        Asn(200_000),
                    ])]),
                    PathAttribute::NextHop(0x0A00_0001),
                ],
            }],
        }
    }

    #[test]
    fn record_roundtrip() {
        for record in [
            MrtRecord::PeerIndexTable(sample_table()),
            MrtRecord::RibIpv4Unicast(sample_rib(7)),
        ] {
            let bytes = record.encode(1_522_540_800);
            let mut slice = &bytes[..];
            let (ts, decoded) = MrtRecord::decode(&mut slice).unwrap();
            assert!(slice.is_empty());
            assert_eq!(ts, 1_522_540_800);
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn dump_roundtrip() {
        let table = sample_table();
        let ribs = vec![sample_rib(0), sample_rib(1)];
        let bytes = write_dump(&table, &ribs, 42);
        let (t2, r2) = read_dump(&bytes).unwrap();
        assert_eq!(t2, table);
        assert_eq!(r2, ribs);
    }

    #[test]
    fn rib_before_table_rejected() {
        let bytes = MrtRecord::RibIpv4Unicast(sample_rib(0)).encode(42);
        assert!(read_dump(&bytes).is_err());
    }

    #[test]
    fn unknown_peer_index_rejected() {
        let table = sample_table();
        let mut rib = sample_rib(0);
        rib.entries[0].peer_index = 99;
        let bytes = write_dump(&table, &[rib], 42);
        assert!(matches!(
            read_dump(&bytes),
            Err(WireError::UnknownPeerIndex { index: 99 })
        ));
    }

    #[test]
    fn unsupported_type_rejected() {
        let mut bytes = MrtRecord::PeerIndexTable(sample_table()).encode(42);
        bytes[4] = 0;
        bytes[5] = 16; // type 16 = BGP4MP
        let mut slice = &bytes[..];
        assert!(matches!(
            MrtRecord::decode(&mut slice),
            Err(WireError::UnsupportedMrt { mrt_type: 16, .. })
        ));
    }

    #[test]
    fn truncated_inputs_error() {
        let bytes = write_dump(&sample_table(), &[sample_rib(0)], 42);
        for cut in [1, 11, 13, bytes.len() - 1] {
            assert!(read_dump(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn two_byte_peer_roundtrips() {
        let table = sample_table();
        let bytes = MrtRecord::PeerIndexTable(table.clone()).encode(0);
        let mut slice = &bytes[..];
        let (_, decoded) = MrtRecord::decode(&mut slice).unwrap();
        let MrtRecord::PeerIndexTable(t) = decoded else {
            panic!("wrong variant")
        };
        assert!(t.peers[1].two_byte_only);
        assert_eq!(t.peers[1].asn, Asn(65_010));
    }
}
