//! BGP UPDATE messages (RFC 4271 §4.3).

pub use crate::attrs::AsnEncoding;
use crate::attrs::{flatten_segments, reconstruct_as4, AsPathSegment, PathAttribute};
use crate::community::Community;
use crate::error::WireError;
use crate::prefix::Ipv4Prefix;
use asgraph::Asn;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

const MARKER: [u8; 16] = [0xFF; 16];
const MSG_TYPE_UPDATE: u8 = 2;
/// BGP maximum message size (RFC 4271).
pub const MAX_MESSAGE_SIZE: usize = 4096;

/// A BGP UPDATE message.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateMessage {
    /// Withdrawn routes.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Path attributes.
    pub attributes: Vec<PathAttribute>,
    /// Announced prefixes.
    pub nlri: Vec<Ipv4Prefix>,
}

impl UpdateMessage {
    /// Convenience constructor for an announcement of `nlri` with the given
    /// path and communities. When encoded for a [`AsnEncoding::TwoByte`] peer,
    /// an `AS4_PATH` is automatically included if the path contains 4-byte
    /// ASNs (RFC 6793 behaviour).
    #[must_use]
    pub fn announcement(
        nlri: Vec<Ipv4Prefix>,
        path: Vec<Asn>,
        communities: Vec<Community>,
    ) -> Self {
        let mut attributes = vec![
            PathAttribute::Origin(0),
            PathAttribute::AsPath(vec![AsPathSegment::sequence(path)]),
            PathAttribute::NextHop(0x0A00_0001),
        ];
        if !communities.is_empty() {
            attributes.push(PathAttribute::Communities(communities));
        }
        UpdateMessage {
            withdrawn: Vec::new(),
            attributes,
            nlri,
        }
    }

    /// A pure withdrawal.
    #[must_use]
    pub fn withdrawal(withdrawn: Vec<Ipv4Prefix>) -> Self {
        UpdateMessage {
            withdrawn,
            attributes: Vec::new(),
            nlri: Vec::new(),
        }
    }

    /// The flattened AS path with RFC 6793 `AS4_PATH` reconstruction applied —
    /// what a *modern, correct* consumer sees.
    #[must_use]
    pub fn as_path(&self) -> Option<Vec<Asn>> {
        let as_path = self.as_path_legacy()?;
        let as4: Option<Vec<Asn>> = self.attributes.iter().find_map(|a| match a {
            PathAttribute::As4Path(segments) => Some(flatten_segments(segments)),
            _ => None,
        });
        Some(match as4 {
            Some(as4) => reconstruct_as4(&as_path, &as4),
            None => as_path,
        })
    }

    /// The flattened AS path *without* `AS4_PATH` reconstruction — what legacy
    /// tooling sees. Paths through 16-bit speakers contain literal `AS_TRANS`
    /// hops here; this is the §4.2 spurious-label source.
    #[must_use]
    pub fn as_path_legacy(&self) -> Option<Vec<Asn>> {
        self.attributes.iter().find_map(|a| match a {
            PathAttribute::AsPath(segments) => Some(flatten_segments(segments)),
            _ => None,
        })
    }

    /// All RFC 1997 communities on the message.
    #[must_use]
    pub fn communities(&self) -> Vec<Community> {
        self.attributes
            .iter()
            .filter_map(|a| match a {
                PathAttribute::Communities(cs) => Some(cs.clone()),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// Encodes the message (header included) for a peer with the given ASN
    /// encoding. For a two-byte peer, a synthetic `AS4_PATH` attribute is
    /// appended when the AS path contains 4-byte ASNs and no `AS4_PATH` is
    /// already present.
    #[must_use]
    pub fn encode(&self, enc: AsnEncoding) -> Vec<u8> {
        let mut body = BytesMut::new();

        let mut withdrawn_buf = BytesMut::new();
        for p in &self.withdrawn {
            p.encode(&mut withdrawn_buf);
        }
        body.put_u16(withdrawn_buf.len() as u16);
        body.put_slice(&withdrawn_buf);

        let mut attr_buf = BytesMut::new();
        let needs_as4 = enc == AsnEncoding::TwoByte
            && !self
                .attributes
                .iter()
                .any(|a| matches!(a, PathAttribute::As4Path(_)))
            && self.attributes.iter().any(|a| {
                matches!(a, PathAttribute::AsPath(segs)
                    if segs.iter().flat_map(|s| &s.asns).any(|asn| asn.is_four_byte()))
            });
        for a in &self.attributes {
            a.encode(enc, &mut attr_buf);
        }
        if needs_as4 {
            let true_path: Vec<AsPathSegment> = self
                .attributes
                .iter()
                .find_map(|a| match a {
                    PathAttribute::AsPath(segs) => Some(segs.clone()),
                    _ => None,
                })
                .unwrap_or_default();
            PathAttribute::As4Path(true_path).encode(enc, &mut attr_buf);
        }
        body.put_u16(attr_buf.len() as u16);
        body.put_slice(&attr_buf);

        for p in &self.nlri {
            p.encode(&mut body);
        }

        let mut out = BytesMut::with_capacity(19 + body.len());
        out.put_slice(&MARKER);
        out.put_u16((19 + body.len()) as u16);
        out.put_u8(MSG_TYPE_UPDATE);
        out.put_slice(&body);
        out.to_vec()
    }

    /// Decodes one UPDATE from the front of `buf`, advancing it past the
    /// message.
    pub fn decode<B: Buf>(buf: &mut B, enc: AsnEncoding) -> Result<Self, WireError> {
        if buf.remaining() < 19 {
            return Err(WireError::Truncated {
                context: "BGP header",
                expected: 19 - buf.remaining(),
            });
        }
        let mut marker = [0u8; 16];
        buf.copy_to_slice(&mut marker);
        if marker != MARKER {
            return Err(WireError::BadMarker);
        }
        let length = usize::from(buf.get_u16());
        let msg_type = buf.get_u8();
        if msg_type != MSG_TYPE_UPDATE {
            return Err(WireError::UnexpectedMessageType { found: msg_type });
        }
        if !(19..=MAX_MESSAGE_SIZE).contains(&length) {
            return Err(WireError::BadLength {
                context: "BGP message length",
                declared: length,
            });
        }
        let body_len = length - 19;
        if buf.remaining() < body_len {
            return Err(WireError::Truncated {
                context: "BGP UPDATE body",
                expected: body_len - buf.remaining(),
            });
        }
        let mut body = vec![0u8; body_len];
        buf.copy_to_slice(&mut body);
        let mut body = &body[..];

        if body.remaining() < 2 {
            return Err(WireError::Truncated {
                context: "withdrawn routes length",
                expected: 2,
            });
        }
        let withdrawn_len = usize::from(body.get_u16());
        if body.remaining() < withdrawn_len {
            return Err(WireError::BadLength {
                context: "withdrawn routes",
                declared: withdrawn_len,
            });
        }
        let mut withdrawn_bytes = &body[..withdrawn_len];
        body.advance(withdrawn_len);
        let mut withdrawn = Vec::new();
        while withdrawn_bytes.has_remaining() {
            withdrawn.push(Ipv4Prefix::decode(&mut withdrawn_bytes)?);
        }

        if body.remaining() < 2 {
            return Err(WireError::Truncated {
                context: "path attribute length",
                expected: 2,
            });
        }
        let attr_len = usize::from(body.get_u16());
        if body.remaining() < attr_len {
            return Err(WireError::BadLength {
                context: "path attributes",
                declared: attr_len,
            });
        }
        let mut attr_bytes = &body[..attr_len];
        body.advance(attr_len);
        let mut attributes = Vec::new();
        while attr_bytes.has_remaining() {
            attributes.push(PathAttribute::decode(&mut attr_bytes, enc)?);
        }

        let mut nlri = Vec::new();
        while body.has_remaining() {
            nlri.push(Ipv4Prefix::decode(&mut body)?);
        }

        Ok(UpdateMessage {
            withdrawn,
            attributes,
            nlri,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip_four_byte() {
        let msg = UpdateMessage::announcement(
            vec![prefix("192.0.2.0/24"), prefix("198.51.100.0/24")],
            vec![Asn(3356), Asn(200_000), Asn(64_499)],
            vec![Community::new(3356, 100)],
        );
        let bytes = msg.encode(AsnEncoding::FourByte);
        let mut slice = &bytes[..];
        let decoded = UpdateMessage::decode(&mut slice, AsnEncoding::FourByte).unwrap();
        assert!(slice.is_empty());
        assert_eq!(decoded, msg);
        assert_eq!(
            decoded.as_path().unwrap(),
            vec![Asn(3356), Asn(200_000), Asn(64_499)]
        );
        assert_eq!(decoded.communities(), vec![Community::new(3356, 100)]);
    }

    #[test]
    fn two_byte_peer_produces_as_trans_and_as4_path() {
        let msg = UpdateMessage::announcement(
            vec![prefix("192.0.2.0/24")],
            vec![Asn(3356), Asn(200_000)],
            vec![],
        );
        let bytes = msg.encode(AsnEncoding::TwoByte);
        let mut slice = &bytes[..];
        let decoded = UpdateMessage::decode(&mut slice, AsnEncoding::TwoByte).unwrap();
        // Legacy view contains AS_TRANS …
        assert_eq!(
            decoded.as_path_legacy().unwrap(),
            vec![Asn(3356), asgraph::asn::AS_TRANS]
        );
        // … but a correct consumer reconstructs the true path.
        assert_eq!(decoded.as_path().unwrap(), vec![Asn(3356), Asn(200_000)]);
    }

    #[test]
    fn two_byte_peer_without_big_asns_has_no_as4_path() {
        let msg = UpdateMessage::announcement(
            vec![prefix("192.0.2.0/24")],
            vec![Asn(3356), Asn(174)],
            vec![],
        );
        let bytes = msg.encode(AsnEncoding::TwoByte);
        let mut slice = &bytes[..];
        let decoded = UpdateMessage::decode(&mut slice, AsnEncoding::TwoByte).unwrap();
        assert!(!decoded
            .attributes
            .iter()
            .any(|a| matches!(a, PathAttribute::As4Path(_))));
        assert_eq!(decoded.as_path().unwrap(), vec![Asn(3356), Asn(174)]);
    }

    #[test]
    fn withdrawal_roundtrip() {
        let msg = UpdateMessage::withdrawal(vec![prefix("10.0.0.0/8")]);
        let bytes = msg.encode(AsnEncoding::FourByte);
        let mut slice = &bytes[..];
        let decoded = UpdateMessage::decode(&mut slice, AsnEncoding::FourByte).unwrap();
        assert_eq!(decoded, msg);
        assert!(decoded.as_path().is_none());
    }

    #[test]
    fn rejects_bad_marker_and_type() {
        let msg = UpdateMessage::withdrawal(vec![]);
        let mut bytes = msg.encode(AsnEncoding::FourByte);
        bytes[0] = 0x00;
        let mut slice = &bytes[..];
        assert_eq!(
            UpdateMessage::decode(&mut slice, AsnEncoding::FourByte),
            Err(WireError::BadMarker)
        );

        let mut bytes = msg.encode(AsnEncoding::FourByte);
        bytes[18] = 1; // OPEN
        let mut slice = &bytes[..];
        assert!(matches!(
            UpdateMessage::decode(&mut slice, AsnEncoding::FourByte),
            Err(WireError::UnexpectedMessageType { found: 1 })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let msg =
            UpdateMessage::announcement(vec![prefix("192.0.2.0/24")], vec![Asn(1), Asn(2)], vec![]);
        let bytes = msg.encode(AsnEncoding::FourByte);
        for cut in [0, 5, 18, bytes.len() - 1] {
            let mut slice = &bytes[..cut];
            assert!(
                UpdateMessage::decode(&mut slice, AsnEncoding::FourByte).is_err(),
                "cut at {cut} must error"
            );
        }
    }
}
