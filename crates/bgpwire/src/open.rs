//! BGP OPEN, KEEPALIVE and NOTIFICATION messages (RFC 4271 §4.2/4.4/4.5)
//! with capability advertisement (RFC 5492) — in particular the 4-octet-AS
//! capability (RFC 6793) whose absence is what turns a collector session into
//! an `AS_TRANS` producer.

use crate::error::WireError;
use asgraph::{asn::AS_TRANS, Asn};
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

const MARKER: [u8; 16] = [0xFF; 16];
const MSG_TYPE_OPEN: u8 = 1;
const MSG_TYPE_NOTIFICATION: u8 = 3;
const MSG_TYPE_KEEPALIVE: u8 = 4;
const PARAM_CAPABILITIES: u8 = 2;

/// A BGP capability (RFC 5492 registry subset).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Capability {
    /// Multiprotocol extensions for IPv4 unicast (code 1).
    MultiprotocolIpv4Unicast,
    /// Route refresh (code 2).
    RouteRefresh,
    /// 4-octet AS numbers (code 65, RFC 6793) carrying the speaker's real ASN.
    FourByteAsn(Asn),
    /// Anything else, preserved opaquely.
    Unknown {
        /// Capability code.
        code: u8,
        /// Raw value bytes.
        value: Vec<u8>,
    },
}

impl Capability {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            Capability::MultiprotocolIpv4Unicast => {
                buf.put_u8(1);
                buf.put_u8(4);
                buf.put_u16(1); // AFI IPv4
                buf.put_u8(0); // reserved
                buf.put_u8(1); // SAFI unicast
            }
            Capability::RouteRefresh => {
                buf.put_u8(2);
                buf.put_u8(0);
            }
            Capability::FourByteAsn(asn) => {
                buf.put_u8(65);
                buf.put_u8(4);
                buf.put_u32(asn.0);
            }
            Capability::Unknown { code, value } => {
                buf.put_u8(*code);
                buf.put_u8(value.len() as u8);
                buf.put_slice(value);
            }
        }
    }

    fn decode(code: u8, value: &[u8]) -> Result<Self, WireError> {
        match code {
            1 if value.len() == 4 => Ok(Capability::MultiprotocolIpv4Unicast),
            2 if value.is_empty() => Ok(Capability::RouteRefresh),
            65 => {
                if value.len() != 4 {
                    return Err(WireError::BadAttribute {
                        type_code: 65,
                        reason: "4-octet AS capability must be 4 bytes",
                    });
                }
                Ok(Capability::FourByteAsn(Asn(u32::from_be_bytes([
                    // breval-lint: allow(L009) -- value.len() == 4 validated above; indices 0..=3 are in bounds
                    value[0], value[1], value[2], value[3],
                ]))))
            }
            _ => Ok(Capability::Unknown {
                code,
                value: value.to_vec(),
            }),
        }
    }
}

/// A BGP OPEN message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpenMessage {
    /// The speaker's ASN; encoded as `AS_TRANS` in the 16-bit field when it
    /// does not fit, with the true value in the 4-octet-AS capability.
    pub asn: Asn,
    /// Proposed hold time (seconds).
    pub hold_time: u16,
    /// BGP identifier.
    pub bgp_id: u32,
    /// Advertised capabilities.
    pub capabilities: Vec<Capability>,
}

impl OpenMessage {
    /// A modern OPEN: multiprotocol + route-refresh + 4-octet AS.
    #[must_use]
    pub fn modern(asn: Asn, bgp_id: u32) -> Self {
        OpenMessage {
            asn,
            hold_time: 180,
            bgp_id,
            capabilities: vec![
                Capability::MultiprotocolIpv4Unicast,
                Capability::RouteRefresh,
                Capability::FourByteAsn(asn),
            ],
        }
    }

    /// A legacy 16-bit-only OPEN (no 4-octet-AS capability). The speaker's
    /// own ASN must fit in 16 bits.
    #[must_use]
    pub fn legacy(asn: Asn, bgp_id: u32) -> Self {
        OpenMessage {
            asn,
            hold_time: 180,
            bgp_id,
            capabilities: vec![Capability::MultiprotocolIpv4Unicast],
        }
    }

    /// The speaker's 4-octet-AS capability value, if advertised.
    #[must_use]
    pub fn four_byte_asn(&self) -> Option<Asn> {
        self.capabilities.iter().find_map(|c| match c {
            Capability::FourByteAsn(a) => Some(*a),
            _ => None,
        })
    }

    /// Encodes the message (header included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut caps = BytesMut::new();
        for c in &self.capabilities {
            c.encode(&mut caps);
        }
        let mut body = BytesMut::new();
        body.put_u8(4); // version
        let my_as16: u16 = if self.asn.is_four_byte() {
            AS_TRANS.0 as u16
        } else {
            self.asn.0 as u16
        };
        body.put_u16(my_as16);
        body.put_u16(self.hold_time);
        body.put_u32(self.bgp_id);
        if caps.is_empty() {
            body.put_u8(0);
        } else {
            body.put_u8((caps.len() + 2) as u8); // optional params length
            body.put_u8(PARAM_CAPABILITIES);
            body.put_u8(caps.len() as u8);
            body.put_slice(&caps);
        }
        let mut out = BytesMut::with_capacity(19 + body.len());
        out.put_slice(&MARKER);
        out.put_u16((19 + body.len()) as u16);
        out.put_u8(MSG_TYPE_OPEN);
        out.put_slice(&body);
        out.to_vec()
    }

    /// Decodes one OPEN from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let body = read_message(buf, MSG_TYPE_OPEN)?;
        let mut body = &body[..];
        if body.remaining() < 10 {
            return Err(WireError::Truncated {
                context: "OPEN body",
                expected: 10 - body.remaining(),
            });
        }
        let version = body.get_u8();
        if version != 4 {
            return Err(WireError::BadLength {
                context: "BGP version",
                declared: usize::from(version),
            });
        }
        let as16 = body.get_u16();
        let hold_time = body.get_u16();
        let bgp_id = body.get_u32();
        let opt_len = usize::from(body.get_u8());
        if body.remaining() < opt_len {
            return Err(WireError::Truncated {
                context: "OPEN optional parameters",
                expected: opt_len - body.remaining(),
            });
        }
        let mut params = &body[..opt_len];
        let mut capabilities = Vec::new();
        while params.has_remaining() {
            if params.remaining() < 2 {
                return Err(WireError::Truncated {
                    context: "optional parameter header",
                    expected: 2 - params.remaining(),
                });
            }
            let ptype = params.get_u8();
            let plen = usize::from(params.get_u8());
            if params.remaining() < plen {
                return Err(WireError::Truncated {
                    context: "optional parameter value",
                    expected: plen - params.remaining(),
                });
            }
            let mut pval = &params[..plen];
            params.advance(plen);
            if ptype != PARAM_CAPABILITIES {
                continue;
            }
            while pval.has_remaining() {
                if pval.remaining() < 2 {
                    return Err(WireError::Truncated {
                        context: "capability header",
                        expected: 2 - pval.remaining(),
                    });
                }
                let code = pval.get_u8();
                let clen = usize::from(pval.get_u8());
                if pval.remaining() < clen {
                    return Err(WireError::Truncated {
                        context: "capability value",
                        expected: clen - pval.remaining(),
                    });
                }
                let value = &pval[..clen];
                capabilities.push(Capability::decode(code, value)?);
                pval.advance(clen);
            }
        }
        // Reconstruct the true ASN: the capability wins over the 16-bit field.
        let asn = capabilities
            .iter()
            .find_map(|c| match c {
                Capability::FourByteAsn(a) => Some(*a),
                _ => None,
            })
            .unwrap_or(Asn(u32::from(as16)));
        Ok(OpenMessage {
            asn,
            hold_time,
            bgp_id,
            capabilities,
        })
    }
}

/// Negotiated session properties derived from the two OPENs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionParams {
    /// ASN encoding for UPDATE messages: 4-byte iff both sides advertise the
    /// RFC 6793 capability.
    pub asn_encoding: crate::attrs::AsnEncoding,
    /// Agreed hold time (minimum of the two proposals).
    pub hold_time: u16,
}

/// Negotiates session parameters from both OPENs.
#[must_use]
pub fn negotiate(local: &OpenMessage, remote: &OpenMessage) -> SessionParams {
    let four_byte = local.four_byte_asn().is_some() && remote.four_byte_asn().is_some();
    SessionParams {
        asn_encoding: if four_byte {
            crate::attrs::AsnEncoding::FourByte
        } else {
            crate::attrs::AsnEncoding::TwoByte
        },
        hold_time: local.hold_time.min(remote.hold_time),
    }
}

/// A BGP NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NotificationMessage {
    /// Error code.
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl NotificationMessage {
    /// Encodes the message (header included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = BytesMut::with_capacity(21 + self.data.len());
        out.put_slice(&MARKER);
        out.put_u16((21 + self.data.len()) as u16);
        out.put_u8(MSG_TYPE_NOTIFICATION);
        out.put_u8(self.code);
        out.put_u8(self.subcode);
        out.put_slice(&self.data);
        out.to_vec()
    }

    /// Decodes one NOTIFICATION from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let body = read_message(buf, MSG_TYPE_NOTIFICATION)?;
        if body.len() < 2 {
            return Err(WireError::Truncated {
                context: "NOTIFICATION body",
                expected: 2 - body.len(),
            });
        }
        Ok(NotificationMessage {
            // breval-lint: allow(L009) -- body.len() >= 2 enforced by the Truncated early return above
            code: body[0],
            // breval-lint: allow(L009) -- body.len() >= 2 enforced by the Truncated early return above
            subcode: body[1],
            data: body[2..].to_vec(),
        })
    }
}

/// Encodes a KEEPALIVE message.
#[must_use]
pub fn keepalive() -> Vec<u8> {
    let mut out = BytesMut::with_capacity(19);
    out.put_slice(&MARKER);
    out.put_u16(19);
    out.put_u8(MSG_TYPE_KEEPALIVE);
    out.to_vec()
}

/// Reads one message of the expected type and returns its body.
fn read_message<B: Buf>(buf: &mut B, expected_type: u8) -> Result<Vec<u8>, WireError> {
    if buf.remaining() < 19 {
        return Err(WireError::Truncated {
            context: "BGP header",
            expected: 19 - buf.remaining(),
        });
    }
    let mut marker = [0u8; 16];
    buf.copy_to_slice(&mut marker);
    if marker != MARKER {
        return Err(WireError::BadMarker);
    }
    let length = usize::from(buf.get_u16());
    let msg_type = buf.get_u8();
    if msg_type != expected_type {
        return Err(WireError::UnexpectedMessageType { found: msg_type });
    }
    if !(19..=crate::update::MAX_MESSAGE_SIZE).contains(&length) {
        return Err(WireError::BadLength {
            context: "BGP message length",
            declared: length,
        });
    }
    let body_len = length - 19;
    if buf.remaining() < body_len {
        return Err(WireError::Truncated {
            context: "BGP message body",
            expected: body_len - buf.remaining(),
        });
    }
    let mut body = vec![0u8; body_len];
    buf.copy_to_slice(&mut body);
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsnEncoding;

    #[test]
    fn open_roundtrip_modern() {
        let open = OpenMessage::modern(Asn(200_100), 0x0A00_0001);
        let bytes = open.encode();
        let mut slice = &bytes[..];
        let decoded = OpenMessage::decode(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(decoded, open);
        assert_eq!(decoded.asn, Asn(200_100));
        assert_eq!(decoded.four_byte_asn(), Some(Asn(200_100)));
    }

    #[test]
    fn open_roundtrip_legacy() {
        let open = OpenMessage::legacy(Asn(65_010), 7);
        let bytes = open.encode();
        let mut slice = &bytes[..];
        let decoded = OpenMessage::decode(&mut slice).unwrap();
        assert_eq!(decoded.asn, Asn(65_010));
        assert_eq!(decoded.four_byte_asn(), None);
    }

    #[test]
    fn four_byte_asn_in_16bit_field_becomes_as_trans() {
        let open = OpenMessage::modern(Asn(200_100), 1);
        let bytes = open.encode();
        // The My-AS field sits at offset 20..22.
        let as16 = u16::from_be_bytes([bytes[20], bytes[21]]);
        assert_eq!(u32::from(as16), AS_TRANS.0);
    }

    #[test]
    fn negotiation_requires_both_sides() {
        let modern_a = OpenMessage::modern(Asn(1), 1);
        let modern_b = OpenMessage::modern(Asn(2), 2);
        let legacy = OpenMessage::legacy(Asn(65_000), 3);
        assert_eq!(
            negotiate(&modern_a, &modern_b).asn_encoding,
            AsnEncoding::FourByte
        );
        assert_eq!(
            negotiate(&modern_a, &legacy).asn_encoding,
            AsnEncoding::TwoByte
        );
        assert_eq!(
            negotiate(&legacy, &modern_a).asn_encoding,
            AsnEncoding::TwoByte
        );
        let p = negotiate(
            &OpenMessage {
                hold_time: 90,
                ..OpenMessage::modern(Asn(1), 1)
            },
            &modern_b,
        );
        assert_eq!(p.hold_time, 90);
    }

    #[test]
    fn notification_and_keepalive_roundtrip() {
        let n = NotificationMessage {
            code: 6,
            subcode: 2, // administrative shutdown
            data: b"maintenance".to_vec(),
        };
        let bytes = n.encode();
        let mut slice = &bytes[..];
        assert_eq!(NotificationMessage::decode(&mut slice).unwrap(), n);

        let ka = keepalive();
        assert_eq!(ka.len(), 19);
        assert_eq!(ka[18], MSG_TYPE_KEEPALIVE);
    }

    #[test]
    fn unknown_capability_preserved() {
        let open = OpenMessage {
            asn: Asn(64_999),
            hold_time: 180,
            bgp_id: 9,
            capabilities: vec![Capability::Unknown {
                code: 73,
                value: vec![1, 2, 3],
            }],
        };
        let bytes = open.encode();
        let mut slice = &bytes[..];
        let decoded = OpenMessage::decode(&mut slice).unwrap();
        assert_eq!(decoded, open);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut empty: &[u8] = &[];
        assert!(OpenMessage::decode(&mut empty).is_err());
        let open = OpenMessage::modern(Asn(1), 1);
        let mut bytes = open.encode();
        bytes[19] = 3; // version 3
        let mut slice = &bytes[..];
        assert!(OpenMessage::decode(&mut slice).is_err());
        for cut in [5, 18, 21, 25] {
            let bytes = open.encode();
            let mut slice = &bytes[..cut.min(bytes.len())];
            assert!(OpenMessage::decode(&mut slice).is_err());
        }
    }
}
