// L002 fixture: a crate root without `#![forbid(unsafe_code)]`.
pub fn answer() -> u32 {
    42
}
