// L001 fixture: panicking calls in non-test library code.
pub fn parse_port(s: &str) -> u16 {
    let first = s.split(':').next_back().unwrap();
    first.parse().expect(&format!("bad port {s}"))
}

pub fn message_less(v: Option<u32>) -> u32 {
    v.expect("")
}
