// L004 fixture: ad-hoc clocks outside crates/obs.
pub fn timed() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

pub fn stamped() -> u64 {
    use std::time::SystemTime;
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
