// L000 fixture: a waiver without a reason is itself a violation, and the
// rule it tried to waive still fires.
pub fn no_reason(v: Option<u32>) -> u32 {
    // breval-lint: allow(L001)
    v.unwrap()
}
