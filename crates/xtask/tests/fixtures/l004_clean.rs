// L004 fixture (clean): timing goes through the observability layer, which
// owns the only clock in the workspace.
#![forbid(unsafe_code)]
pub fn timed() {
    let _span = breval_obs::span!("generate");
}
