// L003 fixture (clean): registered labels only.
#![forbid(unsafe_code)]
pub fn do_work() {
    let _span = breval_obs::span!("generate");
    breval_obs::counter("topology_ases", 1);
}
