// L005 fixture (clean): libraries return data; only binaries print.
#![forbid(unsafe_code)]
pub fn report(n: usize) -> String {
    format!("processed {n} items")
}
