// L002 fixture (clean): the crate root forbids unsafe code.
#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
