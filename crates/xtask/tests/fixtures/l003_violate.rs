// L003 fixture: observability labels that are not in the checked-in
// registry (crates/obs/labels.txt).
pub fn do_work() {
    let _span = breval_obs::span!("totally_unregistered_stage");
    breval_obs::counter("totally_unregistered_counter", 1);
}
