// L001 fixture (waived): the pragma carries a written reason, so the
// unwrap below must NOT be reported.
#![forbid(unsafe_code)]
pub fn startup_config() -> String {
    // breval-lint: allow(L001) -- config is embedded at compile time and verified by a build test
    std::str::from_utf8(b"embedded").unwrap().to_owned()
}
