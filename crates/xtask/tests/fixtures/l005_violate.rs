// L005 fixture: direct printing from a library crate.
pub fn report(n: usize) {
    println!("processed {n} items");
    eprintln!("warning: {n} items is a lot");
}
