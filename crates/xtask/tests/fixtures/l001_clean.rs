// L001 fixture (clean): Result propagation, invariant-carrying expects,
// and unwrap confined to a `#[cfg(test)]` module.
#![forbid(unsafe_code)]
pub fn parse_port(s: &str) -> Result<u16, std::num::ParseIntError> {
    s.rsplit(':')
        .next()
        .unwrap_or(s)
        .parse()
}

pub fn checked(v: Option<u32>) -> u32 {
    v.expect("caller guarantees a value per the builder contract")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!("80".parse::<u16>().unwrap(), 80);
    }
}
