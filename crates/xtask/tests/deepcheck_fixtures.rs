//! Fixture-driven end-to-end tests of the L008–L012 deepcheck rules.
//!
//! Unlike the token-level lint fixtures (single files), each deepcheck
//! fixture is a miniature *crate* under `fixtures/` — the flow rules reason
//! over a call graph, so every fixture ships a `src/lib.rs` plus a
//! `registry.txt` naming its entry/kernel/sink functions. A violating
//! fixture must produce findings (the CLI exits 1), its clean twin none
//! (exit 0).

use std::path::{Path, PathBuf};
use xtask::resolve::Workspace;
use xtask::rules::Violation;
use xtask::rules_flow::{deepcheck, Registry};

fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run_fixture(name: &str) -> Vec<Violation> {
    let dir = fixture_dir(name);
    let ws = Workspace::load_single(&dir)
        .unwrap_or_else(|e| panic!("fixture crate {name} unreadable: {e}"));
    let reg = std::fs::read_to_string(dir.join("registry.txt"))
        .unwrap_or_else(|e| panic!("fixture registry {name} unreadable: {e}"));
    deepcheck(&ws, &Registry::parse(&reg))
}

#[test]
fn l008_hash_iteration_upstream_of_sink_fires_and_btree_passes() {
    let bad = run_fixture("l008_violate");
    assert!(
        bad.iter().any(|v| v.rule == "L008"),
        "HashMap iteration upstream of a sink must fire: {bad:?}"
    );
    let clean = run_fixture("l008_clean");
    assert!(clean.is_empty(), "BTreeMap twin must pass: {clean:?}");
}

#[test]
fn l009_panic_sites_reachable_from_entry_fire_and_guarded_twin_passes() {
    let bad = run_fixture("l009_violate");
    let l009: Vec<_> = bad.iter().filter(|v| v.rule == "L009").collect();
    assert_eq!(
        l009.len(),
        2,
        "unwrap in the entry + literal index in the callee: {bad:?}"
    );
    let clean = run_fixture("l009_clean");
    assert!(
        clean.is_empty(),
        "windows indexing and messaged expect must pass: {clean:?}"
    );
}

#[test]
fn l010_kernel_allocations_fire_directly_and_transitively() {
    let bad = run_fixture("l010_violate");
    assert!(
        bad.iter()
            .any(|v| v.rule == "L010" && v.message.contains("push")),
        "direct push in the kernel: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|v| v.rule == "L010" && v.message.contains("format!")),
        "transitive format! via the callee: {bad:?}"
    );
    let clean = run_fixture("l010_clean");
    assert!(
        clean.is_empty(),
        "allocation-free kernel must pass: {clean:?}"
    );
}

#[test]
fn l011_locking_parallel_closure_fires_and_pure_closure_passes() {
    let bad = run_fixture("l011_violate");
    assert!(
        bad.iter()
            .any(|v| v.rule == "L011" && v.message.contains("lock")),
        "lock inside the parallel closure: {bad:?}"
    );
    let clean = run_fixture("l011_clean");
    assert!(
        clean.is_empty(),
        "pure parallel closure must pass: {clean:?}"
    );
}

#[test]
fn l012_deprecated_call_fires_and_waived_or_test_callers_pass() {
    let bad = run_fixture("l012_violate");
    let l012: Vec<_> = bad.iter().filter(|v| v.rule == "L012").collect();
    assert_eq!(
        l012.len(),
        1,
        "exactly the non-test call in `analysis` fires: {bad:?}"
    );
    assert!(
        l012[0].message.contains("legacy_cones") && l012[0].message.contains("analysis"),
        "the finding names both callee and caller: {:?}",
        l012[0]
    );
    let clean = run_fixture("l012_clean");
    assert!(
        clean.is_empty(),
        "replacement calls, test callers, and the waived shim must pass: {clean:?}"
    );
}

#[test]
fn workspace_deepcheck_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf();
    let violations = xtask::rules_flow::deepcheck_root(&root).expect("workspace sources readable");
    assert!(
        violations.is_empty(),
        "the workspace must deepcheck clean; run `cargo run -p xtask -- deepcheck`:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
