//! Fixture-driven end-to-end tests of the L001–L007 project lints.
//!
//! Each rule has a violating and a clean fixture under `tests/fixtures/`.
//! Fixtures are read as *content* and linted under a synthetic library-crate
//! path, so their on-disk location (a `tests/` directory, which the walker
//! deliberately skips and the classifier would exempt) doesn't mask them.

use breval_obs::LabelRegistry;
use std::path::Path;
use xtask::lint::lint_source;
use xtask::rules::{check_l006, check_l007, Violation};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lints a fixture's content as if it were a library crate root.
fn lint_as_lib_root(name: &str) -> Vec<Violation> {
    let registry = LabelRegistry::builtin();
    lint_source(
        Path::new("crates/fixture/src/lib.rs"),
        &fixture(name),
        &registry,
    )
}

fn rules_hit(violations: &[Violation]) -> Vec<&str> {
    let mut rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn l001_panicking_calls_flagged_and_clean_passes() {
    let bad = lint_as_lib_root("l001_violate.rs");
    let bad_l001: Vec<_> = bad.iter().filter(|v| v.rule == "L001").collect();
    assert_eq!(
        bad_l001.len(),
        3,
        "unwrap, dynamic expect, empty expect: {bad:?}"
    );
    // L002 also fires (fixtures are linted as crate roots) — that's expected.
    let clean = lint_as_lib_root("l001_clean.rs");
    assert!(
        clean.iter().all(|v| v.rule != "L001"),
        "clean fixture must pass L001: {clean:?}"
    );
}

#[test]
fn l001_waiver_with_reason_suppresses() {
    let waived = lint_as_lib_root("l001_waived.rs");
    assert!(
        waived.iter().all(|v| v.rule != "L001" && v.rule != "L000"),
        "a reasoned waiver must suppress L001: {waived:?}"
    );
}

#[test]
fn l000_reasonless_waiver_is_flagged_and_does_not_waive() {
    let v = lint_as_lib_root("l000_malformed.rs");
    let rules = rules_hit(&v);
    assert!(rules.contains(&"L000"), "malformed pragma: {v:?}");
    assert!(rules.contains(&"L001"), "rule must still fire: {v:?}");
}

#[test]
fn l002_missing_forbid_flagged_and_clean_passes() {
    let bad = lint_as_lib_root("l002_violate.rs");
    assert!(rules_hit(&bad).contains(&"L002"), "{bad:?}");
    let clean = lint_as_lib_root("l002_clean.rs");
    assert!(clean.iter().all(|v| v.rule != "L002"), "{clean:?}");
}

#[test]
fn l003_unregistered_labels_flagged_and_registered_pass() {
    let bad = lint_as_lib_root("l003_violate.rs");
    let bad_l003: Vec<_> = bad.iter().filter(|v| v.rule == "L003").collect();
    assert_eq!(bad_l003.len(), 2, "span + counter: {bad:?}");
    let clean = lint_as_lib_root("l003_clean.rs");
    assert!(clean.iter().all(|v| v.rule != "L003"), "{clean:?}");
}

#[test]
fn l004_adhoc_clocks_flagged_and_obs_usage_passes() {
    let bad = lint_as_lib_root("l004_violate.rs");
    assert!(
        bad.iter().filter(|v| v.rule == "L004").count() >= 2,
        "Instant and SystemTime: {bad:?}"
    );
    let clean = lint_as_lib_root("l004_clean.rs");
    assert!(clean.iter().all(|v| v.rule != "L004"), "{clean:?}");
}

#[test]
fn l005_printing_library_flagged_and_clean_passes() {
    let bad = lint_as_lib_root("l005_violate.rs");
    assert_eq!(
        bad.iter().filter(|v| v.rule == "L005").count(),
        2,
        "println! and eprintln!: {bad:?}"
    );
    let clean = lint_as_lib_root("l005_clean.rs");
    assert!(clean.iter().all(|v| v.rule != "L005"), "{clean:?}");

    // The same content in a binary target is exempt.
    let registry = LabelRegistry::builtin();
    let as_bin = lint_source(
        Path::new("crates/fixture/src/main.rs"),
        &fixture("l005_violate.rs"),
        &registry,
    );
    assert!(as_bin.iter().all(|v| v.rule != "L005"), "{as_bin:?}");
}

#[test]
fn l006_local_deps_flagged_and_workspace_deps_pass() {
    let bad = check_l006(
        Path::new("crates/fixture/Cargo.toml"),
        &fixture("l006_violate.toml"),
    );
    assert_eq!(
        bad.iter().filter(|v| v.rule == "L006").count(),
        3,
        "version, path and dev-dep pins: {bad:?}"
    );
    let clean = check_l006(
        Path::new("crates/fixture/Cargo.toml"),
        &fixture("l006_clean.toml"),
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn l007_unpinned_actions_flagged_and_exact_pins_pass() {
    let bad = check_l007(
        Path::new(".github/workflows/ci.yml"),
        &fixture("l007_violate.yml"),
    );
    assert_eq!(
        bad.iter().filter(|v| v.rule == "L007").count(),
        5,
        "major tag, branch, no ref, short version, branch: {bad:?}"
    );
    let clean = check_l007(
        Path::new(".github/workflows/ci.yml"),
        &fixture("l007_clean.yml"),
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn lint_paths_flags_violating_fixtures_and_passes_clean_ones() {
    // The CLI path (`cargo run -p xtask -- lint <file>`): violating fixtures
    // must produce violations (exit 1), clean ones none (exit 0).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf();
    let fixture_rel = |name: &str| {
        Path::new("crates/xtask/tests/fixtures")
            .join(name)
            .to_path_buf()
    };
    let violating = [
        "l000_malformed.rs",
        "l001_violate.rs",
        "l002_violate.rs",
        "l003_violate.rs",
        "l004_violate.rs",
        "l005_violate.rs",
        "l006_violate.toml",
        "l007_violate.yml",
    ];
    for name in violating {
        let v = xtask::lint::lint_paths(&root, &[fixture_rel(name)]).expect("fixture readable");
        assert!(!v.is_empty(), "{name} must produce violations");
    }
    let clean = [
        "l001_clean.rs",
        "l001_waived.rs",
        "l002_clean.rs",
        "l003_clean.rs",
        "l004_clean.rs",
        "l005_clean.rs",
        "l006_clean.toml",
        "l007_clean.yml",
    ];
    for name in clean {
        let v = xtask::lint::lint_paths(&root, &[fixture_rel(name)]).expect("fixture readable");
        assert!(v.is_empty(), "{name} must lint clean: {v:?}");
    }
}

#[test]
fn workspace_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf();
    let violations = xtask::lint::lint_workspace(&root).expect("workspace sources readable");
    assert!(
        violations.is_empty(),
        "the workspace must lint clean; run `cargo run -p xtask -- lint`:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
