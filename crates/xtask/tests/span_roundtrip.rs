//! Token-span integrity: every byte of a source file must be covered either
//! by a token span or by a pure-whitespace gap, with spans ordered and
//! non-overlapping — i.e. re-emitting the tokens from their spans
//! round-trips the file byte-identically. Both the lint and deepcheck
//! layers attribute findings through these spans, so a span bug silently
//! misplaces or hides findings.

use proptest::prelude::*;
use std::path::Path;
use xtask::tokens::roundtrip_violation;

/// Every real workspace source must round-trip. This is the deterministic
/// sweep the proptest below generalizes.
#[test]
fn every_workspace_source_roundtrips() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf();
    let sources = xtask::lint::workspace_sources(&root);
    assert!(!sources.is_empty(), "workspace walker found no sources");
    for rel in sources {
        let path = if rel.is_absolute() {
            rel.clone()
        } else {
            root.join(&rel)
        };
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} unreadable: {e}", path.display()));
        if let Some(why) = roundtrip_violation(&src) {
            panic!("{}: {why}", rel.display());
        }
    }
}

/// Random concatenations of adversarial fragments — raw strings, nested
/// block comments, escapes, unterminated delimiters from the free-form
/// chunks — must never break the span invariant: the lexer may tokenize
/// garbage however it likes, but it must account for every byte.
fn arb_source() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("fn f() { let x = 1; }\n".to_owned()),
        Just("r#\"raw with \" inside\"#".to_owned()),
        Just("r\"plain raw\"".to_owned()),
        Just("br#\"byte raw\"#".to_owned()),
        Just("\"str with \\\" escape\"".to_owned()),
        Just("'c'".to_owned()),
        Just("b'x'".to_owned()),
        Just("/* outer /* nested */ still outer */".to_owned()),
        Just("// line comment\n".to_owned()),
        Just("0x1F_u32 1_000 1.5e-3".to_owned()),
        Just("ident_r".to_owned()),
        Just("::<>->=>.#![]{}()".to_owned()),
        Just("\n\n\t ".to_owned()),
        // Printable-ASCII chunk: may open strings/comments it never closes.
        "[ -~]{0,12}".to_owned(),
        // Delimiter soup biased toward the characters that switch lexer modes.
        "[ \"#/*'r]{0,8}".to_owned(),
    ];
    prop::collection::vec(fragment, 0..24).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_sources_roundtrip(src in arb_source()) {
        let verdict = roundtrip_violation(&src);
        prop_assert!(verdict.is_none(), "{verdict:?} for source {src:?}");
    }
}
