//! The domain sanitizer must catch deliberately corrupted relationship data
//! while passing well-formed ground truth.

use asgraph::{Asn, Rel};
use breval_core::sanitize::{check_edge_list, check_graph};

fn p2c(p: u32) -> Rel {
    Rel::P2c { provider: Asn(p) }
}

#[test]
fn seeded_self_loop_and_p2c_cycle_are_both_detected() {
    // A corrupted graph: AS7 "peers with itself", and AS1→AS2→AS3→AS1 form
    // a provider cycle (each provides transit to the next).
    let corrupted = vec![
        (Asn(7), Asn(7), Rel::P2p),
        (Asn(1), Asn(2), p2c(1)),
        (Asn(2), Asn(3), p2c(2)),
        (Asn(3), Asn(1), p2c(3)),
        (Asn(4), Asn(1), p2c(1)), // a legitimate customer hanging off the cycle
        (Asn(4), Asn(5), Rel::P2p),
    ];
    let violations = check_edge_list(&corrupted);
    let checks: Vec<&str> = violations.iter().map(|v| v.check).collect();
    assert!(
        checks.contains(&"self_loop"),
        "self-loop must be detected: {violations:?}"
    );
    assert!(
        checks.contains(&"p2c_cycle"),
        "p2c cycle must be detected: {violations:?}"
    );
    assert_eq!(checks.len(), 2, "no spurious findings: {violations:?}");
}

#[test]
fn generated_ground_truth_passes_clean() {
    // The real pipeline's ground truth must sail through the same checks.
    let config = topogen::TopologyConfig::small(7);
    let topology = topogen::generate(&config);
    let graph = topology
        .ground_truth_graph()
        .expect("generated topology is a valid graph");
    let violations = check_graph(&graph);
    assert!(
        violations.is_empty(),
        "generated ground truth must be clean: {violations:?}"
    );
}
