//! Workspace module graph and coarse symbol resolution.
//!
//! [`Workspace::load`] crawls every crate in the repository (each
//! `crates/*/src/{lib,main}.rs` and `src/bin/*.rs` root, plus the umbrella
//! crate under `src/`), follows `mod foo;` declarations to their files,
//! parses everything with [`crate::ast`], and builds one flat table of
//! function items with their full paths (`crate::module::Type::name`).
//!
//! Resolution ([`Workspace::resolve`]) maps call references extracted from
//! bodies back onto that table. It is a deliberate *over-approximation*:
//! where the name is ambiguous (plain method calls, re-exported paths) it
//! returns every plausible target, so reachability-based rules may flag too
//! much but never silently miss an edge. The one precision guard: a
//! `Type::assoc(..)` call only resolves when `Type` is a workspace type —
//! `Vec::new` or `HashMap::from` never aliases onto workspace functions.

use crate::ast::{self, FnDecl, Item, ItemKind, UseLeaf};
use crate::tokens::Tok;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// One function item in the workspace table.
#[derive(Debug)]
pub struct FnInfo {
    /// Crate module identifier (`breval_core` for crate `breval-core`).
    pub krate: String,
    /// Module path inside the crate (empty at the crate root).
    pub module: Vec<String>,
    /// The function's own name.
    pub name: String,
    /// `impl` self type head, for associated functions/methods.
    pub self_ty: Option<String>,
    /// Trait head name when inside `impl Trait for Ty` or a trait body.
    pub trait_name: Option<String>,
    /// Index of the file in [`Workspace::files`].
    pub file_idx: usize,
    /// 1-based declaration line.
    pub line: u32,
    /// Signature token range (into the file's token stream).
    pub sig: (usize, usize),
    /// Body token range, if the function has one.
    pub body: Option<(usize, usize)>,
    /// `true` for `#[test]` functions and anything under `#[cfg(test)]`.
    pub is_test: bool,
}

/// One parsed source file.
pub struct ParsedFile {
    /// Repo-relative path.
    pub rel: PathBuf,
    /// Raw source text.
    pub src: String,
    /// Significant tokens (what [`FnInfo`] ranges index into).
    pub toks: Vec<Tok>,
    /// Crate module identifier this file belongs to.
    pub krate: String,
    /// Every `use` leaf in the file, flattened.
    pub imports: Vec<UseLeaf>,
}

/// A call reference extracted from a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallRef {
    /// `a::b::f(..)` or plain `f(..)` — the full written path.
    Path(Vec<String>),
    /// `.f(..)` — a method call; only the name is known statically.
    Method(String),
    /// `self.f(..)` — a method call whose receiver is the enclosing
    /// impl's type, so it can be resolved precisely instead of
    /// fanning out to every same-named method in the workspace.
    SelfMethod(String),
}

/// Method names shared with std container/iterator APIs. A bare
/// `.push(..)` receiver is overwhelmingly a `Vec`, not a workspace type
/// that happens to define `push`, so resolving these by name alone would
/// flood the call graph with false edges (and drag unrelated types into
/// kernel closures). Calls through these names still resolve when written
/// as `self.push(..)` (via [`CallRef::SelfMethod`]) or `Type::push(..)`.
const STD_METHOD_NAMES: [&str; 26] = [
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "len",
    "is_empty",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "extend",
    "contains",
    "contains_key",
    "next",
    "clone",
    "parse",
    "write",
    "read",
    "drain",
    "retain",
    // Atomic / cell API: `ENABLED.load(Ordering::..)` in any crate would
    // otherwise edge into every workspace method named `load`.
    "load",
    "store",
];

/// The fully loaded and indexed workspace.
pub struct Workspace {
    /// All parsed files, crawl order (crates sorted, modules depth-first).
    pub files: Vec<ParsedFile>,
    /// All function items.
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_type_method: BTreeMap<(String, String), Vec<usize>>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    workspace_types: BTreeSet<String>,
}

impl Workspace {
    /// Loads the full workspace under `root`: every `crates/*` crate plus
    /// the umbrella crate rooted at `root/src`. Crate directories without
    /// a `src/lib.rs` or `src/main.rs` are skipped.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut crate_dirs: Vec<PathBuf> = vec![root.to_path_buf()];
        let crates = root.join("crates");
        if let Ok(entries) = fs::read_dir(&crates) {
            let mut dirs: Vec<PathBuf> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            crate_dirs.extend(dirs);
        }
        Self::load_crate_dirs(root, &crate_dirs)
    }

    /// Loads a single crate directory as a one-crate workspace — used by
    /// the deepcheck fixture suite.
    pub fn load_single(crate_dir: &Path) -> std::io::Result<Workspace> {
        Self::load_crate_dirs(crate_dir, &[crate_dir.to_path_buf()])
    }

    /// Builds a workspace from in-memory sources (one crate, flat module
    /// structure) — the call-graph unit suite's substrate.
    #[must_use]
    pub fn from_sources(krate: &str, sources: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            by_type_method: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            workspace_types: BTreeSet::new(),
        };
        for (rel, src) in sources {
            let parsed = ast::parse(src);
            let file_idx = ws.files.len();
            let mut imports = Vec::new();
            collect_imports(&parsed.items, &mut imports);
            ws.files.push(ParsedFile {
                rel: PathBuf::from(rel),
                src: (*src).to_owned(),
                toks: parsed.toks,
                krate: krate.to_owned(),
                imports,
            });
            let mut module_path = Vec::new();
            let mut out_of_line = Vec::new();
            ws.collect_fns(
                &parsed.items,
                file_idx,
                krate,
                &mut module_path,
                None,
                None,
                false,
                &mut out_of_line,
            );
        }
        ws.index();
        ws
    }

    fn load_crate_dirs(root: &Path, crate_dirs: &[PathBuf]) -> std::io::Result<Workspace> {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            by_type_method: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            workspace_types: BTreeSet::new(),
        };
        for dir in crate_dirs {
            let krate = crate_ident(dir);
            let src_dir = dir.join("src");
            let mut roots: Vec<PathBuf> = ["lib.rs", "main.rs"]
                .iter()
                .map(|f| src_dir.join(f))
                .filter(|p| p.is_file())
                .collect();
            if let Ok(bins) = fs::read_dir(src_dir.join("bin")) {
                let mut bin_files: Vec<PathBuf> = bins
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
                    .collect();
                bin_files.sort();
                roots.extend(bin_files);
            }
            for root_file in roots {
                ws.crawl_file(root, &root_file, &krate, &[], false)?;
            }
        }
        ws.index();
        Ok(ws)
    }

    /// Parses `path` and recurses into its out-of-line child modules.
    fn crawl_file(
        &mut self,
        root: &Path,
        path: &Path,
        krate: &str,
        module: &[String],
        in_test: bool,
    ) -> std::io::Result<()> {
        let src = fs::read_to_string(path)?;
        let parsed = ast::parse(&src);
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        let file_idx = self.files.len();
        let mut imports = Vec::new();
        collect_imports(&parsed.items, &mut imports);
        self.files.push(ParsedFile {
            rel,
            src,
            toks: parsed.toks,
            krate: krate.to_owned(),
            imports,
        });

        // Children of lib.rs/main.rs/mod.rs live beside the file; children
        // of foo.rs live under foo/.
        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let parent = path.parent().unwrap_or(Path::new("."));
        let child_dir = if matches!(file_name, "lib.rs" | "main.rs" | "mod.rs")
            || parent.file_name().and_then(|n| n.to_str()) == Some("bin")
        {
            parent.to_path_buf()
        } else {
            parent.join(file_name.trim_end_matches(".rs"))
        };

        let mut out_of_line: Vec<(String, bool)> = Vec::new();
        let mut module_path = module.to_vec();
        self.collect_fns(
            &parsed.items,
            file_idx,
            krate,
            &mut module_path,
            None,
            None,
            in_test,
            &mut out_of_line,
        );
        for (name, sub_in_test) in out_of_line {
            let candidates = [
                child_dir.join(format!("{name}.rs")),
                child_dir.join(&name).join("mod.rs"),
            ];
            if let Some(child) = candidates.iter().find(|p| p.is_file()) {
                let mut sub_module = module.to_vec();
                sub_module.push(name.clone());
                self.crawl_file(root, child, krate, &sub_module, in_test || sub_in_test)?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn collect_fns(
        &mut self,
        items: &[Item],
        file_idx: usize,
        krate: &str,
        module: &mut Vec<String>,
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        in_test: bool,
        out_of_line: &mut Vec<(String, bool)>,
    ) {
        for item in items {
            let item_test = in_test || item.cfg_test;
            match &item.kind {
                ItemKind::Fn(f) => self.push_fn(
                    f,
                    file_idx,
                    krate,
                    module,
                    self_ty,
                    trait_name,
                    item_test || item.is_test_fn,
                    item.line,
                ),
                ItemKind::Mod { name, items } => match items {
                    Some(sub) => {
                        module.push(name.clone());
                        self.collect_fns(
                            sub,
                            file_idx,
                            krate,
                            module,
                            None,
                            None,
                            item_test,
                            out_of_line,
                        );
                        module.pop();
                    }
                    None => out_of_line.push((name.clone(), item.cfg_test)),
                },
                ItemKind::Impl {
                    self_ty: ty,
                    trait_name: tr,
                    items: sub,
                } => {
                    self.workspace_types.insert(ty.clone());
                    self.collect_fns(
                        sub,
                        file_idx,
                        krate,
                        module,
                        Some(ty),
                        tr.as_deref(),
                        item_test,
                        out_of_line,
                    );
                }
                ItemKind::Trait { name, items: sub } => {
                    self.collect_fns(
                        sub,
                        file_idx,
                        krate,
                        module,
                        None,
                        Some(name),
                        item_test,
                        out_of_line,
                    );
                }
                ItemKind::Other { name, .. } => {
                    if let Some(n) = name {
                        if n.chars().next().is_some_and(char::is_uppercase) {
                            self.workspace_types.insert(n.clone());
                        }
                    }
                }
                ItemKind::Use { .. } => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_fn(
        &mut self,
        f: &FnDecl,
        file_idx: usize,
        krate: &str,
        module: &[String],
        self_ty: Option<&str>,
        trait_name: Option<&str>,
        is_test: bool,
        line: u32,
    ) {
        self.fns.push(FnInfo {
            krate: krate.to_owned(),
            module: module.to_vec(),
            name: f.name.clone(),
            self_ty: self_ty.map(str::to_owned),
            trait_name: trait_name.map(str::to_owned),
            file_idx,
            line,
            sig: f.sig,
            body: f.body,
            is_test,
        });
    }

    fn index(&mut self) {
        for (id, f) in self.fns.iter().enumerate() {
            self.by_name.entry(f.name.clone()).or_default().push(id);
            if let Some(ty) = &f.self_ty {
                self.by_type_method
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
            if let Some(tr) = &f.trait_name {
                self.by_type_method
                    .entry((tr.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
            if f.self_ty.is_some() || f.trait_name.is_some() {
                self.methods_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(id);
            }
        }
    }

    /// The function's displayable path, `crate::module::Type::name`.
    #[must_use]
    pub fn path_of(&self, id: usize) -> String {
        let f = &self.fns[id];
        let mut parts: Vec<&str> = vec![&f.krate];
        parts.extend(f.module.iter().map(String::as_str));
        if let Some(ty) = &f.self_ty {
            parts.push(ty);
        }
        parts.push(&f.name);
        parts.join("::")
    }

    /// All function ids whose path ends with the given `::`-separated
    /// suffix — how registry entries (`entry`, `kernel`, `sink`) and
    /// waiver-free config name functions.
    #[must_use]
    pub fn match_suffix(&self, suffix: &str) -> Vec<usize> {
        let want: Vec<&str> = suffix.split("::").collect();
        let Some(name) = want.last() else {
            return Vec::new();
        };
        let Some(candidates) = self.by_name.get(*name) else {
            return Vec::new();
        };
        candidates
            .iter()
            .copied()
            .filter(|&id| {
                let full = self.path_of(id);
                let have: Vec<&str> = full.split("::").collect();
                have.len() >= want.len() && have[have.len() - want.len()..] == want[..]
            })
            .collect()
    }

    /// Resolves a call reference from `file_idx` to candidate function ids.
    /// Over-approximates on ambiguity; returns an empty set for calls that
    /// cannot be workspace functions (std/vendored targets).
    #[must_use]
    pub fn resolve(&self, file_idx: usize, call: &CallRef) -> Vec<usize> {
        match call {
            CallRef::Method(name) | CallRef::SelfMethod(name) => {
                if STD_METHOD_NAMES.contains(&name.as_str()) {
                    return Vec::new();
                }
                self.methods_by_name.get(name).cloned().unwrap_or_default()
            }
            CallRef::Path(segs) => self.resolve_path(file_idx, segs, true),
        }
    }

    /// Like [`Workspace::resolve`], but with the calling function known:
    /// `self.method(..)` calls resolve through the enclosing impl's type
    /// (exactly, even for std-colliding names) before falling back to the
    /// name-wide over-approximation.
    #[must_use]
    pub fn resolve_from(&self, caller: usize, call: &CallRef) -> Vec<usize> {
        let f = &self.fns[caller];
        if let CallRef::SelfMethod(name) = call {
            if let Some(ty) = &f.self_ty {
                if let Some(ids) = self.by_type_method.get(&(ty.clone(), name.clone())) {
                    return ids.clone();
                }
            }
        }
        self.resolve(f.file_idx, call)
    }

    fn resolve_path(&self, file_idx: usize, segs: &[String], follow_imports: bool) -> Vec<usize> {
        // Normalise away leading `crate` / `self` / `super` qualifiers.
        let segs: Vec<&String> = segs
            .iter()
            .filter(|s| !matches!(s.as_str(), "crate" | "self" | "super"))
            .collect();
        let [head @ .., name] = &segs[..] else {
            return Vec::new();
        };
        match head {
            [] => {
                // Unqualified `f(..)`: an import may pin it to a path;
                // otherwise any same-crate function wins, falling back to
                // the whole workspace.
                if follow_imports {
                    let file = &self.files[file_idx];
                    if let Some(import) = file.imports.iter().find(|l| &l.alias == *name) {
                        let resolved = self.resolve_path(file_idx, &import.segments, false);
                        if !resolved.is_empty() {
                            return resolved;
                        }
                    }
                }
                let all = self.by_name.get(*name).cloned().unwrap_or_default();
                let krate = &self.files[file_idx].krate;
                let same_crate: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&id| &self.fns[id].krate == krate && self.fns[id].self_ty.is_none())
                    .collect();
                if same_crate.is_empty() {
                    all
                } else {
                    same_crate
                }
            }
            [.., qual] => {
                let q = qual.as_str();
                if q.chars().next().is_some_and(char::is_uppercase) {
                    // `Type::assoc(..)` — only workspace types resolve, so
                    // `Vec::new` can never alias a workspace function.
                    if self.workspace_types.contains(q) {
                        self.by_type_method
                            .get(&(q.to_owned(), (*name).clone()))
                            .cloned()
                            .unwrap_or_default()
                    } else {
                        Vec::new()
                    }
                } else {
                    // `module::f(..)` — match on the module/crate suffix;
                    // over-approximate to every same-named function if the
                    // written path matches nothing (re-exports).
                    let all = self.by_name.get(*name).cloned().unwrap_or_default();
                    let matched: Vec<usize> = all
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let f = &self.fns[id];
                            f.module.last().map(String::as_str) == Some(q)
                                || f.krate == q
                                || f.krate == q.replace('-', "_")
                        })
                        .collect();
                    if matched.is_empty() {
                        all
                    } else {
                        matched
                    }
                }
            }
        }
    }

    /// `true` if this function participates in a `Serialize`/`Serializer`
    /// impl — an automatic serialization sink for L008.
    #[must_use]
    pub fn is_serialize_impl(&self, id: usize) -> bool {
        self.fns[id]
            .trait_name
            .as_deref()
            .is_some_and(|t| t == "Serialize" || t == "Serializer")
    }
}

fn collect_imports(items: &[Item], out: &mut Vec<UseLeaf>) {
    for item in items {
        match &item.kind {
            ItemKind::Use { leaves } => out.extend(leaves.iter().cloned()),
            ItemKind::Mod {
                items: Some(sub), ..
            } => collect_imports(sub, out),
            ItemKind::Impl { items: sub, .. } | ItemKind::Trait { items: sub, .. } => {
                collect_imports(sub, out);
            }
            _ => {}
        }
    }
}

/// The crate's module identifier: the `name` from `Cargo.toml` with `-`
/// mapped to `_`, falling back to the directory name.
fn crate_ident(dir: &Path) -> String {
    let manifest = dir.join("Cargo.toml");
    if let Ok(text) = fs::read_to_string(&manifest) {
        let mut in_package = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_package = line == "[package]";
                continue;
            }
            if in_package {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(value) = rest.strip_prefix('=') {
                        let name = value.trim().trim_matches('"');
                        return name.replace('-', "_");
                    }
                }
            }
        }
    }
    dir.file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("unknown")
        .replace('-', "_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_the_real_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("xtask sits two levels below the workspace root")
            .to_path_buf();
        let ws = Workspace::load(&root).expect("workspace sources readable");
        assert!(ws.files.len() > 30, "found {} files", ws.files.len());
        assert!(ws.fns.len() > 300, "found {} fns", ws.fns.len());
        // A few landmark functions must resolve by suffix.
        for suffix in [
            "breval_core::pipeline::Scenario::run",
            "asgraph::cone::customer_cone_sizes",
            "breval_par::parallel_map",
        ] {
            assert!(
                !ws.match_suffix(suffix).is_empty(),
                "registry landmark {suffix} must resolve"
            );
        }
        // Type-qualified std calls never alias workspace functions.
        assert!(ws
            .resolve(0, &CallRef::Path(vec!["Vec".into(), "new".into()]))
            .is_empty());
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let ws = Workspace::load(&root).expect("workspace sources readable");
        let (mut test_fns, mut prod_fns) = (0usize, 0usize);
        for f in &ws.fns {
            if f.is_test {
                test_fns += 1;
            } else {
                prod_fns += 1;
            }
        }
        assert!(test_fns > 50, "cfg(test) fns found: {test_fns}");
        assert!(prod_fns > 200, "production fns found: {prod_fns}");
    }
}
