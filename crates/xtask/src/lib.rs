//! # xtask — workspace static analysis and observability tooling
//!
//! A zero-dependency maintenance crate, run as
//! `cargo run -p xtask -- <lint|sanitize|obsreport|obscheck>`:
//!
//! * **code lints** ([`lexer`], [`rules`], [`lint`]) — a token-level Rust
//!   scanner enforcing the project rules L001–L006 (panic discipline,
//!   `#![forbid(unsafe_code)]`, registered observability labels, clock
//!   usage, print discipline, workspace-mediated dependencies), with an
//!   auditable waiver pragma:
//!   `// breval-lint: allow(L001) -- <reason, mandatory>`;
//! * **data sanitizer** (in `breval_core::sanitize`, driven from this
//!   crate's binary) — domain invariants of the paper pipeline checked over
//!   a freshly-run scenario and the persisted `results/` artifacts;
//! * **observability reporting** ([`obsreport`]) — a self-time-sorted flame
//!   summary and pool-utilisation table rendered from `BENCH_obs.json`;
//! * **perf-regression gate** ([`obscheck`]) — compares a fresh
//!   `BENCH_obs.json` against the committed baseline under generous
//!   per-stage tolerance bands and fails CI on wall/alloc regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod lexer;
pub mod lint;
pub mod obscheck;
pub mod obsreport;
pub mod rules;
