//! # xtask — workspace static analysis and observability tooling
//!
//! A zero-dependency maintenance crate, run as
//! `cargo run -p xtask -- <lint|deepcheck|sanitize|obsreport|obscheck>`:
//!
//! * **token lints** ([`lexer`], [`rules`], [`lint`]) — a token-level Rust
//!   scanner enforcing the project rules L001–L007 (panic discipline,
//!   `#![forbid(unsafe_code)]`, registered observability labels, clock
//!   usage, print discipline, workspace-mediated dependencies, pinned CI
//!   actions), with an auditable waiver pragma:
//!   `// breval-lint: allow(L001) -- <reason, mandatory>`;
//! * **flow rules** ([`ast`], [`resolve`], [`callgraph`], [`rules_flow`]) —
//!   `deepcheck` parses items, resolves symbols workspace-wide, builds a
//!   cross-crate call graph, and enforces L008–L012 (sink-order
//!   determinism, entry-reachable panic freedom, allocation-free hot
//!   kernels, parallel-closure hygiene, deprecated-call bans) against
//!   the role registry in
//!   `crates/xtask/deepcheck.txt`, honouring the same waiver pragma;
//! * **data sanitizer** (in `breval_core::sanitize`, driven from this
//!   crate's binary) — domain invariants of the paper pipeline checked over
//!   a freshly-run scenario and the persisted `results/` artifacts;
//! * **observability reporting** ([`obsreport`]) — a self-time-sorted flame
//!   summary and pool-utilisation table rendered from `BENCH_obs.json`;
//! * **perf-regression gate** ([`obscheck`]) — compares a fresh
//!   `BENCH_obs.json` against the committed baseline under generous
//!   per-stage tolerance bands and fails CI on wall/alloc regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod json;
pub mod lexer;
pub mod lint;
pub mod obscheck;
pub mod obsreport;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod rules_flow;
pub mod scalecheck;
pub mod tokens;
