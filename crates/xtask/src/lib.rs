//! # xtask — workspace static analysis
//!
//! A zero-dependency static-analysis pass with two layers, run as
//! `cargo run -p xtask -- <lint|sanitize>`:
//!
//! * **code lints** ([`lexer`], [`rules`], [`lint`]) — a token-level Rust
//!   scanner enforcing the project rules L001–L006 (panic discipline,
//!   `#![forbid(unsafe_code)]`, registered observability labels, clock
//!   usage, print discipline, workspace-mediated dependencies), with an
//!   auditable waiver pragma:
//!   `// breval-lint: allow(L001) -- <reason, mandatory>`;
//! * **data sanitizer** (in `breval_core::sanitize`, driven from this
//!   crate's binary) — domain invariants of the paper pipeline checked over
//!   a freshly-run scenario and the persisted `results/` artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod lexer;
pub mod lint;
pub mod rules;
