//! Command-line driver:
//! `cargo run -p xtask -- <lint|deepcheck|sanitize|obsreport|obscheck>`.
//!
//! * `lint [--format json] [files…]` — run the L001–L007 project lints over
//!   the whole workspace (default) or an explicit file list; exit 1 on any
//!   violation.
//! * `deepcheck [--format json]` — run the flow-aware L008–L012 rules over
//!   the workspace call graph (see `xtask::rules_flow`); exit 1 on any
//!   violation.
//! * `sanitize [--seed N]` — run a small end-to-end scenario and check every
//!   domain invariant in `breval_core::sanitize`, then cross-check the
//!   persisted `results/*.json` observability manifests against the label
//!   registry; exit 1 on any violation.
//! * `obsreport [--file P]` — render `BENCH_obs.json` (default: the
//!   workspace root copy) as a self-time-sorted flame summary plus a
//!   pool-utilisation table.
//! * `obscheck [--fresh P] [--baseline P]` — compare a fresh
//!   `BENCH_obs.json` against the committed baseline
//!   (`crates/xtask/baselines/bench_obs_small.json`); exit 1 on any wall or
//!   allocation regression.
//! * `scalecheck [--file P]` — validate `BENCH_scale.json`'s 10k tier
//!   against the absolute structural floors in `xtask::scalecheck`
//!   (bounded-memory propagation, hybrid-cone compression); exit 1 on any
//!   violation.

#![forbid(unsafe_code)]

use breval_core::pipeline::{Scenario, ScenarioConfig};
use breval_obs::LabelRegistry;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("deepcheck") => run_deepcheck(&args[1..]),
        Some("sanitize") => run_sanitize(&args[1..]),
        Some("obsreport") => run_obsreport(&args[1..]),
        Some("obscheck") => run_obscheck(&args[1..]),
        Some("scalecheck") => run_scalecheck(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <lint [--format json] [files…] \
                 | deepcheck [--format json] | sanitize [--seed N] \
                 | obsreport [--file P] | obscheck [--fresh P] [--baseline P] \
                 | scalecheck [--file P]>"
            );
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels above this crate's manifest directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint(args: &[String]) -> ExitCode {
    let (fmt, files) = xtask::report::Format::extract(args);
    let root = workspace_root();
    let result = if files.is_empty() {
        xtask::lint::lint_workspace(&root)
    } else {
        let paths: Vec<PathBuf> = files.iter().map(PathBuf::from).collect();
        xtask::lint::lint_paths(&root, &paths)
    };
    let violations = match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("lint: io error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", xtask::report::render("lint", &violations, fmt));
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_deepcheck(args: &[String]) -> ExitCode {
    let (fmt, _) = xtask::report::Format::extract(args);
    let violations = match xtask::rules_flow::deepcheck_root(&workspace_root()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("deepcheck: io error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", xtask::report::render("deepcheck", &violations, fmt));
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_sanitize(args: &[String]) -> ExitCode {
    let seed = parse_seed(args).unwrap_or(42);
    println!("sanitize: running small scenario (seed {seed})…");
    breval_obs::set_enabled(true);
    let scenario = Scenario::run(ScenarioConfig::small(seed));
    let report = breval_core::sanitize::sanitize_scenario(&scenario);
    print!("{}", report.render());

    let mut label_errors = check_live_labels(seed);
    label_errors.extend(check_manifest_labels(&workspace_root().join("results")));
    let mut failed = !report.is_clean();
    if !label_errors.is_empty() {
        failed = true;
        label_errors.truncate(20);
        for e in &label_errors {
            println!("VIOLATION [obs_label] {e}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("sanitize: ok");
        ExitCode::SUCCESS
    }
}

fn parse_seed(args: &[String]) -> Option<u64> {
    flag_value(args, "--seed")?.parse().ok()
}

/// The operand following `flag`, if both are present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let pos = args.iter().position(|a| a == flag)?;
    args.get(pos + 1).map(String::as_str)
}

/// Reads and parses one JSON document, reporting failures on stderr.
fn load_json(path: &Path) -> Result<Json, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        ExitCode::from(2)
    })?;
    xtask::json::parse(&text).map_err(|e| {
        eprintln!("{}: invalid JSON: {e}", path.display());
        ExitCode::from(2)
    })
}

fn run_obsreport(args: &[String]) -> ExitCode {
    let path = flag_value(args, "--file")
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_obs.json"));
    match load_json(&path) {
        Ok(doc) => {
            print!("{}", xtask::obsreport::render(&doc));
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

fn run_obscheck(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let baseline_path = flag_value(args, "--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("crates/xtask/baselines/bench_obs_small.json"));
    let fresh_path = flag_value(args, "--fresh")
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("BENCH_obs.json"));
    let (baseline, fresh) = match (load_json(&baseline_path), load_json(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let report = xtask::obscheck::check(&baseline, &fresh, &xtask::obscheck::Tolerances::default());
    for note in &report.notes {
        println!("obscheck: note — {note}");
    }
    for r in &report.regressions {
        println!("REGRESSION {r}");
    }
    println!(
        "obscheck: compared {} stage(s) of {} against {}: {} regression(s)",
        report.stages_compared,
        fresh_path.display(),
        baseline_path.display(),
        report.regressions.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_scalecheck(args: &[String]) -> ExitCode {
    let path = flag_value(args, "--file")
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root().join("BENCH_scale.json"));
    let doc = match load_json(&path) {
        Ok(doc) => doc,
        Err(code) => return code,
    };
    let report = xtask::scalecheck::check(&doc, &xtask::scalecheck::Floors::default());
    for note in &report.notes {
        println!("scalecheck: note — {note}");
    }
    for v in &report.violations {
        println!("VIOLATION {v}");
    }
    println!(
        "scalecheck: validated 10k tier of {}: {} violation(s)",
        path.display(),
        report.violations.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Validates the labels the scenario run just produced, straight from the
/// in-process observability registry (typed, no JSON round-trip).
fn check_live_labels(seed: u64) -> Vec<String> {
    let registry = LabelRegistry::builtin();
    let manifest = breval_obs::RunManifest::capture("sanitize", seed);
    let mut errors = Vec::new();
    for stage in &manifest.stages {
        if !registry.is_registered_path(&stage.name) {
            errors.push(format!("unregistered live stage path {:?}", stage.name));
        }
        for key in stage.counters.keys() {
            if !registry.is_registered(key) {
                errors.push(format!(
                    "unregistered live counter {key:?} in stage {:?}",
                    stage.name
                ));
            }
        }
    }
    for key in manifest
        .counters
        .keys()
        .chain(manifest.gauges.keys())
        .chain(manifest.histograms.keys())
    {
        if !registry.is_registered(key) {
            errors.push(format!("unregistered live metric label {key:?}"));
        }
    }
    println!(
        "sanitize: checked {} live stage(s) against {} registered label(s)",
        manifest.stages.len(),
        registry.len()
    );
    errors
}

/// Cross-checks the persisted run manifest (if any) against the obs label
/// registry: every stage path segment and counter name must be registered,
/// so drifting instrumentation can't silently invent unreviewed labels.
fn check_manifest_labels(results: &Path) -> Vec<String> {
    let registry = LabelRegistry::builtin();
    let mut errors = Vec::new();
    let manifest = results.join("run_manifest.json");
    let Ok(text) = std::fs::read_to_string(&manifest) else {
        println!("sanitize: no {} — skipping label check", manifest.display());
        return errors;
    };
    let parsed = match xtask::json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            errors.push(format!("{}: invalid JSON: {e}", manifest.display()));
            return errors;
        }
    };
    let stages = parsed.get("stages").and_then(Json::as_arr).unwrap_or(&[]);
    for stage in stages {
        let name = stage.get("name").and_then(Json::as_str).unwrap_or("");
        if !registry.is_registered_path(name) {
            errors.push(format!("unregistered stage path {name:?} in run manifest"));
        }
        if let Some(counters) = stage.get("counters").and_then(Json::as_obj) {
            for key in counters.keys() {
                if !registry.is_registered(key) {
                    errors.push(format!("unregistered counter {key:?} in stage {name:?}"));
                }
            }
        }
    }
    for section in ["counters", "gauges", "histograms"] {
        if let Some(map) = parsed.get(section).and_then(Json::as_obj) {
            for key in map.keys() {
                if !registry.is_registered(key) {
                    errors.push(format!(
                        "unregistered {section} label {key:?} in run manifest"
                    ));
                }
            }
        }
    }
    println!(
        "sanitize: checked {} stage(s) in {} against {} registered label(s)",
        stages.len(),
        manifest.display(),
        registry.len()
    );
    errors
}
