//! Full-fidelity Rust token stream with byte spans.
//!
//! The per-line scanner in [`crate::lexer`] is what the token-level rules
//! (L001–L007) want: blanked code, per-line. The semantic layer
//! ([`crate::ast`], [`crate::callgraph`]) instead needs a *flat token
//! stream* over the whole file, where every token knows its exact byte span
//! in the original source — that is what makes nested block comments, raw
//! strings with `##` repetition, and multi-line literals load-bearing
//! rather than approximated: the AST parser never guesses where a literal
//! ends, it asks the token.
//!
//! Invariant (proptested over every workspace source file): tokens are
//! strictly ordered, non-overlapping, and the bytes *between* consecutive
//! tokens are pure whitespace — so re-emitting `src[tok.start..tok.end]`
//! plus the original gaps reproduces the file byte-identically.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `foo`, `r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A numeric literal, including suffix (`42u32`, `0xff`, `1.5e3`).
    Number,
    /// A string literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation. `::`, `->` and `=>` are single tokens; everything else
    /// is one character per token.
    Punct,
    /// A line or block comment (doc comments included).
    Comment,
}

/// One token with its byte span into the source it was lexed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Tok {
    /// The token's text, sliced out of the source it was produced from.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// `true` if the token is this exact identifier/keyword.
    #[must_use]
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == word
    }

    /// `true` if the token is this exact punctuation.
    #[must_use]
    pub fn is_punct(&self, src: &str, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text(src) == p
    }
}

fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a complete token stream. Never fails: malformed input
/// (unterminated literals, stray bytes) degrades to best-effort tokens so
/// the analysis layer can still look at the rest of the file.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Tok> {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let n = chars.len();
    let at = |k: usize| chars.get(k).map(|&(_, c)| c);
    let bpos = |k: usize| chars.get(k).map_or(src.len(), |&(b, _)| b);

    let mut toks: Vec<Tok> = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;
    while i < n {
        let (b, c) = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment — runs to (not including) the newline.
        if c == '/' && at(i + 1) == Some('/') {
            let mut j = i;
            while j < n && at(j) != Some('\n') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                start: b,
                end: bpos(j),
                line,
            });
            i = j;
            continue;
        }
        // Block comment — nests, may span lines.
        if c == '/' && at(i + 1) == Some('*') {
            let start_line = line;
            let mut depth = 1u32;
            let mut j = i + 2;
            while j < n && depth > 0 {
                match (at(j), at(j + 1)) {
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        j += 2;
                    }
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        j += 2;
                    }
                    (Some('\n'), _) => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                start: b,
                end: bpos(j),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Identifier-started lexemes, including the literal prefixes
        // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` and raw identifiers
        // `r#ident`.
        if c.is_alphabetic() || c == '_' {
            // Raw string (optionally byte): r/br followed by #* then ".
            let raw_skip = match c {
                'r' => Some(i + 1),
                'b' if at(i + 1) == Some('r') => Some(i + 2),
                _ => None,
            };
            if let Some(mut j) = raw_skip {
                let hash_start = j;
                while at(j) == Some('#') {
                    j += 1;
                }
                let hashes = j - hash_start;
                if at(j) == Some('"') {
                    let start_line = line;
                    j += 1;
                    'raw: while j < n {
                        match at(j) {
                            Some('\n') => line += 1,
                            Some('"') => {
                                let mut ok = true;
                                for k in 0..hashes {
                                    if at(j + 1 + k) != Some('#') {
                                        ok = false;
                                        break;
                                    }
                                }
                                if ok {
                                    j += 1 + hashes;
                                    break 'raw;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        start: b,
                        end: bpos(j),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                // Raw identifier r#ident — fall through to ident scan below
                // (the `#` is consumed as part of the identifier).
                if c == 'r' && hashes == 1 && at(j).is_some_and(ident_char) {
                    while j < n && at(j).is_some_and(ident_char) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        start: b,
                        end: bpos(j),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            // Byte string b"…" / byte char b'…'.
            if c == 'b' && at(i + 1) == Some('"') {
                let (j, nl) = scan_quoted(&chars, i + 1, '"');
                toks.push(Tok {
                    kind: TokKind::Str,
                    start: b,
                    end: bpos(j),
                    line,
                });
                line += nl;
                i = j;
                continue;
            }
            if c == 'b' && at(i + 1) == Some('\'') {
                let (j, nl) = scan_quoted(&chars, i + 1, '\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    start: b,
                    end: bpos(j),
                    line,
                });
                line += nl;
                i = j;
                continue;
            }
            // Plain identifier / keyword.
            let mut j = i + 1;
            while j < n && at(j).is_some_and(ident_char) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                start: b,
                end: bpos(j),
                line,
            });
            i = j;
            continue;
        }
        // Numbers: integer/float with radix prefixes and type suffixes.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            // Radix prefix consumes hex digits too; suffixes are plain
            // alphanumerics — one ident-char sweep covers both.
            while j < n && at(j).is_some_and(ident_char) {
                j += 1;
            }
            // Fractional part only when `.` is followed by a digit, so
            // ranges (`0..n`) and method calls (`1.max(x)`) stay separate.
            if at(j) == Some('.') && at(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                j += 1;
                while j < n && at(j).is_some_and(ident_char) {
                    j += 1;
                }
            }
            // Signed exponent (`1e-5`): the sweep stops at `-`/`+`.
            if at(j.wrapping_sub(1)).is_some_and(|e| e == 'e' || e == 'E')
                && matches!(at(j), Some('+') | Some('-'))
                && at(j + 1).is_some_and(|d| d.is_ascii_digit())
            {
                j += 1;
                while j < n && at(j).is_some_and(ident_char) {
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Number,
                start: b,
                end: bpos(j),
                line,
            });
            i = j;
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            let (j, nl) = scan_quoted(&chars, i, '"');
            toks.push(Tok {
                kind: TokKind::Str,
                start: b,
                end: bpos(j),
                line: start_line,
            });
            line += nl;
            i = j;
            continue;
        }
        // `'` — lifetime, loop label, or char literal.
        if c == '\'' {
            let next = at(i + 1);
            let is_char = match next {
                Some('\\') => true,
                Some(nc) if ident_char(nc) => at(i + 2) == Some('\''),
                Some('\'') => false, // `''` is malformed; treat as puncts
                Some(_) => at(i + 2) == Some('\''), // 'x' for any single char
                None => false,
            };
            if is_char {
                let (j, nl) = scan_quoted(&chars, i, '\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    start: b,
                    end: bpos(j),
                    line,
                });
                line += nl;
                i = j;
                continue;
            }
            if next.is_some_and(|nc| nc.is_alphabetic() || nc == '_') {
                let mut j = i + 1;
                while j < n && at(j).is_some_and(ident_char) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    start: b,
                    end: bpos(j),
                    line,
                });
                i = j;
                continue;
            }
            // Fall through: stray quote becomes a punct.
        }
        // Punctuation: the three compounds the parser keys on, then single
        // characters.
        let two: String = [c, at(i + 1).unwrap_or(' ')].iter().collect();
        let step = if matches!(two.as_str(), "::" | "->" | "=>") {
            2
        } else {
            1
        };
        toks.push(Tok {
            kind: TokKind::Punct,
            start: b,
            end: bpos(i + step),
            line,
        });
        i += step;
    }
    toks
}

/// Scans a quoted literal starting at the opening quote `chars[open]`;
/// returns (index one past the closing quote, newlines crossed). Handles
/// `\` escapes; unterminated literals run to end of input.
fn scan_quoted(chars: &[(usize, char)], open: usize, quote: char) -> (usize, u32) {
    let n = chars.len();
    let at = |k: usize| chars.get(k).map(|&(_, c)| c);
    let mut j = open + 1;
    let mut newlines = 0u32;
    while j < n {
        match at(j) {
            Some('\\') => j += 2,
            Some('\n') => {
                newlines += 1;
                j += 1;
            }
            Some(q) if q == quote => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (n, newlines)
}

/// Checks the re-emission invariant: tokens ordered, non-overlapping, and
/// all inter-token gaps pure whitespace. Returns a description of the first
/// violation, if any — the round-trip test asserts `None` on every
/// workspace source file.
#[must_use]
pub fn roundtrip_violation(src: &str) -> Option<String> {
    let toks = tokenize(src);
    let mut prev_end = 0usize;
    for (idx, t) in toks.iter().enumerate() {
        if t.start < prev_end {
            return Some(format!(
                "token {idx} at {}..{} overlaps previous end {prev_end}",
                t.start, t.end
            ));
        }
        if t.end < t.start || t.end > src.len() {
            return Some(format!("token {idx} has bad span {}..{}", t.start, t.end));
        }
        let gap = &src[prev_end..t.start];
        if !gap.chars().all(char::is_whitespace) {
            return Some(format!(
                "non-whitespace bytes {gap:?} dropped before token {idx} at {}",
                t.start
            ));
        }
        prev_end = t.end;
    }
    let tail = &src[prev_end..];
    if !tail.chars().all(char::is_whitespace) {
        return Some(format!("non-whitespace tail {tail:?} after last token"));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, &str)> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    #[test]
    fn nested_block_comments_lex_exactly() {
        let src = "/* a /* b /* c */ d */ e */ fn f() {}";
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert_eq!(toks[0].text(src), "/* a /* b /* c */ d */ e */");
        assert_eq!(toks[1].text(src), "fn");
        assert!(roundtrip_violation(src).is_none());
    }

    #[test]
    fn raw_strings_with_many_hashes() {
        let src = r####"let s = r##"quote "# inside"## ; let t = r###"x"###;"####;
        let v = texts(src);
        assert!(v.contains(&(TokKind::Str, r###"r##"quote "# inside"##"###)));
        assert!(v.contains(&(TokKind::Str, r####"r###"x"###"####)));
        assert!(roundtrip_violation(src).is_none());
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = "let a = b\"bytes\"; let b2 = br#\"raw \"b\"\"#; let c = b'x';";
        let v = texts(src);
        assert!(v.contains(&(TokKind::Str, "b\"bytes\"")));
        assert!(v.contains(&(TokKind::Str, "br#\"raw \"b\"\"#")));
        assert!(v.contains(&(TokKind::Char, "b'x'")));
        assert!(roundtrip_violation(src).is_none());
    }

    #[test]
    fn ident_ending_in_r_is_not_a_raw_string() {
        let src = "let x = var \"s\"; let y = r\"real raw\";";
        let v = texts(src);
        assert!(v.contains(&(TokKind::Ident, "var")));
        assert!(v.contains(&(TokKind::Str, "\"s\"")));
        assert!(v.contains(&(TokKind::Str, "r\"real raw\"")));
    }

    #[test]
    fn raw_identifiers_and_lifetimes_and_chars() {
        let src = "let r#type = 'a'; let l: &'static str = \"\"; let c = '\\n'; 'outer: loop {}";
        let v = texts(src);
        assert!(v.contains(&(TokKind::Ident, "r#type")));
        assert!(v.contains(&(TokKind::Char, "'a'")));
        assert!(v.contains(&(TokKind::Lifetime, "'static")));
        assert!(v.contains(&(TokKind::Char, "'\\n'")));
        assert!(v.contains(&(TokKind::Lifetime, "'outer")));
    }

    #[test]
    fn numbers_ranges_and_methods_stay_separate() {
        let v = texts("for i in 0..10 { let x = 1.5e-3f64; let y = 2.max(i); let h = 0xff_u8; }");
        assert!(v.contains(&(TokKind::Number, "0")));
        assert!(v.contains(&(TokKind::Number, "10")));
        assert!(v.contains(&(TokKind::Number, "1.5e-3f64")));
        assert!(v.contains(&(TokKind::Number, "2")));
        assert!(v.contains(&(TokKind::Ident, "max")));
        assert!(v.contains(&(TokKind::Number, "0xff_u8")));
    }

    #[test]
    fn compound_puncts() {
        let v = texts("fn f() -> T { m::g(); |x| => x }");
        assert!(v.contains(&(TokKind::Punct, "->")));
        assert!(v.contains(&(TokKind::Punct, "::")));
        assert!(v.contains(&(TokKind::Punct, "=>")));
    }

    #[test]
    fn multiline_strings_roundtrip() {
        let src = "let s = \"line one\n  line two\";\nlet r = r#\"raw\nmore\"#;\nfn g() {}";
        assert!(roundtrip_violation(src).is_none());
        let toks = tokenize(src);
        let g = toks
            .iter()
            .find(|t| t.text(src) == "g")
            .expect("fn g tokenized");
        assert_eq!(g.line, 5, "line counting must survive multi-line literals");
    }
}
