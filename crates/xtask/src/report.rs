//! Shared finding serialization for `lint` and `deepcheck`.
//!
//! Both commands emit the same shapes: a human-readable line list with a
//! trailing summary, or a machine-readable JSON document for CI
//! artifacts. The JSON writer is hand-rolled (the vendored `serde_json`
//! is deliberately serialize-only and lives behind the product crates;
//! xtask stays zero-dependency) and escapes per RFC 8259.

use crate::rules::Violation;

/// Output format selector shared by the CLI commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// One `file:line [rule] message` line per finding plus a summary.
    Text,
    /// A single JSON document: `{tool, clean, count, findings: [...]}`.
    Json,
}

impl Format {
    /// Parses `--format <text|json>` out of an argument list, returning
    /// the format and the remaining arguments. Unknown values fall back
    /// to text.
    #[must_use]
    pub fn extract(args: &[String]) -> (Format, Vec<String>) {
        let mut rest = Vec::new();
        let mut fmt = Format::Text;
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--format" {
                if let Some(v) = args.get(i + 1) {
                    if v == "json" {
                        fmt = Format::Json;
                    }
                    i += 2;
                    continue;
                }
                i += 1;
                continue;
            }
            rest.push(args[i].clone());
            i += 1;
        }
        (fmt, rest)
    }
}

/// Renders findings in the requested format; the returned string is the
/// complete stdout payload (including the trailing newline).
#[must_use]
pub fn render(tool: &str, violations: &[Violation], fmt: Format) -> String {
    match fmt {
        Format::Text => render_text(tool, violations),
        Format::Json => render_json(tool, violations),
    }
}

fn render_text(tool: &str, violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&v.to_string());
        out.push('\n');
    }
    if violations.is_empty() {
        out.push_str(&format!("{tool}: clean\n"));
    } else {
        out.push_str(&format!("{tool}: {} violation(s)\n", violations.len()));
    }
    out
}

fn render_json(tool: &str, violations: &[Violation]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"tool\": {},\n", json_str(tool)));
    out.push_str(&format!("  \"clean\": {},\n", violations.is_empty()));
    out.push_str(&format!("  \"count\": {},\n", violations.len()));
    out.push_str("  \"findings\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": {}, ", json_str(&v.file)));
        out.push_str(&format!("\"line\": {}, ", v.line));
        out.push_str(&format!("\"rule\": {}, ", json_str(v.rule)));
        out.push_str(&format!("\"message\": {}", json_str(&v.message)));
        out.push('}');
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// A JSON string literal for `s`, with RFC 8259 escaping.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Violation> {
        vec![Violation {
            file: "crates/foo/src/lib.rs".to_owned(),
            line: 7,
            rule: "L008",
            message: "iteration over \"hash\" map".to_owned(),
        }]
    }

    #[test]
    fn extract_format_peels_flag_anywhere() {
        let args: Vec<String> = ["a.rs", "--format", "json", "b.rs"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let (fmt, rest) = Format::extract(&args);
        assert_eq!(fmt, Format::Json);
        assert_eq!(rest, vec!["a.rs".to_owned(), "b.rs".to_owned()]);
        let (fmt, rest) = Format::extract(&["x.rs".to_owned()]);
        assert_eq!(fmt, Format::Text);
        assert_eq!(rest, vec!["x.rs".to_owned()]);
    }

    #[test]
    fn text_render_matches_legacy_shape() {
        let out = render("lint", &sample(), Format::Text);
        assert!(out.contains("crates/foo/src/lib.rs:7"));
        assert!(out.ends_with("lint: 1 violation(s)\n"));
        assert_eq!(render("lint", &[], Format::Text), "lint: clean\n");
    }

    #[test]
    fn json_render_is_parseable_and_escaped() {
        let out = render("deepcheck", &sample(), Format::Json);
        let doc = crate::json::parse(&out).expect("self-emitted JSON must parse");
        assert_eq!(
            doc.get("tool").and_then(crate::json::Json::as_str),
            Some("deepcheck")
        );
        assert_eq!(
            doc.get("count").and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        let findings = doc
            .get("findings")
            .and_then(crate::json::Json::as_arr)
            .unwrap();
        assert_eq!(
            findings[0]
                .get("message")
                .and_then(crate::json::Json::as_str),
            Some("iteration over \"hash\" map")
        );
    }

    #[test]
    fn json_clean_report() {
        let out = render("lint", &[], Format::Json);
        let doc = crate::json::parse(&out).expect("parse");
        assert_eq!(
            doc.get("clean").and_then(crate::json::Json::as_bool),
            Some(true)
        );
        assert_eq!(
            doc.get("findings")
                .and_then(crate::json::Json::as_arr)
                .map(<[_]>::len),
            Some(0)
        );
    }
}
