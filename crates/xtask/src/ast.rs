//! Item-level recursive-descent parser over the [`crate::tokens`] stream.
//!
//! The semantic rules (L008–L011) need to know *which function* a token
//! belongs to, how functions nest in modules and impls, and what a file
//! imports — they do not need expression trees. So this parser recognises
//! exactly the item grammar: `mod` (inline and out-of-line), `use` trees
//! (flattened to leaves), `fn` items (bodies kept as token ranges into the
//! significant-token stream), `impl` and `trait` blocks (recursing into
//! their methods), and skips everything else with balanced-delimiter
//! recovery. Attributes are retained far enough to classify test-only code
//! (`#[cfg(test)]`, `#[test]`) and to spot `#[derive(Serialize)]` sinks.
//!
//! The parser is deliberately *total*: malformed input never panics, it
//! degrades to `Other` items, so an analysis run can always report on the
//! rest of the workspace.

use crate::tokens::{Tok, TokKind};

/// A parsed source file: the significant (comment-free) token stream plus
/// the item tree whose body ranges index into it.
#[derive(Debug)]
pub struct ParsedSource {
    /// Significant tokens (comments stripped), in source order.
    pub toks: Vec<Tok>,
    /// Top-level items.
    pub items: Vec<Item>,
}

/// One leaf of a flattened `use` tree: `use a::b::{c, d as e};` yields
/// leaves `a::b::c` (alias `c`) and `a::b::d` (alias `e`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseLeaf {
    /// Full path segments, e.g. `["a", "b", "c"]`. A glob import ends in
    /// `"*"`.
    pub segments: Vec<String>,
    /// The name the import binds locally (last segment, or the `as` alias).
    pub alias: String,
}

/// A function item. `body` is a half-open range of indices into
/// [`ParsedSource::toks`] covering the braces and everything between them.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// The function's name.
    pub name: String,
    /// Signature token range: from after the name to the body `{` / `;`.
    pub sig: (usize, usize),
    /// Body token range (including the outer braces); `None` for trait
    /// method declarations without a default body.
    pub body: Option<(usize, usize)>,
}

/// What an item is; only the variants the analysis needs carry structure.
#[derive(Debug)]
pub enum ItemKind {
    /// `mod name;` (out-of-line, `items == None`) or `mod name { … }`.
    Mod {
        /// Module name.
        name: String,
        /// Inline body, if any.
        items: Option<Vec<Item>>,
    },
    /// A `use` declaration, flattened.
    Use {
        /// The flattened leaves.
        leaves: Vec<UseLeaf>,
    },
    /// A free function.
    Fn(FnDecl),
    /// An `impl` block; `items` holds the associated functions.
    Impl {
        /// The self type's head identifier (`Foo` for `impl Foo<T>`).
        self_ty: String,
        /// The trait's head identifier for trait impls (`Serialize` for
        /// `impl Serialize for Foo`).
        trait_name: Option<String>,
        /// Associated items (functions; others become `Other`).
        items: Vec<Item>,
    },
    /// A trait definition; `items` holds method declarations.
    Trait {
        /// Trait name.
        name: String,
        /// Associated items.
        items: Vec<Item>,
    },
    /// Any other item (struct, enum, const, macro, …), skipped structurally.
    Other {
        /// The item's name when one was recognisable.
        name: Option<String>,
        /// Attribute texts (to spot `#[derive(Serialize)]` on types).
        attrs: Vec<String>,
    },
}

/// One item with the attribute-derived classification the rules need.
#[derive(Debug)]
pub struct Item {
    /// Structure.
    pub kind: ItemKind,
    /// 1-based line of the item's first token.
    pub line: u32,
    /// Item carries `#[cfg(test)]` (or an attr mentioning `test`).
    pub cfg_test: bool,
    /// Item is a `#[test]` function.
    pub is_test_fn: bool,
}

/// Parses one file. Comments are stripped before parsing; the returned
/// token stream is what item body ranges index into.
#[must_use]
pub fn parse(src: &str) -> ParsedSource {
    let toks: Vec<Tok> = crate::tokens::tokenize(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    let mut p = Parser {
        src,
        toks: &toks,
        pos: 0,
    };
    let items = p.parse_items(false);
    ParsedSource {
        toks: toks.clone(),
        items,
    }
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + off)
    }

    fn text(&self, t: &Tok) -> &'a str {
        t.text(self.src)
    }

    fn cur_is_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(self.src, p))
    }

    fn cur_is_ident(&self, w: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(self.src, w))
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes a balanced run starting at the current opening delimiter
    /// (`(`, `[` or `{`); nested delimiters of all three kinds are matched
    /// together. Returns the index one past the closing delimiter.
    fn skip_balanced(&mut self) -> usize {
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match self.text(t) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth <= 0 {
                            self.pos += 1;
                            return self.pos;
                        }
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
        self.pos
    }

    /// Consumes a generic parameter list starting at `<`. Tracks only angle
    /// depth plus bracketed sub-runs (const-generic `{…}` defaults).
    fn skip_generics(&mut self) {
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match self.text(t) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth <= 0 {
                            self.pos += 1;
                            return;
                        }
                    }
                    "(" | "[" | "{" => {
                        self.skip_balanced();
                        continue;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// Attributes before an item: `#[…]` (outer) and `#![…]` (inner).
    /// Returns the raw attribute texts.
    fn parse_attrs(&mut self) -> Vec<String> {
        let mut attrs = Vec::new();
        while self.cur_is_punct("#") {
            let start = self.peek().map_or(0, |t| t.start);
            self.pos += 1;
            if self.cur_is_punct("!") {
                self.pos += 1;
            }
            if self.cur_is_punct("[") {
                let end_idx = self.skip_balanced();
                let end = self
                    .toks
                    .get(end_idx.saturating_sub(1))
                    .map_or(start, |t| t.end);
                attrs.push(self.src[start..end].to_owned());
            } else {
                break; // stray `#` — not an attribute
            }
        }
        attrs
    }

    /// `pub`, `pub(crate)`, `pub(in …)`.
    fn parse_visibility(&mut self) {
        if self.cur_is_ident("pub") {
            self.pos += 1;
            if self.cur_is_punct("(") {
                self.skip_balanced();
            }
        }
    }

    fn parse_items(&mut self, inside_braces: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(t) = self.peek() {
            if inside_braces && t.is_punct(self.src, "}") {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                self.pos += 1; // error recovery: never loop in place
            }
        }
        items
    }

    fn parse_item(&mut self) -> Option<Item> {
        let attrs = self.parse_attrs();
        let line = self.peek().map_or(0, |t| t.line);
        let cfg_test = attrs
            .iter()
            .any(|a| a.contains("cfg") && a.contains("test"));
        let is_test_fn = attrs.iter().any(|a| {
            let inner = a.trim_start_matches(['#', '!', '[']).trim_end_matches(']');
            inner == "test" || inner.ends_with("::test") || inner.starts_with("test(")
        });
        self.parse_visibility();

        // Item modifiers, in declaration order.
        while self
            .peek()
            .is_some_and(|t| matches!(self.text(t), "default" | "const" | "async" | "unsafe"))
        {
            // `const NAME: …` item vs `const fn`: only skip `const` as a
            // modifier when `fn`/`unsafe`/`async`/`extern` follows.
            if self.cur_is_ident("const")
                && !self
                    .peek_at(1)
                    .is_some_and(|t| matches!(self.text(t), "fn" | "unsafe" | "async" | "extern"))
            {
                break;
            }
            self.pos += 1;
        }
        if self.cur_is_ident("extern") {
            // `extern "C" fn`, `extern crate name;`, or an extern block.
            if self.peek_at(1).is_some_and(|t| t.kind == TokKind::Str) {
                self.pos += 2;
            } else if self
                .peek_at(1)
                .is_some_and(|t| t.is_ident(self.src, "crate"))
            {
                while self.peek().is_some() && !self.cur_is_punct(";") {
                    self.pos += 1;
                }
                self.pos += 1;
                return Some(Item {
                    kind: ItemKind::Other { name: None, attrs },
                    line,
                    cfg_test,
                    is_test_fn,
                });
            }
        }

        let kw = self.peek()?;
        let kind = match self.text(kw) {
            "mod" => self.parse_mod(),
            "use" => self.parse_use(),
            "fn" => self.parse_fn().map(ItemKind::Fn),
            "impl" => self.parse_impl(),
            "trait" => self.parse_trait(),
            "struct" | "enum" | "union" => self.parse_type_item(),
            "static" | "const" | "type" => self.parse_terminated_item(),
            "macro_rules" => self.parse_macro_def(),
            _ => self.parse_unknown(),
        };
        Some(Item {
            kind: kind.unwrap_or(ItemKind::Other {
                name: None,
                attrs: Vec::new(),
            }),
            line,
            cfg_test,
            is_test_fn,
        })
    }

    fn parse_mod(&mut self) -> Option<ItemKind> {
        self.pos += 1; // `mod`
        let name_tok = self.bump()?;
        let name = name_tok.text(self.src).to_owned();
        if self.cur_is_punct(";") {
            self.pos += 1;
            return Some(ItemKind::Mod { name, items: None });
        }
        if self.cur_is_punct("{") {
            self.pos += 1;
            let items = self.parse_items(true);
            self.pos += 1; // `}`
            return Some(ItemKind::Mod {
                name,
                items: Some(items),
            });
        }
        None
    }

    fn parse_use(&mut self) -> Option<ItemKind> {
        self.pos += 1; // `use`
        let mut leaves = Vec::new();
        self.parse_use_tree(&mut Vec::new(), &mut leaves);
        if self.cur_is_punct(";") {
            self.pos += 1;
        }
        Some(ItemKind::Use { leaves })
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, leaves: &mut Vec<UseLeaf>) {
        let depth_at_entry = prefix.len();
        while let Some(t) = self.peek() {
            if t.is_punct(self.src, "{") {
                self.pos += 1;
                loop {
                    self.parse_use_tree(prefix, leaves);
                    if self.cur_is_punct(",") {
                        self.pos += 1;
                        continue;
                    }
                    break;
                }
                if self.cur_is_punct("}") {
                    self.pos += 1;
                }
                break;
            }
            if t.is_punct(self.src, "*") {
                self.pos += 1;
                let mut segments = prefix.clone();
                segments.push("*".to_owned());
                leaves.push(UseLeaf {
                    segments,
                    alias: "*".to_owned(),
                });
                break;
            }
            if t.kind == TokKind::Ident {
                let seg = self.text(t).to_owned();
                self.pos += 1;
                if self.cur_is_ident("as") {
                    self.pos += 1;
                    let alias = self
                        .bump()
                        .map_or_else(String::new, |a| a.text(self.src).to_owned());
                    prefix.push(seg);
                    leaves.push(UseLeaf {
                        segments: prefix.clone(),
                        alias,
                    });
                    prefix.truncate(depth_at_entry);
                    return;
                }
                prefix.push(seg);
                if self.cur_is_punct("::") {
                    self.pos += 1;
                    continue;
                }
                // Leaf.
                leaves.push(UseLeaf {
                    segments: prefix.clone(),
                    alias: prefix.last().cloned().unwrap_or_default(),
                });
                prefix.truncate(depth_at_entry);
                return;
            }
            break;
        }
        prefix.truncate(depth_at_entry);
    }

    fn parse_fn(&mut self) -> Option<FnDecl> {
        self.pos += 1; // `fn`
        let name_tok = self.bump()?;
        let name = name_tok.text(self.src).to_owned();
        let sig_start = self.pos;
        // Signature: optional generics, params, return type, where clause.
        if self.cur_is_punct("<") {
            self.skip_generics();
        }
        if self.cur_is_punct("(") {
            self.skip_balanced();
        }
        // Scan to the body `{` or the `;` of a bodiless declaration. Angle
        // depth is tracked so `-> Option<Box<dyn Fn() -> T>>` can't trip
        // the brace detection; `(`/`[` sub-runs are skipped balanced.
        let mut angle = 0i64;
        loop {
            let Some(t) = self.peek() else {
                return Some(FnDecl {
                    name,
                    sig: (sig_start, self.pos),
                    body: None,
                });
            };
            if t.kind == TokKind::Punct {
                match self.text(t) {
                    "<" => angle += 1,
                    ">" => angle = (angle - 1).max(0),
                    "(" | "[" => {
                        self.skip_balanced();
                        continue;
                    }
                    ";" => {
                        let sig_end = self.pos;
                        self.pos += 1;
                        return Some(FnDecl {
                            name,
                            sig: (sig_start, sig_end),
                            body: None,
                        });
                    }
                    "{" if angle == 0 => {
                        let sig_end = self.pos;
                        let body_start = self.pos;
                        let body_end = self.skip_balanced();
                        return Some(FnDecl {
                            name,
                            sig: (sig_start, sig_end),
                            body: Some((body_start, body_end)),
                        });
                    }
                    "{" => {
                        // Const-generic default expression inside generics.
                        self.skip_balanced();
                        continue;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    fn parse_impl(&mut self) -> Option<ItemKind> {
        self.pos += 1; // `impl`
        if self.cur_is_punct("<") {
            self.skip_generics();
        }
        // Collect the head up to `{`, splitting on a depth-0 `for`.
        let mut pre_for: Vec<String> = Vec::new();
        let mut post_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut angle = 0i64;
        loop {
            let t = self.peek()?;
            if t.kind == TokKind::Punct {
                match self.text(t) {
                    "<" => angle += 1,
                    ">" => angle = (angle - 1).max(0),
                    "(" | "[" => {
                        self.skip_balanced();
                        continue;
                    }
                    "{" if angle == 0 => break,
                    _ => {}
                }
            }
            if t.is_ident(self.src, "for") && angle == 0 {
                saw_for = true;
                self.pos += 1;
                continue;
            }
            if t.is_ident(self.src, "where") && angle == 0 {
                // Where clause: skip to the `{`.
                while let Some(w) = self.peek() {
                    if w.is_punct(self.src, "{") {
                        break;
                    }
                    if w.is_punct(self.src, "(") || w.is_punct(self.src, "[") {
                        self.skip_balanced();
                        continue;
                    }
                    self.pos += 1;
                }
                break;
            }
            if t.kind == TokKind::Ident && angle == 0 {
                let target = if saw_for { &mut post_for } else { &mut pre_for };
                target.push(self.text(t).to_owned());
            }
            self.pos += 1;
        }
        // `impl Ty { }` → head idents are the type; `impl Tr for Ty { }` →
        // pre-`for` is the trait, post-`for` the type. The *last* ident of
        // a path (`serde::Serialize`) is its head name.
        let (trait_name, self_ty) = if saw_for {
            (pre_for.last().cloned(), post_for.last().cloned())
        } else {
            (None, pre_for.last().cloned())
        };
        self.pos += 1; // `{`
        let items = self.parse_items(true);
        self.pos += 1; // `}`
        Some(ItemKind::Impl {
            self_ty: self_ty.unwrap_or_default(),
            trait_name,
            items,
        })
    }

    fn parse_trait(&mut self) -> Option<ItemKind> {
        self.pos += 1; // `trait`
        let name_tok = self.bump()?;
        let name = name_tok.text(self.src).to_owned();
        if self.cur_is_punct("<") {
            self.skip_generics();
        }
        // Supertraits / where clause: scan to the body `{`.
        let mut angle = 0i64;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match self.text(t) {
                    "<" => angle += 1,
                    ">" => angle = (angle - 1).max(0),
                    "(" | "[" => {
                        self.skip_balanced();
                        continue;
                    }
                    "{" if angle == 0 => break,
                    ";" => {
                        // Trait alias `trait A = B;`.
                        self.pos += 1;
                        return Some(ItemKind::Trait {
                            name,
                            items: Vec::new(),
                        });
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
        self.pos += 1; // `{`
        let items = self.parse_items(true);
        self.pos += 1; // `}`
        Some(ItemKind::Trait { name, items })
    }

    /// `struct`/`enum`/`union`: record the name, skip the definition.
    fn parse_type_item(&mut self) -> Option<ItemKind> {
        self.pos += 1;
        let name = self
            .peek()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| self.text(t).to_owned());
        if name.is_some() {
            self.pos += 1;
        }
        if self.cur_is_punct("<") {
            self.skip_generics();
        }
        // Struct bodies: `{…}`, tuple `(&…);`, or unit `;`. Enums: `{…}`.
        while let Some(t) = self.peek() {
            match (t.kind, self.text(t)) {
                (TokKind::Punct, "{") => {
                    self.skip_balanced();
                    break;
                }
                (TokKind::Punct, "(") | (TokKind::Punct, "[") => {
                    self.skip_balanced();
                }
                (TokKind::Punct, ";") => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        Some(ItemKind::Other {
            name,
            attrs: Vec::new(),
        })
    }

    /// `const`/`static`/`type` items: skip to the terminating `;`.
    fn parse_terminated_item(&mut self) -> Option<ItemKind> {
        self.pos += 1;
        let name = self
            .peek()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| self.text(t).to_owned());
        while let Some(t) = self.peek() {
            match (t.kind, self.text(t)) {
                (TokKind::Punct, "(") | (TokKind::Punct, "[") | (TokKind::Punct, "{") => {
                    self.skip_balanced();
                }
                (TokKind::Punct, ";") => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        Some(ItemKind::Other {
            name,
            attrs: Vec::new(),
        })
    }

    fn parse_macro_def(&mut self) -> Option<ItemKind> {
        self.pos += 1; // `macro_rules`
        if self.cur_is_punct("!") {
            self.pos += 1;
        }
        let name = self
            .peek()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| self.text(t).to_owned());
        if name.is_some() {
            self.pos += 1;
        }
        if self
            .peek()
            .is_some_and(|t| matches!(self.text(t), "(" | "[" | "{"))
        {
            self.skip_balanced();
        }
        if self.cur_is_punct(";") {
            self.pos += 1;
        }
        Some(ItemKind::Other {
            name,
            attrs: Vec::new(),
        })
    }

    /// Anything unrecognised — most commonly a top-level macro invocation
    /// (`foo!{…}`) — is skipped to the next plausible item boundary.
    fn parse_unknown(&mut self) -> Option<ItemKind> {
        while let Some(t) = self.peek() {
            match (t.kind, self.text(t)) {
                (TokKind::Punct, "{") => {
                    self.skip_balanced();
                    break;
                }
                (TokKind::Punct, "(") | (TokKind::Punct, "[") => {
                    self.skip_balanced();
                }
                (TokKind::Punct, ";") => {
                    self.pos += 1;
                    break;
                }
                (TokKind::Punct, "}") => break,
                _ => self.pos += 1,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns_of(items: &[Item]) -> Vec<&FnDecl> {
        let mut out = Vec::new();
        fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a FnDecl>) {
            for item in items {
                match &item.kind {
                    ItemKind::Fn(f) => out.push(f),
                    ItemKind::Mod {
                        items: Some(sub), ..
                    } => walk(sub, out),
                    ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
                        walk(items, out);
                    }
                    _ => {}
                }
            }
        }
        walk(items, &mut out);
        out
    }

    #[test]
    fn parses_fns_mods_and_impls() {
        let src = "mod outer { pub fn inner(x: usize) -> usize { x + 1 } }\n\
                   pub struct S { a: u32 }\n\
                   impl S { fn method(&self) -> u32 { self.a } }\n\
                   impl std::fmt::Display for S {\n\
                       fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
                   }\n\
                   fn free<T: Clone>(t: &T) -> T where T: Sized { t.clone() }\n";
        let parsed = parse(src);
        let fns = fns_of(&parsed.items);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["inner", "method", "fmt", "free"]);
        assert!(fns.iter().all(|f| f.body.is_some()));
        // The Display impl is recognised as a trait impl.
        let has_display_impl = parsed.items.iter().any(|i| {
            matches!(&i.kind, ItemKind::Impl { self_ty, trait_name, .. }
                     if self_ty == "S" && trait_name.as_deref() == Some("Display"))
        });
        assert!(has_display_impl);
    }

    #[test]
    fn use_trees_flatten() {
        let src = "use std::collections::{HashMap, btree_map::Entry as E};\nuse crate::foo::*;\n";
        let parsed = parse(src);
        let mut leaves = Vec::new();
        for item in &parsed.items {
            if let ItemKind::Use { leaves: l } = &item.kind {
                leaves.extend(l.iter().cloned());
            }
        }
        assert!(leaves
            .iter()
            .any(|l| l.alias == "HashMap" && l.segments == ["std", "collections", "HashMap"]));
        assert!(leaves
            .iter()
            .any(|l| l.alias == "E" && l.segments.ends_with(&["Entry".into()])));
        assert!(leaves.iter().any(|l| l.alias == "*"));
    }

    #[test]
    fn cfg_test_and_test_fns_are_classified() {
        let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { assert!(true); }\n}\n\
                   fn prod() {}\n";
        let parsed = parse(src);
        let m = &parsed.items[0];
        assert!(m.cfg_test);
        if let ItemKind::Mod {
            items: Some(sub), ..
        } = &m.kind
        {
            assert!(sub[0].is_test_fn);
        } else {
            panic!("expected inline mod");
        }
        assert!(!parsed.items[1].cfg_test);
    }

    #[test]
    fn generic_heavy_signatures_find_their_bodies() {
        let src = "fn f<T, F: Fn(usize) -> Option<Box<dyn Iterator<Item = T>>>>(g: F) -> Vec<T>\n\
                   where T: Ord { let v: Vec<T> = Vec::new(); v }\n";
        let parsed = parse(src);
        let fns = fns_of(&parsed.items);
        assert_eq!(fns.len(), 1);
        let (b0, b1) = fns[0].body.expect("body found");
        let body: Vec<&str> = parsed.toks[b0..b1].iter().map(|t| t.text(src)).collect();
        assert_eq!(body.first().copied(), Some("{"));
        assert_eq!(body.last().copied(), Some("}"));
        assert!(body.contains(&"Vec"));
    }

    #[test]
    fn bodiless_trait_methods() {
        let src = "trait T { fn decl(&self) -> usize; fn with_default(&self) -> usize { 1 } }\n";
        let parsed = parse(src);
        let fns = fns_of(&parsed.items);
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_none());
        assert!(fns[1].body.is_some());
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn",
            "impl {",
            "use ;;",
            "mod m { fn f( }",
            "} } {{",
            "#[",
            "trait",
        ] {
            let _ = parse(src);
        }
    }
}
