//! Workspace walker: applies the rules in [`crate::rules`] to every Rust
//! source, crate manifest, and CI workflow definition in the repository.

use crate::lexer;
use crate::rules::{self, FileContext, FileKind, Violation};
use breval_obs::LabelRegistry;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never scanned (vendored deps, build output, lint fixtures —
/// fixtures *intentionally* violate rules).
const SKIP_DIRS: [&str; 4] = ["vendor", "target", "fixtures", ".git"];

/// Recursively collects files under `dir` with the given extension.
fn collect_files(dir: &Path, ext: &str, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                collect_files(&path, ext, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some(ext) {
            out.push(path);
        }
    }
}

/// All Rust sources belonging to the workspace (crates/, src/, examples/,
/// tests/), repo-relative to `root`.
#[must_use]
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "examples", "tests"] {
        collect_files(&root.join(top), "rs", &mut out);
    }
    out
}

/// All crate manifests checked by L006: `crates/*/Cargo.toml` plus the root
/// package manifest.
#[must_use]
pub fn workspace_manifests(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    collect_files(&root.join("crates"), "toml", &mut out);
    out.retain(|p| p.file_name().and_then(|n| n.to_str()) == Some("Cargo.toml"));
    out
}

/// All GitHub workflow definitions checked by L007:
/// `.github/workflows/*.yml` / `*.yaml`.
#[must_use]
pub fn workspace_workflows(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let dir = root.join(".github").join("workflows");
    collect_files(&dir, "yml", &mut out);
    collect_files(&dir, "yaml", &mut out);
    out.sort();
    out
}

/// `true` if `path` is the root file of a crate target (lib, main, or a
/// `src/bin/` binary) and must therefore carry `#![forbid(unsafe_code)]`.
fn is_crate_root(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    p.ends_with("src/lib.rs") || p.ends_with("src/main.rs") || p.contains("/src/bin/")
}

/// Lints one source file (already read) against all source-level rules.
#[must_use]
pub fn lint_source(rel: &Path, content: &str, registry: &LabelRegistry) -> Vec<Violation> {
    let scanned = lexer::scan(content);
    let ctx = FileContext {
        path: rel,
        kind: FileKind::classify(rel),
        is_obs_crate: rel
            .to_string_lossy()
            .replace('\\', "/")
            .contains("crates/obs/"),
        registry,
    };
    let mut out = rules::check_source(&ctx, &scanned);
    if is_crate_root(rel) {
        out.extend(rules::check_l002(rel, &scanned));
    }
    out
}

/// Lints the whole workspace rooted at `root`; returns all violations sorted
/// by file and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let registry = LabelRegistry::builtin();
    let mut out = Vec::new();
    let mut emitted = std::collections::BTreeSet::new();
    for path in workspace_sources(root) {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let content = fs::read_to_string(&path)?;
        let scanned = lexer::scan(&content);
        rules::collect_emitted_labels(&scanned, &mut emitted);
        out.extend(lint_source(&rel, &content, &registry));
    }
    // Stale direction of L003: every exact registry entry must have a live
    // call site (or a `# keep:` waiver). Only meaningful over the full
    // workspace, so `lint_paths` doesn't run it.
    let registry_file = "crates/obs/labels.txt";
    let registry_text = fs::read_to_string(root.join(registry_file))
        .unwrap_or_else(|_| breval_obs::REGISTRY_TEXT.to_owned());
    out.extend(rules::check_stale_labels(
        &registry_text,
        registry_file,
        &emitted,
    ));
    for path in workspace_manifests(root) {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let content = fs::read_to_string(&path)?;
        out.extend(rules::check_l006(&rel, &content));
    }
    for path in workspace_workflows(root) {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let content = fs::read_to_string(&path)?;
        out.extend(rules::check_l007(&rel, &content));
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

/// Lints an explicit list of files (sources by extension `.rs`, manifests by
/// name) — used by fixtures and for pre-commit checks of changed files.
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<Vec<Violation>> {
    let registry = LabelRegistry::builtin();
    let mut out = Vec::new();
    for path in paths {
        let abs = if path.is_absolute() {
            path.clone()
        } else {
            root.join(path)
        };
        let mut rel = abs.strip_prefix(root).unwrap_or(path).to_path_buf();
        // Lint-rule fixtures simulate *library* code: lint them under a
        // synthetic lib-root path so their on-disk home in a `tests/`
        // directory (which FileKind would exempt) doesn't mask the rules
        // they exist to exercise.
        if rel.components().any(|c| c.as_os_str() == "fixtures")
            && rel.extension().and_then(|e| e.to_str()) == Some("rs")
        {
            rel = PathBuf::from("crates/fixture/src/lib.rs");
        }
        let content = fs::read_to_string(&abs)?;
        match abs.extension().and_then(|e| e.to_str()) {
            Some("toml") => out.extend(rules::check_l006(&rel, &content)),
            Some("yml" | "yaml") => out.extend(rules::check_l007(&rel, &content)),
            _ => out.extend(lint_source(&rel, &content, &registry)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        assert!(is_crate_root(Path::new("crates/core/src/lib.rs")));
        assert!(is_crate_root(Path::new("src/lib.rs")));
        assert!(is_crate_root(Path::new(
            "crates/bench/src/bin/experiments.rs"
        )));
        assert!(!is_crate_root(Path::new("crates/core/src/classes.rs")));
    }

    #[test]
    fn lint_source_applies_l002_only_to_roots() {
        let reg = LabelRegistry::default();
        let v = lint_source(Path::new("crates/foo/src/lib.rs"), "pub fn f() {}\n", &reg);
        assert!(v.iter().any(|x| x.rule == "L002"));
        let v = lint_source(
            Path::new("crates/foo/src/other.rs"),
            "pub fn f() {}\n",
            &reg,
        );
        assert!(v.iter().all(|x| x.rule != "L002"));
    }
}
