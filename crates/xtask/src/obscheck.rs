//! `obscheck` — perf-regression gate over `BENCH_obs.json`.
//!
//! Compares a freshly generated bench-observability document against the
//! committed baseline (`crates/xtask/baselines/bench_obs_small.json`) with
//! per-stage tolerance bands; the CLI exits 1 on any regression so CI can
//! gate on it.
//!
//! The bands are deliberately generous: CI runs on small shared containers
//! (often a single hardware thread carrying a thread cap of 4), where wall
//! times carry scheduler noise that dwarfs real code changes. The gate is
//! therefore an order-of-magnitude tripwire, not a micro-benchmark:
//!
//! * **walls** regress only past `baseline × wall_factor`, and never below
//!   an absolute floor (`min_wall_ms`) that tiny sub-stages may drift
//!   within freely;
//! * **allocations** are nearly deterministic for a fixed seed, so their
//!   band is tighter (`alloc_factor`), again floored (`min_allocs`) so
//!   attribution jitter on near-empty stages can't trip the gate;
//! * a stage present in the baseline but absent from the fresh run is a
//!   regression (instrumentation was lost); a *new* stage is only a note,
//!   so adding spans doesn't require lockstep baseline updates;
//! * when the fresh run's `thread_cap` exceeds its `hardware_threads` the
//!   report carries an honesty note: utilisation and wall numbers from an
//!   oversubscribed box are noisy by construction.

use crate::json::Json;
use std::collections::BTreeMap;

/// Tolerance bands for [`check`].
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// A stage wall regresses past `baseline × wall_factor`.
    pub wall_factor: f64,
    /// Absolute wall floor (ms) below which stages never regress.
    pub min_wall_ms: f64,
    /// A stage's allocation count regresses past `baseline × alloc_factor`.
    pub alloc_factor: f64,
    /// Absolute allocation floor below which stages never regress.
    pub min_allocs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            wall_factor: 10.0,
            min_wall_ms: 50.0,
            alloc_factor: 2.0,
            min_allocs: 20_000.0,
        }
    }
}

/// Outcome of one baseline-vs-fresh comparison.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Hard failures: the CLI exits 1 when any are present.
    pub regressions: Vec<String>,
    /// Informational findings (new stages, oversubscription honesty note).
    pub notes: Vec<String>,
    /// Number of baseline stages compared.
    pub stages_compared: usize,
}

impl CheckReport {
    /// True when no regression was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn num(j: Option<&Json>) -> f64 {
    match j {
        Some(Json::Num(n)) => *n,
        _ => 0.0,
    }
}

fn num_map(doc: &Json, key: &str) -> BTreeMap<String, f64> {
    doc.get(key)
        .and_then(Json::as_obj)
        .map(|m| m.iter().map(|(k, v)| (k.clone(), num(Some(v)))).collect())
        .unwrap_or_default()
}

/// Compares `fresh` against `baseline` under the given tolerance bands.
#[must_use]
pub fn check(baseline: &Json, fresh: &Json, tol: &Tolerances) -> CheckReport {
    let mut rep = CheckReport::default();

    // The documents must describe the same experiment or the comparison is
    // meaningless — schema, scenario and seed all have to line up.
    let (bs, fs) = (num(baseline.get("schema")), num(fresh.get("schema")));
    if bs != fs {
        rep.regressions
            .push(format!("schema mismatch: baseline {bs} vs fresh {fs}"));
        return rep;
    }
    let b_scen = baseline.get("scenario").and_then(Json::as_str);
    let f_scen = fresh.get("scenario").and_then(Json::as_str);
    if b_scen != f_scen {
        rep.regressions.push(format!(
            "scenario mismatch: baseline {b_scen:?} vs fresh {f_scen:?}"
        ));
        return rep;
    }
    let (b_seed, f_seed) = (num(baseline.get("seed")), num(fresh.get("seed")));
    if b_seed != f_seed {
        rep.regressions.push(format!(
            "seed mismatch: baseline {b_seed} vs fresh {f_seed}"
        ));
        return rep;
    }

    let hw = num(fresh.get("hardware_threads"));
    let cap = num(fresh.get("thread_cap"));
    if hw > 0.0 && cap > hw {
        rep.notes.push(format!(
            "fresh run is oversubscribed ({cap} pool threads on {hw} hardware \
             thread(s)); wall comparisons carry scheduler noise"
        ));
    }

    let b_walls = num_map(baseline, "stage_wall_ms");
    let f_walls = num_map(fresh, "stage_wall_ms");
    rep.stages_compared = b_walls.len();
    for (path, &base) in &b_walls {
        match f_walls.get(path) {
            None => rep
                .regressions
                .push(format!("stage {path:?} missing from fresh run")),
            Some(&fresh_w) => {
                let limit = (base * tol.wall_factor).max(tol.min_wall_ms);
                // Inclusive: an exactly-`wall_factor`× blowup is a regression.
                if fresh_w >= limit && fresh_w > tol.min_wall_ms {
                    rep.regressions.push(format!(
                        "stage {path:?} wall {fresh_w:.1} ms exceeds {limit:.1} ms \
                         (baseline {base:.1} ms × {:.0})",
                        tol.wall_factor
                    ));
                }
            }
        }
    }
    for path in f_walls.keys().filter(|p| !b_walls.contains_key(*p)) {
        rep.notes
            .push(format!("new stage {path:?} has no baseline yet"));
    }

    let b_allocs = num_map(baseline, "stage_allocs");
    let f_allocs = num_map(fresh, "stage_allocs");
    for (path, &base) in &b_allocs {
        let Some(&fresh_a) = f_allocs.get(path) else {
            continue; // already reported via the wall map
        };
        let limit = (base * tol.alloc_factor).max(tol.min_allocs);
        if fresh_a > limit {
            rep.regressions.push(format!(
                "stage {path:?} allocations {fresh_a:.0} exceed {limit:.0} \
                 (baseline {base:.0} × {:.0})",
                tol.alloc_factor
            ));
        }
    }

    // Item-latency tail: bucketed to powers of two, so the generous wall
    // factor is the right band here too.
    let b_p99 = num(baseline
        .get("parallel_map_item_ns")
        .and_then(|l| l.get("p99_ns")));
    let f_p99 = num(fresh
        .get("parallel_map_item_ns")
        .and_then(|l| l.get("p99_ns")));
    if b_p99 > 0.0 && f_p99 > (b_p99 * tol.wall_factor).max(1e6) {
        rep.regressions.push(format!(
            "parallel_map item p99 {f_p99:.0} ns exceeds {:.0} ns \
             (baseline {b_p99:.0} ns × {:.0})",
            (b_p99 * tol.wall_factor).max(1e6),
            tol.wall_factor
        ));
    }

    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const BASE: &str = r#"{
        "schema": 2, "name": "experiments", "scenario": "small", "seed": 7,
        "hardware_threads": 4, "thread_cap": 4, "journal": true,
        "stage_wall_ms": {"run": 400.0, "run/infer": 300.0, "run/tiny": 0.4},
        "stage_allocs": {"run": 100000, "run/infer": 60000, "run/tiny": 50},
        "stage_alloc_bytes": {"run": 1, "run/infer": 1, "run/tiny": 1},
        "parallel_map_item_ns": {"count": 10, "p50_ns": 1000, "p90_ns": 2000, "p99_ns": 100000},
        "counters": {}
    }"#;

    fn doc(text: &str) -> Json {
        parse(text).expect("valid test JSON")
    }

    #[test]
    fn identical_documents_are_clean() {
        let b = doc(BASE);
        let rep = check(&b, &b, &Tolerances::default());
        assert!(rep.is_clean(), "unexpected: {:?}", rep.regressions);
        assert_eq!(rep.stages_compared, 3);
    }

    #[test]
    fn ten_x_stage_wall_regression_is_caught() {
        let b = doc(BASE);
        let f = doc(&BASE.replace(r#""run/infer": 300.0"#, r#""run/infer": 3300.0"#));
        let rep = check(&b, &f, &Tolerances::default());
        assert_eq!(rep.regressions.len(), 1, "got: {:?}", rep.regressions);
        assert!(rep.regressions[0].contains("run/infer"));
        assert!(rep.regressions[0].contains("wall"));
    }

    #[test]
    fn tiny_stage_jitter_stays_under_the_floor() {
        // 0.4 ms → 30 ms is a 75× blowup but still under min_wall_ms.
        let b = doc(BASE);
        let f = doc(&BASE.replace(r#""run/tiny": 0.4"#, r#""run/tiny": 30.0"#));
        assert!(check(&b, &f, &Tolerances::default()).is_clean());
    }

    #[test]
    fn missing_stage_is_a_regression_new_stage_is_a_note() {
        let b = doc(BASE);
        let f = doc(&BASE.replace(r#""run/tiny": 0.4"#, r#""run/extra": 1.0"#));
        let rep = check(&b, &f, &Tolerances::default());
        assert!(rep
            .regressions
            .iter()
            .any(|r| r.contains("run/tiny") && r.contains("missing")));
        assert!(rep.notes.iter().any(|n| n.contains("run/extra")));
    }

    #[test]
    fn doubled_allocations_regress_but_small_counts_do_not() {
        let b = doc(BASE);
        let f = doc(&BASE.replace(r#""run/infer": 60000"#, r#""run/infer": 130000"#));
        let rep = check(&b, &f, &Tolerances::default());
        assert!(rep.regressions.iter().any(|r| r.contains("allocations")));
        // 50 → 5000 allocs is a 100× blowup but under the absolute floor.
        let f = doc(&BASE.replace(r#""run/tiny": 50"#, r#""run/tiny": 5000"#));
        assert!(check(&b, &f, &Tolerances::default()).is_clean());
    }

    #[test]
    fn latency_tail_regression_is_caught() {
        let b = doc(BASE);
        let f = doc(&BASE.replace(r#""p99_ns": 100000"#, r#""p99_ns": 2000000"#));
        let rep = check(&b, &f, &Tolerances::default());
        assert!(rep.regressions.iter().any(|r| r.contains("p99")));
    }

    #[test]
    fn mismatched_runs_refuse_to_compare() {
        let b = doc(BASE);
        let f = doc(&BASE.replace(r#""seed": 7"#, r#""seed": 8"#));
        let rep = check(&b, &f, &Tolerances::default());
        assert!(rep.regressions.iter().any(|r| r.contains("seed mismatch")));
        let f = doc(&BASE.replace(r#""schema": 2"#, r#""schema": 1"#));
        let rep = check(&b, &f, &Tolerances::default());
        assert!(rep
            .regressions
            .iter()
            .any(|r| r.contains("schema mismatch")));
    }

    #[test]
    fn oversubscription_gets_an_honesty_note() {
        let b = doc(BASE);
        let f = doc(&BASE.replace(r#""hardware_threads": 4"#, r#""hardware_threads": 1"#));
        let rep = check(&b, &f, &Tolerances::default());
        assert!(rep.is_clean());
        assert!(rep.notes.iter().any(|n| n.contains("oversubscribed")));
    }

    #[test]
    fn committed_baseline_is_self_consistent() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines/bench_obs_small.json");
        let text = std::fs::read_to_string(&path).expect("committed baseline exists");
        let b = doc(&text);
        let rep = check(&b, &b, &Tolerances::default());
        assert!(rep.is_clean());
        assert!(rep.stages_compared >= 10, "baseline looks truncated");
    }

    #[test]
    fn committed_regression_fixture_trips_the_gate() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines");
        let base = doc(&std::fs::read_to_string(dir.join("bench_obs_small.json"))
            .expect("committed baseline exists"));
        let fixture = doc(
            &std::fs::read_to_string(dir.join("regression_fixture_10x.json"))
                .expect("committed regression fixture exists"),
        );
        let rep = check(&base, &fixture, &Tolerances::default());
        assert!(!rep.is_clean(), "10× fixture must regress");
        assert!(rep.regressions.iter().any(|r| r.contains("wall")));
    }
}
