//! `obsreport` — human-readable rendering of `BENCH_obs.json`.
//!
//! Reads the schema-2 bench-observability document (written by
//! `crates/bench/src/bin/experiments.rs`) through the crate's own JSON
//! reader and prints:
//!
//! * a **flame summary**: every stage path with its wall, *self* time
//!   (wall minus same-thread direct children), and journal-attributed
//!   allocation deltas, sorted by self time so the most expensive leaf
//!   work floats to the top;
//! * a **pool-utilisation table**: for every stage that ran a
//!   `parallel_map`, the summed `pool_worker` busy time against the stage
//!   wall × thread cap, i.e. how much of the pool's theoretical capacity
//!   the stage actually used;
//! * the `parallel_map` item-latency quantiles and the pool-health
//!   counters.
//!
//! `pool_worker` children accumulate busy time across *all* worker
//! threads, so they routinely exceed their parent's single-thread wall;
//! they are therefore excluded from the self-time subtraction (they are
//! concurrency, not same-thread sub-work), and self time is clamped at
//! zero for the remaining concurrent-child cases (e.g. `infer_*` spans
//! adopted onto worker threads).

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One stage row of the flame summary.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Slash-joined span path, e.g. `scenario_run/infer_all`.
    pub path: String,
    /// Total wall time attributed to the span, in milliseconds.
    pub wall_ms: f64,
    /// Wall minus same-thread direct children, clamped at zero.
    pub self_ms: f64,
    /// Allocations attributed to the span on its own thread.
    pub allocs: u64,
    /// Bytes allocated, same attribution as `allocs`.
    pub alloc_bytes: u64,
}

/// One row of the pool-utilisation table.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolRow {
    /// The stage that submitted the `parallel_map`.
    pub path: String,
    /// The stage's own wall, in milliseconds.
    pub stage_wall_ms: f64,
    /// Summed busy time of every pool worker slice under the stage.
    pub worker_busy_ms: f64,
    /// `worker_busy_ms / (stage_wall_ms × thread_cap)`, in `[0, 1]`-ish
    /// (caller-as-worker overlap can nudge it past 1 on tiny stages).
    pub utilisation: f64,
}

fn num(j: Option<&Json>) -> f64 {
    match j {
        Some(Json::Num(n)) => *n,
        _ => 0.0,
    }
}

fn num_map(doc: &Json, key: &str) -> BTreeMap<String, f64> {
    doc.get(key)
        .and_then(Json::as_obj)
        .map(|m| m.iter().map(|(k, v)| (k.clone(), num(Some(v)))).collect())
        .unwrap_or_default()
}

/// `child` is a *same-thread* direct child of `parent`: exactly one path
/// segment deeper, and not a `pool_worker` busy-time accumulator (those
/// sum across worker threads and would make self time meaningless).
fn is_serial_child(child: &str, parent: &str) -> bool {
    child
        .strip_prefix(parent)
        .and_then(|rest| rest.strip_prefix('/'))
        .is_some_and(|seg| !seg.contains('/') && seg != "pool_worker")
}

/// Extracts the flame-summary rows, sorted by self time descending
/// (ties broken by path so the order is deterministic).
#[must_use]
pub fn stage_rows(doc: &Json) -> Vec<StageRow> {
    let walls = num_map(doc, "stage_wall_ms");
    let allocs = num_map(doc, "stage_allocs");
    let bytes = num_map(doc, "stage_alloc_bytes");
    let mut rows: Vec<StageRow> = walls
        .iter()
        .map(|(path, &wall)| {
            let child_sum: f64 = walls
                .iter()
                .filter(|(c, _)| is_serial_child(c, path))
                .map(|(_, w)| *w)
                .sum();
            StageRow {
                path: path.clone(),
                wall_ms: wall,
                self_ms: (wall - child_sum).max(0.0),
                allocs: allocs.get(path).copied().unwrap_or(0.0) as u64,
                alloc_bytes: bytes.get(path).copied().unwrap_or(0.0) as u64,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.self_ms
            .total_cmp(&a.self_ms)
            .then_with(|| a.path.cmp(&b.path))
    });
    rows
}

/// Extracts the pool-utilisation rows: one per stage with a recorded
/// `<stage>/pool_worker` accumulator, sorted by stage path.
#[must_use]
pub fn pool_rows(doc: &Json) -> Vec<PoolRow> {
    let walls = num_map(doc, "stage_wall_ms");
    let cap = num(doc.get("thread_cap")).max(1.0);
    walls
        .iter()
        .filter_map(|(path, &busy)| {
            let parent = path.strip_suffix("/pool_worker")?;
            let stage_wall = walls.get(parent).copied()?;
            Some(PoolRow {
                path: parent.to_owned(),
                stage_wall_ms: stage_wall,
                worker_busy_ms: busy,
                utilisation: if stage_wall > 0.0 {
                    busy / (stage_wall * cap)
                } else {
                    0.0
                },
            })
        })
        .collect()
}

/// Renders the full report for one parsed `BENCH_obs.json` document.
#[must_use]
pub fn render(doc: &Json) -> String {
    let mut out = String::new();
    let name = doc.get("name").and_then(Json::as_str).unwrap_or("?");
    let scenario = doc.get("scenario").and_then(Json::as_str).unwrap_or("?");
    let seed = num(doc.get("seed"));
    let hw = num(doc.get("hardware_threads"));
    let cap = num(doc.get("thread_cap"));
    let journal = matches!(doc.get("journal"), Some(Json::Bool(true)));
    let _ = writeln!(
        out,
        "obsreport: {name} scenario={scenario} seed={seed} \
         hardware_threads={hw} thread_cap={cap} journal={journal}",
    );
    if hw > 0.0 && cap > hw {
        let _ = writeln!(
            out,
            "obsreport: note — pool oversubscribed ({cap} threads on {hw} \
             hardware thread(s)); walls include scheduler noise",
        );
    }

    let _ = writeln!(
        out,
        "\n{:<58} {:>10} {:>10} {:>9} {:>12}",
        "stage (self-time order)", "self ms", "wall ms", "allocs", "bytes"
    );
    for r in stage_rows(doc) {
        let _ = writeln!(
            out,
            "{:<58} {:>10.1} {:>10.1} {:>9} {:>12}",
            r.path, r.self_ms, r.wall_ms, r.allocs, r.alloc_bytes
        );
    }

    let pools = pool_rows(doc);
    if !pools.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<58} {:>10} {:>10} {:>6}",
            "pool utilisation (busy vs wall × cap)", "wall ms", "busy ms", "util"
        );
        for r in &pools {
            let _ = writeln!(
                out,
                "{:<58} {:>10.1} {:>10.1} {:>5.0}%",
                r.path,
                r.stage_wall_ms,
                r.worker_busy_ms,
                r.utilisation * 100.0
            );
        }
    }

    if let Some(lat) = doc.get("parallel_map_item_ns") {
        let count = num(lat.get("count"));
        if count > 0.0 {
            let _ = writeln!(
                out,
                "\nparallel_map items: {count} \
                 (p50 {:.1} µs, p90 {:.1} µs, p99 {:.1} µs)",
                num(lat.get("p50_ns")) / 1_000.0,
                num(lat.get("p90_ns")) / 1_000.0,
                num(lat.get("p99_ns")) / 1_000.0,
            );
        }
    }
    if let Some(counters) = doc.get("counters").and_then(Json::as_obj) {
        let pool: Vec<String> = counters
            .iter()
            .filter(|(k, _)| k.starts_with("pool_"))
            .map(|(k, v)| format!("{k}={}", num(Some(v))))
            .collect();
        if !pool.is_empty() {
            let _ = writeln!(out, "pool health: {}", pool.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const DOC: &str = r#"{
        "schema": 2, "name": "experiments", "scenario": "small", "seed": 7,
        "hardware_threads": 1, "thread_cap": 4, "journal": true,
        "stage_wall_ms": {
            "run": 100.0,
            "run/alpha": 60.0,
            "run/alpha/pool_worker": 150.0,
            "run/beta": 30.0
        },
        "stage_allocs": {"run": 10, "run/alpha": 6, "run/beta": 3},
        "stage_alloc_bytes": {"run": 1000, "run/alpha": 600, "run/beta": 300},
        "parallel_map_item_ns": {"count": 8, "p50_ns": 1000, "p90_ns": 2000, "p99_ns": 4000},
        "counters": {"pool_items_total": 8, "other": 1}
    }"#;

    #[test]
    fn self_time_subtracts_serial_children_only() {
        let doc = parse(DOC).expect("valid fixture");
        let rows = stage_rows(&doc);
        let by_path = |p: &str| rows.iter().find(|r| r.path == p).expect("row");
        // run: 100 − (60 + 30) = 10; the grandchild pool_worker is not direct.
        assert!((by_path("run").self_ms - 10.0).abs() < 1e-9);
        // run/alpha keeps its full wall: pool_worker busy time is excluded.
        assert!((by_path("run/alpha").self_ms - 60.0).abs() < 1e-9);
        assert_eq!(by_path("run/beta").allocs, 3);
    }

    #[test]
    fn rows_sorted_by_self_time_descending() {
        let doc = parse(DOC).expect("valid fixture");
        let rows = stage_rows(&doc);
        for pair in rows.windows(2) {
            assert!(pair[0].self_ms >= pair[1].self_ms, "unsorted: {pair:?}");
        }
        assert_eq!(rows[0].path, "run/alpha/pool_worker"); // self 150
    }

    #[test]
    fn pool_utilisation_uses_thread_cap() {
        let doc = parse(DOC).expect("valid fixture");
        let pools = pool_rows(&doc);
        assert_eq!(pools.len(), 1);
        assert_eq!(pools[0].path, "run/alpha");
        // busy 150 / (wall 60 × cap 4) = 0.625
        assert!((pools[0].utilisation - 0.625).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_oversubscription_and_latency() {
        let doc = parse(DOC).expect("valid fixture");
        let text = render(&doc);
        assert!(text.contains("pool oversubscribed"));
        assert!(text.contains("parallel_map items: 8"));
        assert!(text.contains("pool_items_total=8"));
        assert!(!text.contains("other=1"), "non-pool counters stay out");
    }

    #[test]
    fn clamps_negative_self_time() {
        let doc = parse(
            r#"{"thread_cap": 2, "stage_wall_ms": {"a": 10.0, "a/b": 15.0},
                "stage_allocs": {}, "stage_alloc_bytes": {}}"#,
        )
        .expect("valid");
        let rows = stage_rows(&doc);
        let a = rows.iter().find(|r| r.path == "a").expect("row");
        assert_eq!(a.self_ms, 0.0);
    }
}
