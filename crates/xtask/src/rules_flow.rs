//! Flow-aware semantic rules (`deepcheck`): L008–L011.
//!
//! Where `rules.rs` checks one scanned line at a time, these rules reason
//! over the workspace call graph built by [`crate::callgraph`]:
//!
//! - **L008 determinism** — a function from which a serialization/output
//!   sink is *coreachable* must not iterate a `HashMap`/`HashSet`
//!   unsorted: iteration order would leak into emitted artifacts and
//!   break byte-identical reproducibility.
//! - **L009 panic reachability** — no `unwrap()`, message-less
//!   `expect()`, `panic!`-family macro, or indexing with a literal in any
//!   function reachable from a registered pipeline entry point.
//! - **L010 hot-kernel allocation** — functions registered as `kernel`
//!   (and their transitive callees) must not allocate in steady state:
//!   no `Vec::new`/`push`/`collect`/`clone`/`format!`/`to_string`/
//!   `Box::new` and friends.
//! - **L011 parallel-closure hygiene** — closures handed to
//!   `parallel_map*` must not take locks, open journal spans (the pool
//!   worker already wraps each item), or mutate captured state through
//!   interior mutability; the same holds transitively for everything the
//!   closure calls outside the sanctioned `breval_par`/`breval_obs`
//!   internals.
//! - **L012 deprecated calls** — functions registered as `deprecated`
//!   must not gain new call sites in non-test code: legacy wrappers stay
//!   for compatibility, but hot paths must use their replacements (e.g.
//!   the snapshot layer instead of per-call `CsrGraph::build` wrappers).
//!
//! All five respect the standard waiver pragma
//! (`// breval-lint: allow(L0xx) -- reason`), resolved through
//! [`crate::lexer::scan`] exactly like the token-level rules.

use std::collections::BTreeMap;

use crate::callgraph::{extract_calls, extract_calls_at, CallGraph};
use crate::lexer;
use crate::resolve::{CallRef, Workspace};
use crate::rules::Violation;
use crate::tokens::{Tok, TokKind};

/// Registry roles parsed from `deepcheck.txt`.
#[derive(Debug, Default)]
pub struct Registry {
    /// `(path-suffix, 1-based registry line)` pipeline entry points.
    pub entries: Vec<(String, usize)>,
    /// Hot kernels that must stay allocation-free.
    pub kernels: Vec<(String, usize)>,
    /// Serialization / output sinks.
    pub sinks: Vec<(String, usize)>,
    /// Deprecated functions that must not gain non-test call sites.
    pub deprecated: Vec<(String, usize)>,
}

/// Repo-relative path of the built-in registry, used in stale-entry findings.
pub const REGISTRY_PATH: &str = "crates/xtask/deepcheck.txt";

impl Registry {
    /// Parses the `role suffix` line format; `#` starts a comment.
    #[must_use]
    pub fn parse(text: &str) -> Registry {
        let mut reg = Registry::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(role), Some(suffix)) = (parts.next(), parts.next()) else {
                continue;
            };
            let slot = match role {
                "entry" => &mut reg.entries,
                "kernel" => &mut reg.kernels,
                "sink" => &mut reg.sinks,
                "deprecated" => &mut reg.deprecated,
                _ => continue,
            };
            slot.push((suffix.to_owned(), idx + 1));
        }
        reg
    }

    /// The registry shipped with the linter (`deepcheck.txt`).
    #[must_use]
    pub fn builtin() -> Registry {
        Registry::parse(include_str!("../deepcheck.txt"))
    }
}

/// Runs all flow rules over a loaded workspace and returns unwaived
/// violations sorted by file and line.
#[must_use]
pub fn deepcheck(ws: &Workspace, reg: &Registry) -> Vec<Violation> {
    let graph = CallGraph::build(ws);
    let mut out = Vec::new();

    let entries = resolve_registry(ws, &reg.entries, "L009", "entry", &mut out);
    let kernels = resolve_registry(ws, &reg.kernels, "L010", "kernel", &mut out);
    let mut sinks = resolve_registry(ws, &reg.sinks, "L008", "sink", &mut out);
    let deprecated = resolve_registry(ws, &reg.deprecated, "L012", "deprecated", &mut out);
    for id in 0..ws.fns.len() {
        if !ws.fns[id].is_test && (ws.is_serialize_impl(id) || is_auto_sink(ws, id)) {
            sinks.push(id);
        }
    }

    let from_entry = graph.reachable(&entries);
    let in_kernel = graph.reachable(&kernels);
    let to_sink = graph.coreachable(&sinks);

    for id in 0..ws.fns.len() {
        let f = &ws.fns[id];
        if f.is_test || f.body.is_none() {
            continue;
        }
        // L008 scope: functions that can reach a sink directly, plus
        // producer functions that hand a hash container up to the
        // entry-reachable pipeline (their iteration order leaks into
        // whatever the pipeline emits from it).
        if to_sink[id] || (from_entry[id] && fn_returns_hash(ws, id)) {
            l008_scan(ws, id, &mut out);
        }
        if from_entry[id] {
            l009_scan(ws, id, &mut out);
        }
        if in_kernel[id] {
            l010_scan(ws, id, &mut out);
        }
        l011_scan(ws, &graph, id, &mut out);
        l012_scan(ws, id, &deprecated, &mut out);
    }

    let mut out = apply_waivers(ws, out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out.dedup();
    out
}

/// Convenience wrapper: load the workspace at `root` and deepcheck it
/// with the built-in registry.
pub fn deepcheck_root(root: &std::path::Path) -> std::io::Result<Vec<Violation>> {
    let ws = Workspace::load(root)?;
    Ok(deepcheck(&ws, &Registry::builtin()))
}

fn resolve_registry(
    ws: &Workspace,
    entries: &[(String, usize)],
    rule: &'static str,
    role: &str,
    out: &mut Vec<Violation>,
) -> Vec<usize> {
    let mut ids = Vec::new();
    for (suffix, line) in entries {
        let matched = ws.match_suffix(suffix);
        if matched.is_empty() {
            out.push(Violation {
                file: REGISTRY_PATH.to_owned(),
                line: *line,
                rule,
                message: format!("stale registry: {role} `{suffix}` matches no workspace function"),
            });
        }
        ids.extend(matched);
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Functions that write artifacts directly (JSON, files, stdout tables)
/// are sinks even without a registry line.
fn is_auto_sink(ws: &Workspace, id: usize) -> bool {
    let f = &ws.fns[id];
    let Some((b0, b1)) = f.body else {
        return false;
    };
    let file = &ws.files[f.file_idx];
    let src = &file.src;
    let toks = &file.toks;
    let mut i = b0;
    while i < b1 {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text(src) {
                "serde_json" => return true,
                "write" | "write_all" | "create" | "println" | "writeln" | "print" => {
                    // `fs::write`, `File::create`, `writeln!(..)`, stdout
                    // emission. Require call shape to skip field names.
                    let called = toks
                        .get(i + 1)
                        .is_some_and(|n| n.is_punct(src, "(") || n.is_punct(src, "!"));
                    let qualified = i
                        .checked_sub(1)
                        .and_then(|p| toks.get(p))
                        .is_some_and(|p| p.is_punct(src, "::") || p.is_punct(src, "."));
                    if called
                        && (qualified || t.text(src).ends_with("ln") || t.text(src) == "print")
                    {
                        return true;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    false
}

// ---------------------------------------------------------------------
// L008 — determinism: unsorted hash iteration feeding output
// ---------------------------------------------------------------------

const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
];

fn l008_scan(ws: &Workspace, id: usize, out: &mut Vec<Violation>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file_idx];
    let (src, toks) = (&file.src, &file.toks);
    let (b0, b1) = f.body.expect("caller checked body");
    let hash_vars = collect_hash_vars(src, toks, f.sig, (b0, b1));
    if hash_vars.is_empty() && !body_has_hash_returning_call(ws, f.file_idx, src, toks, b0, b1) {
        return;
    }
    let path = ws.path_of(id);

    let mut i = b0;
    while i < b1 {
        let t = &toks[i];
        // `name.iter()` / `name.keys()` … on a hash-typed variable.
        if t.is_punct(src, ".") && i > b0 {
            let recv = &toks[i - 1];
            let meth = toks.get(i + 1);
            let open = toks.get(i + 2);
            if recv.kind == TokKind::Ident
                && hash_vars.contains(&recv.text(src).to_owned())
                && meth.is_some_and(|m| {
                    m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text(src))
                })
                && open.is_some_and(|o| o.is_punct(src, "("))
                && !mitigated(src, toks, i, b0, b1)
            {
                out.push(Violation {
                    file: file.rel.to_string_lossy().replace('\\', "/"),
                    line: t.line as usize,
                    rule: "L008",
                    message: format!(
                        "unordered iteration over hash container `{}` in `{path}`, which can \
                         reach an output sink; sort before emission or use a BTree container",
                        recv.text(src)
                    ),
                });
            }
        }
        // `for pat in <expr> {` where <expr> is a bare hash variable or a
        // call returning a hash container.
        if t.is_ident(src, "for") {
            if let Some((e0, e1)) = for_loop_expr(src, toks, i, b1) {
                let mut k = e0;
                while k < e1 && (toks[k].is_punct(src, "&") || toks[k].is_ident(src, "mut")) {
                    k += 1;
                }
                let bare_hash = e1 == k + 1
                    && toks[k].kind == TokKind::Ident
                    && hash_vars.contains(&toks[k].text(src).to_owned());
                let call_hash = call_returns_hash(ws, f.file_idx, src, toks, k, e1);
                if (bare_hash || call_hash) && !mitigated(src, toks, i, b0, b1) {
                    out.push(Violation {
                        file: file.rel.to_string_lossy().replace('\\', "/"),
                        line: t.line as usize,
                        rule: "L008",
                        message: format!(
                            "for-loop over unordered hash container in `{path}`, which can \
                             reach an output sink; sort before emission or use a BTree container"
                        ),
                    });
                }
            }
        }
        i += 1;
    }
}

/// Extent `[e0, e1)` of the iterated expression of the `for` at `i`.
fn for_loop_expr(src: &str, toks: &[Tok], i: usize, end: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    let mut j = i + 1;
    let mut e0 = None;
    while j < end {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text(src) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    if depth == 0 {
                        if let Some(s) = e0 {
                            return Some((s, j));
                        }
                    }
                    depth += 1;
                }
                "}" => depth -= 1,
                _ => {}
            }
        }
        if depth == 0 && t.is_ident(src, "in") && e0.is_none() {
            e0 = Some(j + 1);
        }
        j += 1;
    }
    None
}

/// Maps identifiers bound by a `windows(k)` iteration (a `for` pattern or a
/// closure parameter downstream of the call) to the window size `k`.
/// Indexing such a binding with a literal `< k` cannot panic.
fn windows_bindings(src: &str, toks: &[Tok], b0: usize, b1: usize) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    let window_size = |i: usize| -> Option<u64> {
        if toks[i].is_ident(src, "windows")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(src, "("))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(src, ")"))
        {
            toks.get(i + 2)
                .filter(|t| t.kind == TokKind::Number)
                .and_then(|t| t.text(src).parse().ok())
        } else {
            None
        }
    };
    for i in b0..b1.min(toks.len()) {
        let Some(k) = window_size(i) else { continue };
        // Closure form: `.windows(k).map(|w| ...)` — bind the params of the
        // first closure within a short lookahead (adapters like `.enumerate()`
        // or `.rev()` may sit in between).
        let lim = (i + 34).min(b1);
        let mut j = i + 4;
        while j < lim && !toks[j].is_punct(src, "|") {
            j += 1;
        }
        if j < lim {
            let mut p = j + 1;
            while p < b1 && !toks[p].is_punct(src, "|") {
                if toks[p].kind == TokKind::Ident && !toks[p].is_ident(src, "mut") {
                    map.insert(toks[p].text(src).to_owned(), k);
                }
                p += 1;
            }
        }
    }
    // For-loop form: `for w in xs.windows(k)` — bind every identifier in the
    // loop pattern (covers `(i, w)` from `.enumerate()`; the index binding is
    // harmless since only literal-indexed receivers are looked up).
    for i in b0..b1.min(toks.len()) {
        if !toks[i].is_ident(src, "for") {
            continue;
        }
        let Some((e0, e1)) = for_loop_expr(src, toks, i, b1) else {
            continue;
        };
        let Some(k) = (e0..e1).find_map(&window_size) else {
            continue;
        };
        // Pattern tokens sit between the `for` keyword and the `in` (at
        // `e0 - 1`, which `for_loop_expr` guarantees is past `i`).
        for tok in &toks[i + 1..e0 - 1] {
            if tok.kind == TokKind::Ident && !tok.is_ident(src, "mut") {
                map.insert(tok.text(src).to_owned(), k);
            }
        }
    }
    map
}

/// `true` if `[k, e1)` starts with a path call whose resolved target
/// returns a `HashMap`/`HashSet`.
fn call_returns_hash(
    ws: &Workspace,
    file_idx: usize,
    src: &str,
    toks: &[Tok],
    k: usize,
    e1: usize,
) -> bool {
    if k >= e1 || toks[k].kind != TokKind::Ident {
        return false;
    }
    for call in extract_calls(src, toks, k, e1) {
        if let CallRef::Path(_) = call {
            if ws
                .resolve(file_idx, &call)
                .into_iter()
                .any(|t| fn_returns_hash(ws, t))
            {
                return true;
            }
        }
    }
    false
}

fn fn_returns_hash(ws: &Workspace, id: usize) -> bool {
    let f = &ws.fns[id];
    let file = &ws.files[f.file_idx];
    let (src, toks) = (&file.src, &file.toks);
    let (s0, s1) = f.sig;
    let mut seen_arrow = false;
    for t in &toks[s0..s1.min(toks.len())] {
        if t.is_punct(src, "->") {
            seen_arrow = true;
        }
        if seen_arrow && t.kind == TokKind::Ident {
            let w = t.text(src);
            if w == "HashMap" || w == "HashSet" {
                return true;
            }
        }
    }
    false
}

/// Hash-typed names in scope: parameters and `let` bindings whose
/// declaration mentions `HashMap`/`HashSet`.
fn collect_hash_vars(
    src: &str,
    toks: &[Tok],
    sig: (usize, usize),
    body: (usize, usize),
) -> Vec<String> {
    let mut vars = Vec::new();
    // Parameters: `name: ... HashMap<..> ...` segments inside the sig parens.
    let (s0, s1) = sig;
    let mut i = s0;
    while i < s1.min(toks.len()) && !toks[i].is_punct(src, "(") {
        i += 1;
    }
    if i < s1.min(toks.len()) {
        let mut depth = 0i64;
        let mut seg_name: Option<String> = None;
        let mut seg_hash = false;
        let mut j = i;
        while j < s1.min(toks.len()) {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text(src) {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    "," if depth == 1 => {
                        if seg_hash {
                            vars.extend(seg_name.take());
                        }
                        seg_name = None;
                        seg_hash = false;
                        j += 1;
                        continue;
                    }
                    _ => {}
                }
            }
            if depth == 1
                && seg_name.is_none()
                && t.kind == TokKind::Ident
                && !t.is_ident(src, "mut")
                && toks.get(j + 1).is_some_and(|n| n.is_punct(src, ":"))
            {
                seg_name = Some(t.text(src).to_owned());
            }
            if t.is_ident(src, "HashMap") || t.is_ident(src, "HashSet") {
                seg_hash = true;
            }
            j += 1;
        }
        if seg_hash {
            vars.extend(seg_name);
        }
    }
    // `let [mut] name ... = ... ;` statements mentioning HashMap/HashSet.
    let (b0, b1) = body;
    let mut j = b0;
    while j < b1 {
        if toks[j].is_ident(src, "let") {
            let mut k = j + 1;
            while k < b1 && toks[k].is_ident(src, "mut") {
                k += 1;
            }
            let name =
                (k < b1 && toks[k].kind == TokKind::Ident).then(|| toks[k].text(src).to_owned());
            // Scan the statement (to `;` at delimiter depth 0).
            let mut depth = 0i64;
            let mut hash = false;
            while k < b1 {
                let t = &toks[k];
                if t.kind == TokKind::Punct {
                    match t.text(src) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                }
                if t.is_ident(src, "HashMap") || t.is_ident(src, "HashSet") {
                    hash = true;
                }
                k += 1;
            }
            if hash {
                vars.extend(name);
            }
            j = k;
            continue;
        }
        j += 1;
    }
    vars.sort();
    vars.dedup();
    vars
}

fn body_has_hash_returning_call(
    ws: &Workspace,
    file_idx: usize,
    src: &str,
    toks: &[Tok],
    b0: usize,
    b1: usize,
) -> bool {
    extract_calls(src, toks, b0, b1).iter().any(|c| {
        matches!(c, CallRef::Path(_))
            && ws
                .resolve(file_idx, c)
                .into_iter()
                .any(|t| fn_returns_hash(ws, t))
    })
}

/// An iteration at token `i` is mitigated when the same statement routes
/// into an ordered container, or the function sorts afterwards before
/// anything is emitted.
fn mitigated(src: &str, toks: &[Tok], i: usize, b0: usize, b1: usize) -> bool {
    // Statement extent around `i`.
    let mut s = i;
    while s > b0 {
        let t = &toks[s - 1];
        if t.is_punct(src, ";") || t.is_punct(src, "{") || t.is_punct(src, "}") {
            break;
        }
        s -= 1;
    }
    let mut e = i;
    let mut depth = 0i64;
    while e < b1 {
        let t = &toks[e];
        if t.kind == TokKind::Punct {
            match t.text(src) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
        }
        e += 1;
    }
    for t in &toks[s..e.min(b1)] {
        if t.is_ident(src, "BTreeMap") || t.is_ident(src, "BTreeSet") {
            return true;
        }
    }
    // A later `.sort*()` call in the same function body.
    let mut j = e;
    while j + 1 < b1 {
        if toks[j].is_punct(src, ".")
            && toks[j + 1].kind == TokKind::Ident
            && toks[j + 1].text(src).starts_with("sort")
        {
            return true;
        }
        j += 1;
    }
    false
}

// ---------------------------------------------------------------------
// L009 — panic reachability from pipeline entry points
// ---------------------------------------------------------------------

fn l009_scan(ws: &Workspace, id: usize, out: &mut Vec<Violation>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file_idx];
    let (src, toks) = (&file.src, &file.toks);
    let (b0, b1) = f.body.expect("caller checked body");
    let windows = windows_bindings(src, toks, b0, b1);
    let path = ws.path_of(id);
    let rel = file.rel.to_string_lossy().replace('\\', "/");
    let mut push = |line: u32, what: String| {
        out.push(Violation {
            file: rel.clone(),
            line: line as usize,
            rule: "L009",
            message: format!("{what} in `{path}`, reachable from a pipeline entry point"),
        });
    };

    let mut i = b0;
    while i < b1 {
        let t = &toks[i];
        if t.is_punct(src, ".") {
            if let Some(m) = toks.get(i + 1) {
                let open = toks.get(i + 2).is_some_and(|o| o.is_punct(src, "("));
                if open && m.is_ident(src, "unwrap") {
                    push(t.line, "`unwrap()`".to_owned());
                } else if open && m.is_ident(src, "expect") {
                    let has_msg = toks.get(i + 3).is_some_and(|a| a.kind == TokKind::Str);
                    if !has_msg {
                        push(t.line, "message-less `expect()`".to_owned());
                    }
                }
            }
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text(src),
                "panic" | "todo" | "unimplemented" | "unreachable"
            )
            && toks.get(i + 1).is_some_and(|n| n.is_punct(src, "!"))
        {
            push(t.line, format!("`{}!`", t.text(src)));
        }
        // `expr[<literal>]` indexing: `[` preceded by an expression tail
        // (identifier, `)` or `]`), with a lone number literal inside.
        if t.is_punct(src, "[")
            && i > b0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(src, ")")
                || toks[i - 1].is_punct(src, "]"))
        {
            let lit = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Number)
                && toks.get(i + 2).is_some_and(|n| n.is_punct(src, "]"));
            let keyword_recv = toks[i - 1].kind == TokKind::Ident
                && matches!(
                    toks[i - 1].text(src),
                    "in" | "return" | "else" | "match" | "break"
                );
            // `w[j]` where `w` is bound by a `windows(k)` iteration and
            // `j < k` cannot panic — the window length is guaranteed.
            let windows_safe = toks[i - 1].kind == TokKind::Ident
                && windows
                    .get(toks[i - 1].text(src))
                    .zip(
                        toks.get(i + 1)
                            .and_then(|n| n.text(src).parse::<u64>().ok()),
                    )
                    .is_some_and(|(k, j)| j < *k);
            if lit && !keyword_recv && !windows_safe {
                push(t.line, "indexing with a literal".to_owned());
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// L010 — allocation in hot kernels
// ---------------------------------------------------------------------

const ALLOC_METHODS: [&str; 11] = [
    "push",
    "collect",
    "clone",
    "to_string",
    "to_owned",
    "to_vec",
    "extend",
    "insert",
    "resize",
    "reserve",
    "append",
];
const ALLOC_CTORS: [&str; 3] = ["Vec", "String", "Box"];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

fn l010_scan(ws: &Workspace, id: usize, out: &mut Vec<Violation>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file_idx];
    let (src, toks) = (&file.src, &file.toks);
    let (b0, b1) = f.body.expect("caller checked body");
    let path = ws.path_of(id);
    let rel = file.rel.to_string_lossy().replace('\\', "/");
    let mut push = |line: u32, what: &str| {
        out.push(Violation {
            file: rel.clone(),
            line: line as usize,
            rule: "L010",
            message: format!(
                "allocation `{what}` in `{path}`, which is inside a registered hot kernel"
            ),
        });
    };

    let mut i = b0;
    while i < b1 {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let w = t.text(src);
            if ALLOC_CTORS.contains(&w)
                && toks.get(i + 1).is_some_and(|n| n.is_punct(src, "::"))
                && toks.get(i + 2).is_some_and(|n| {
                    n.is_ident(src, "new")
                        || n.is_ident(src, "with_capacity")
                        || n.is_ident(src, "from")
                })
                && toks.get(i + 3).is_some_and(|n| n.is_punct(src, "("))
            {
                push(t.line, &format!("{w}::{}", toks[i + 2].text(src)));
            }
            if ALLOC_MACROS.contains(&w) && toks.get(i + 1).is_some_and(|n| n.is_punct(src, "!")) {
                push(t.line, &format!("{w}!"));
            }
        }
        if t.is_punct(src, ".")
            && toks
                .get(i + 1)
                .is_some_and(|m| m.kind == TokKind::Ident && ALLOC_METHODS.contains(&m.text(src)))
        {
            let j = i + 2;
            let called = toks.get(j).is_some_and(|n| n.is_punct(src, "("))
                || (toks.get(j).is_some_and(|n| n.is_punct(src, "::"))
                    && toks.get(j + 1).is_some_and(|n| n.is_punct(src, "<")));
            if called {
                push(t.line, &format!(".{}()", toks[i + 1].text(src)));
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// L011 — parallel-closure hygiene
// ---------------------------------------------------------------------

const PAR_FNS: [&str; 3] = ["parallel_map", "parallel_map_init", "parallel_map_spawn"];

fn l011_scan(ws: &Workspace, graph: &CallGraph, id: usize, out: &mut Vec<Violation>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file_idx];
    if is_sanctioned_crate(&file.krate) {
        return;
    }
    let (src, toks) = (&file.src, &file.toks);
    let (b0, b1) = f.body.expect("caller checked body");
    let path = ws.path_of(id);
    let rel = file.rel.to_string_lossy().replace('\\', "/");

    let mut i = b0;
    while i < b1 {
        let t = &toks[i];
        let is_par_call = t.kind == TokKind::Ident
            && PAR_FNS.contains(&t.text(src))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(src, "("));
        if !is_par_call {
            i += 1;
            continue;
        }
        let call_line = t.line;
        // Argument list extent.
        let args_end = balanced_end(src, toks, i + 1, b1);
        for (c0, c1) in closures_in(src, toks, i + 2, args_end) {
            check_closure(
                ws, graph, id, src, toks, c0, c1, call_line, &path, &rel, out,
            );
        }
        i = args_end;
    }
}

fn is_sanctioned_crate(krate: &str) -> bool {
    krate == "breval_par" || krate == "breval_obs"
}

/// One past the matching close delimiter for the open delimiter at `i`.
fn balanced_end(src: &str, toks: &[Tok], mut i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    while i < end {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text(src) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Token ranges of closure bodies (including the param list) inside an
/// argument list `[start, end)`.
fn closures_in(src: &str, toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = start;
    let mut depth = 0i64;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text(src) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        }
        // Closure opener: `|` at argument depth, directly after `(`, `,`
        // or `move`.
        let opener = t.is_punct(src, "|")
            && depth == 0
            && i > 0
            && (toks[i - 1].is_punct(src, "(")
                || toks[i - 1].is_punct(src, ",")
                || toks[i - 1].is_ident(src, "move"));
        if opener {
            // Find the closing `|` of the parameter list.
            let mut j = i + 1;
            let mut pdepth = 0i64;
            while j < end {
                let p = &toks[j];
                if p.kind == TokKind::Punct {
                    match p.text(src) {
                        "(" | "[" | "{" | "<" => pdepth += 1,
                        ")" | "]" | "}" | ">" => pdepth -= 1,
                        "|" if pdepth <= 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            let body_start = j + 1;
            let body_end = if toks.get(body_start).is_some_and(|b| b.is_punct(src, "{")) {
                balanced_end(src, toks, body_start, end)
            } else {
                // Expression body: runs to a `,` at depth 0 or the end of
                // the argument list.
                let mut k = body_start;
                let mut d = 0i64;
                while k < end {
                    let p = &toks[k];
                    if p.kind == TokKind::Punct {
                        match p.text(src) {
                            "(" | "[" | "{" => d += 1,
                            ")" | "]" | "}" => d -= 1,
                            "," if d <= 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                k
            };
            out.push((i, body_end));
            i = body_end;
            continue;
        }
        i += 1;
    }
    out
}

#[allow(clippy::too_many_arguments)] // internal plumbing for one call site
fn check_closure(
    ws: &Workspace,
    graph: &CallGraph,
    caller: usize,
    src: &str,
    toks: &[Tok],
    c0: usize,
    c1: usize,
    call_line: u32,
    path: &str,
    rel: &str,
    out: &mut Vec<Violation>,
) {
    let mut push = |line: u32, what: String| {
        out.push(Violation {
            file: rel.to_owned(),
            line: line as usize,
            rule: "L011",
            message: format!("parallel closure in `{path}` {what}"),
        });
    };
    // Direct offenses inside the closure tokens.
    for (line, what) in hygiene_offenses(src, toks, c0, c1) {
        push(line, what);
    }
    // Transitive: everything the closure calls, outside breval_par/obs.
    let seeds: Vec<usize> = extract_calls(src, toks, c0, c1)
        .iter()
        .flat_map(|c| ws.resolve_from(caller, c))
        .collect();
    if seeds.is_empty() {
        return;
    }
    let reach = graph.reachable(&seeds);
    for (target, hit) in reach.iter().enumerate() {
        if !hit {
            continue;
        }
        let tf = &ws.fns[target];
        let tfile = &ws.files[tf.file_idx];
        if tf.is_test || is_sanctioned_crate(&tfile.krate) {
            continue;
        }
        let Some((tb0, tb1)) = tf.body else { continue };
        for (_, what) in hygiene_offenses(&tfile.src, &tfile.toks, tb0, tb1) {
            push(
                call_line,
                format!("{what} transitively via `{}`", ws.path_of(target)),
            );
        }
    }
}

/// `(line, description)` of every hygiene offense in a token range.
fn hygiene_offenses(src: &str, toks: &[Tok], start: usize, end: usize) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct(src, ".") {
            if let Some(m) = toks.get(i + 1) {
                let called = toks.get(i + 2).is_some_and(|o| o.is_punct(src, "("));
                if called && m.kind == TokKind::Ident {
                    match m.text(src) {
                        "lock" | "read" if is_lock_recv(src, toks, i) => {
                            out.push((t.line, format!("takes a lock (`.{}()`)", m.text(src))));
                        }
                        "lock" => {
                            out.push((t.line, "takes a lock (`.lock()`)".to_owned()));
                        }
                        "borrow_mut" => {
                            out.push((
                                t.line,
                                "mutates captured state through `RefCell::borrow_mut`".to_owned(),
                            ));
                        }
                        "fetch_add" | "fetch_sub" | "fetch_or" | "fetch_and" | "store" => {
                            out.push((
                                t.line,
                                format!(
                                    "mutates captured state through an atomic (`.{}()`)",
                                    m.text(src)
                                ),
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
        if t.is_ident(src, "journal_span") && toks.get(i + 1).is_some_and(|n| n.is_punct(src, "("))
        {
            out.push((
                t.line,
                "opens a journal span (the pool worker already wraps each item)".to_owned(),
            ));
        }
        i += 1;
    }
    out
}

/// Heuristic: `.read()` only counts as a lock when the receiver chain
/// mentions a lock type; `.lock()` always counts.
fn is_lock_recv(src: &str, toks: &[Tok], dot: usize) -> bool {
    let lo = dot.saturating_sub(4);
    toks[lo..dot]
        .iter()
        .any(|t| t.is_ident(src, "RwLock") || t.is_ident(src, "Mutex"))
}

// ---------------------------------------------------------------------
// L012 — calls to deprecated functions
// ---------------------------------------------------------------------

/// Flags non-test call sites of functions registered as `deprecated`.
/// The deprecated functions themselves (and each other) are exempt: the
/// wrapper is allowed to exist, new callers of it are not.
fn l012_scan(ws: &Workspace, id: usize, deprecated: &[usize], out: &mut Vec<Violation>) {
    if deprecated.is_empty() || deprecated.binary_search(&id).is_ok() {
        return;
    }
    let f = &ws.fns[id];
    let Some((b0, b1)) = f.body else {
        return;
    };
    let file = &ws.files[f.file_idx];
    let rel = file.rel.to_string_lossy().replace('\\', "/");
    let caller = ws.path_of(id);
    for (call, line) in extract_calls_at(&file.src, &file.toks, b0, b1) {
        for target in ws.resolve_from(id, &call) {
            if deprecated.binary_search(&target).is_ok() {
                out.push(Violation {
                    file: rel.clone(),
                    line: line as usize,
                    rule: "L012",
                    message: format!(
                        "call to deprecated `{}` in `{caller}`; use the scenario \
                         snapshot accessors instead",
                        ws.path_of(target)
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------

/// Drops violations suppressed by `breval-lint: allow(...)` pragmas in
/// their file. Registry-file findings are never waivable.
fn apply_waivers(ws: &Workspace, violations: Vec<Violation>) -> Vec<Violation> {
    let mut scanned: BTreeMap<String, lexer::ScannedFile> = BTreeMap::new();
    for file in &ws.files {
        let rel = file.rel.to_string_lossy().replace('\\', "/");
        scanned.entry(rel).or_insert_with(|| lexer::scan(&file.src));
    }
    violations
        .into_iter()
        .filter(|v| {
            let Some(sf) = scanned.get(&v.file) else {
                return true;
            };
            !sf.waived(v.line.saturating_sub(1), v.rule)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(srcs: &[(&str, &str)], reg_text: &str) -> Vec<Violation> {
        let ws = Workspace::from_sources("testcrate", srcs);
        deepcheck(&ws, &Registry::parse(reg_text))
    }

    #[test]
    fn registry_parses_roles_and_comments() {
        let reg = Registry::parse(
            "# header\nentry a::b # trailing\nkernel c::d\nsink e::f\n\nbogus g::h\n",
        );
        assert_eq!(reg.entries, vec![("a::b".to_owned(), 2)]);
        assert_eq!(reg.kernels, vec![("c::d".to_owned(), 3)]);
        assert_eq!(reg.sinks, vec![("e::f".to_owned(), 4)]);
    }

    #[test]
    fn builtin_registry_is_well_formed() {
        let reg = Registry::builtin();
        assert!(!reg.entries.is_empty());
        assert!(!reg.kernels.is_empty());
        assert!(!reg.sinks.is_empty());
    }

    #[test]
    fn stale_registry_entries_are_violations() {
        let v = check(
            &[("src/lib.rs", "pub fn real() {}\n")],
            "entry testcrate::missing\n",
        );
        assert!(v
            .iter()
            .any(|x| x.rule == "L009" && x.message.contains("stale registry")));
    }

    #[test]
    fn l008_fires_on_hash_iteration_feeding_sink() {
        let src = "use std::collections::HashMap;\n\
                   pub fn emit(m: &HashMap<u32, u32>) -> String {\n\
                       let mut s = String::new();\n\
                       for (k, v) in m.iter() { s.push_str(&format!(\"{k}{v}\")); }\n\
                       s\n\
                   }\n";
        let v = check(&[("src/lib.rs", src)], "sink testcrate::emit\n");
        assert!(v.iter().any(|x| x.rule == "L008"), "{v:?}");
    }

    #[test]
    fn l008_quiet_when_sorted_or_btree() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
                   pub fn emit(m: &HashMap<u32, u32>) -> String {\n\
                       let ordered: BTreeMap<_, _> = m.iter().collect();\n\
                       let mut keys: Vec<_> = Vec::new();\n\
                       keys.sort_unstable();\n\
                       format!(\"{}\", ordered.len() + keys.len())\n\
                   }\n";
        let v = check(&[("src/lib.rs", src)], "sink testcrate::emit\n");
        assert!(v.iter().all(|x| x.rule != "L008"), "{v:?}");
    }

    #[test]
    fn l008_quiet_when_no_sink_reachable() {
        let src = "use std::collections::HashMap;\n\
                   pub fn internal(m: &HashMap<u32, u32>) -> u32 {\n\
                       let mut sum = 0;\n\
                       for (_, v) in m.iter() { sum += v; }\n\
                       sum\n\
                   }\n";
        let v = check(&[("src/lib.rs", src)], "");
        assert!(v.iter().all(|x| x.rule != "L008"), "{v:?}");
    }

    #[test]
    fn l009_fires_on_panics_reachable_from_entry() {
        let src = "pub fn run() { step(); }\n\
                   fn step() { let v = vec![1]; let _ = v[0]; helper().unwrap(); }\n\
                   fn helper() -> Option<u32> { None }\n\
                   pub fn cold() { panic!(\"never\"); }\n";
        let v = check(&[("src/lib.rs", src)], "entry testcrate::run\n");
        assert!(
            v.iter()
                .any(|x| x.rule == "L009" && x.message.contains("unwrap")),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| x.rule == "L009" && x.message.contains("literal")),
            "{v:?}"
        );
        // `cold` is not reachable from the entry, so its panic is fine.
        assert!(v.iter().all(|x| !x.message.contains("panic!")), "{v:?}");
    }

    #[test]
    fn l009_allows_in_bounds_windows_indexing() {
        // `w[0]`/`w[1]` on a `windows(2)` binding cannot panic — both the
        // for-loop and the closure form are recognized. `w[2]` is out of
        // bounds for the same window and must still fire.
        let src = "pub fn run(xs: &[u32]) -> u32 {\n\
                       let mut acc = 0;\n\
                       for w in xs.windows(2) { acc += w[0] + w[1]; }\n\
                       acc + xs.windows(3).map(|c| c[2]).sum::<u32>()\n\
                   }\n\
                   pub fn bad(xs: &[u32]) -> u32 {\n\
                       xs.windows(2).map(|w| w[2]).sum()\n\
                   }\n";
        let v = check(
            &[("src/lib.rs", src)],
            "entry testcrate::run\nentry testcrate::bad\n",
        );
        let lits: Vec<_> = v.iter().filter(|x| x.message.contains("literal")).collect();
        assert_eq!(lits.len(), 1, "{v:?}");
        assert_eq!(lits[0].line, 7, "{v:?}");
    }

    #[test]
    fn l009_allows_expect_with_message() {
        let src = "pub fn run() { helper().expect(\"invariant: helper always succeeds\"); }\n\
                   fn helper() -> Option<u32> { Some(1) }\n";
        let v = check(&[("src/lib.rs", src)], "entry testcrate::run\n");
        assert!(v.iter().all(|x| x.rule != "L009"), "{v:?}");
    }

    #[test]
    fn l010_fires_on_alloc_in_kernel_and_callee() {
        let src = "pub fn kernel(buf: &mut Vec<u32>) { buf.push(1); helper(); }\n\
                   fn helper() { let _s = format!(\"x\"); }\n\
                   pub fn outside() { let _v: Vec<u32> = Vec::new(); }\n";
        let v = check(&[("src/lib.rs", src)], "kernel testcrate::kernel\n");
        assert!(
            v.iter()
                .any(|x| x.rule == "L010" && x.message.contains("push")),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| x.rule == "L010" && x.message.contains("format!")),
            "{v:?}"
        );
        assert!(v.iter().all(|x| !x.message.contains("outside")), "{v:?}");
    }

    #[test]
    fn l011_fires_on_lock_and_journal_span_in_closure() {
        let src = "use std::sync::Mutex;\n\
                   pub fn journal_span(_n: &str) {}\n\
                   pub fn fanout(m: &Mutex<u32>) {\n\
                       parallel_map(4, |i| { let _g = m.lock(); journal_span(\"x\"); i });\n\
                   }\n\
                   pub fn parallel_map<F: Fn(usize) -> usize>(n: usize, f: F) -> Vec<usize> {\n\
                       (0..n).map(f).collect()\n\
                   }\n";
        let v = check(&[("src/lib.rs", src)], "");
        assert!(
            v.iter()
                .any(|x| x.rule == "L011" && x.message.contains("lock")),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| x.rule == "L011" && x.message.contains("journal span")),
            "{v:?}"
        );
    }

    #[test]
    fn l011_transitive_through_called_helper() {
        let src = "use std::sync::Mutex;\n\
                   static M: Mutex<u32> = Mutex::new(0);\n\
                   fn locky() { let _g = M.lock(); }\n\
                   pub fn fanout() { parallel_map(4, |i| { locky(); i }); }\n\
                   pub fn parallel_map<F: Fn(usize) -> usize>(n: usize, f: F) -> Vec<usize> {\n\
                       (0..n).map(f).collect()\n\
                   }\n";
        let v = check(&[("src/lib.rs", src)], "");
        assert!(
            v.iter()
                .any(|x| x.rule == "L011" && x.message.contains("transitively via")),
            "{v:?}"
        );
    }

    #[test]
    fn l011_quiet_on_clean_closure() {
        let src = "pub fn fanout() { parallel_map(4, |i| i * 2); }\n\
                   pub fn parallel_map<F: Fn(usize) -> usize>(n: usize, f: F) -> Vec<usize> {\n\
                       (0..n).map(f).collect()\n\
                   }\n";
        let v = check(&[("src/lib.rs", src)], "");
        assert!(v.iter().all(|x| x.rule != "L011"), "{v:?}");
    }

    #[test]
    fn waiver_pragma_suppresses_flow_findings() {
        let src = "pub fn run() {\n\
                   // breval-lint: allow(L009) -- index is bounds-checked two lines up\n\
                       let v = vec![1]; let _ = v[0];\n\
                   }\n";
        let v = check(&[("src/lib.rs", src)], "entry testcrate::run\n");
        assert!(v.iter().all(|x| x.rule != "L009"), "{v:?}");
    }
}
