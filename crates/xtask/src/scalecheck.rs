//! `scalecheck` — structural floor gate over `BENCH_scale.json`.
//!
//! Validates the *10k tier only*: it is the one tier present in both the
//! CI smoke run (`scalebench --smoke`) and the full three-tier run, so the
//! gate behaves identically in both configurations. Unlike `obscheck`,
//! which compares against a committed baseline with tolerance bands, this
//! gate checks absolute structural floors that hold on any machine:
//!
//! * the 10k tier exists, is `measured`, and hit its target AS count;
//! * every pipeline stage recorded a positive wall (instrumentation was
//!   not lost);
//! * steady-state propagation stays under a small per-origin allocation
//!   ceiling — the bounded-memory property the scale PR exists to keep;
//! * the hybrid PPDC layout never exceeds the flat bitset footprint it
//!   replaced, and actually produced rows.
//!
//! Wall *times* are deliberately not gated here — `obscheck` owns the
//! perf-regression tripwire; this gate owns the memory-boundedness and
//! compression invariants, which are machine-independent.

use crate::json::Json;

/// The five stages every tier must record, in pipeline order.
const STAGES: [&str; 5] = ["generate", "simgraph", "propagate", "paths", "ppdc"];

/// Absolute floors for [`check`].
#[derive(Debug, Clone, Copy)]
pub struct Floors {
    /// Steady-state propagation must stay at or under this many
    /// allocations per origin (buffer reuse means the true value is a
    /// handful of stragglers, not thousands).
    pub max_steady_allocs_per_origin: f64,
    /// Minimum origins the propagation proof must have sampled.
    pub min_origins: f64,
}

impl Default for Floors {
    fn default() -> Self {
        Floors {
            max_steady_allocs_per_origin: 64.0,
            min_origins: 8.0,
        }
    }
}

/// Outcome of one `BENCH_scale.json` validation.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Hard failures: the CLI exits 1 when any are present.
    pub violations: Vec<String>,
    /// Informational findings (extra tiers, oversubscription note).
    pub notes: Vec<String>,
}

impl CheckReport {
    /// True when no violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn num(j: Option<&Json>) -> f64 {
    j.and_then(Json::as_f64).unwrap_or(0.0)
}

/// Validates `doc` (a parsed `BENCH_scale.json`) against `floors`.
#[must_use]
pub fn check(doc: &Json, floors: &Floors) -> CheckReport {
    let mut report = CheckReport::default();
    let fail = &mut report.violations;

    let tiers = doc.get("tiers").and_then(Json::as_arr).unwrap_or(&[]);
    let Some(tier) = tiers
        .iter()
        .find(|t| t.get("tier").and_then(Json::as_str) == Some("10k"))
    else {
        fail.push("no 10k tier in BENCH_scale.json".to_owned());
        return report;
    };

    if tier.get("measured").and_then(Json::as_bool) != Some(true) {
        fail.push("10k tier is not flagged as measured".to_owned());
    }
    let target = num(tier.get("target_ases"));
    let ases = num(tier.get("as_count"));
    if ases < target || target <= 0.0 {
        fail.push(format!(
            "10k tier generated {ases} ASes of {target} targeted"
        ));
    }
    if num(tier.get("link_count")) <= 0.0 {
        fail.push("10k tier has no links".to_owned());
    }

    let stages = tier.get("stages").and_then(Json::as_arr).unwrap_or(&[]);
    for want in STAGES {
        let Some(stage) = stages
            .iter()
            .find(|s| s.get("stage").and_then(Json::as_str) == Some(want))
        else {
            fail.push(format!("10k tier is missing stage {want:?}"));
            continue;
        };
        if num(stage.get("wall_ms")) <= 0.0 {
            fail.push(format!("10k tier stage {want:?} recorded no wall time"));
        }
    }

    let prop = tier.get("propagation");
    let origins = num(prop.and_then(|p| p.get("origins_sampled")));
    if origins < floors.min_origins {
        fail.push(format!(
            "10k tier sampled {origins} origins (< {} floor)",
            floors.min_origins
        ));
    }
    let steady = num(prop.and_then(|p| p.get("steady_allocations_per_origin")));
    if steady > floors.max_steady_allocs_per_origin {
        fail.push(format!(
            "10k tier steady-state propagation allocates {steady:.1}/origin \
             (> {} ceiling) — buffer reuse is broken",
            floors.max_steady_allocs_per_origin
        ));
    }
    if num(prop.and_then(|p| p.get("reached_total"))) <= 0.0 {
        fail.push("10k tier propagation reached no nodes".to_owned());
    }

    let ppdc = tier.get("ppdc");
    let hybrid = num(ppdc.and_then(|p| p.get("hybrid_bytes")));
    let flat = num(ppdc.and_then(|p| p.get("flat_bytes")));
    if hybrid > flat {
        fail.push(format!(
            "10k tier hybrid PPDC footprint {hybrid} B exceeds the flat layout's {flat} B"
        ));
    }
    let rows =
        num(ppdc.and_then(|p| p.get("sparse_rows"))) + num(ppdc.and_then(|p| p.get("dense_rows")));
    if rows <= 0.0 {
        fail.push("10k tier produced no PPDC rows".to_owned());
    }

    if doc.get("exceeds_hardware").and_then(Json::as_bool) == Some(true) {
        report
            .notes
            .push("thread cap exceeds hardware threads — walls are oversubscribed".to_owned());
    }
    if tiers.len() > 1 {
        let extra: Vec<&str> = tiers
            .iter()
            .filter_map(|t| t.get("tier").and_then(Json::as_str))
            .filter(|t| *t != "10k")
            .collect();
        report
            .notes
            .push(format!("additional tiers present (not gated): {extra:?}"));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    /// A minimal well-formed document, as `scalebench --smoke` writes it.
    fn good_doc() -> String {
        let stages: String = STAGES
            .iter()
            .map(|s| {
                format!(
                    r#"{{"stage":"{s}","wall_ms":1.5,"allocations":10,"allocated_bytes":100}},"#
                )
            })
            .collect::<String>()
            .trim_end_matches(',')
            .to_owned();
        format!(
            r#"{{"name":"scalebench","seed":42,"threads":1,"hardware_threads":1,
              "exceeds_hardware":false,"smoke":true,"tiers":[{{
                "tier":"10k","target_ases":10000,"as_count":10000,"link_count":79817,
                "measured":true,"stages":[{stages}],
                "propagation":{{"origins_sampled":64,"first_origin_allocations":58,
                  "steady_allocations_per_origin":2.4,"reached_total":634217}},
                "ppdc":{{"sparse_rows":331,"dense_rows":19,"hybrid_bytes":7956,
                  "flat_bytes":33600,"compression_ratio":4.2}},
                "peak_rss_kb":16556}}]}}"#
        )
    }

    #[test]
    fn well_formed_smoke_doc_is_clean() {
        let doc = parse(&good_doc()).unwrap();
        let report = check(&doc, &Floors::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.notes.is_empty(), "notes: {:?}", report.notes);
    }

    #[test]
    fn missing_tier_and_broken_floors_are_violations() {
        let empty = parse(r#"{"tiers":[]}"#).unwrap();
        let report = check(&empty, &Floors::default());
        assert!(!report.is_clean());
        assert!(report.violations[0].contains("no 10k tier"));

        let leaky = good_doc().replace(
            r#""steady_allocations_per_origin":2.4"#,
            r#""steady_allocations_per_origin":5000.0"#,
        );
        let report = check(&parse(&leaky).unwrap(), &Floors::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("buffer reuse is broken")));

        let bloated = good_doc().replace(r#""hybrid_bytes":7956"#, r#""hybrid_bytes":99999"#);
        let report = check(&parse(&bloated).unwrap(), &Floors::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("exceeds the flat")));

        let stale = good_doc().replace(r#""measured":true"#, r#""measured":false"#);
        let report = check(&parse(&stale).unwrap(), &Floors::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("not flagged as measured")));

        let lost = good_doc().replace(
            r#"{"stage":"ppdc","wall_ms":1.5"#,
            r#"{"stage":"ppdc","wall_ms":0.0"#,
        );
        let report = check(&parse(&lost).unwrap(), &Floors::default());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("recorded no wall time")));
    }

    #[test]
    fn extra_tiers_and_oversubscription_are_notes_only() {
        let full = good_doc()
            .replace(
                r#""peak_rss_kb":16556}]"#,
                r#""peak_rss_kb":16556},
               {"tier":"100k","target_ases":100000,"as_count":100000,"link_count":1,
                "measured":true,"stages":[],
                "propagation":{"origins_sampled":32,"first_origin_allocations":1,
                  "steady_allocations_per_origin":1.0,"reached_total":1},
                "ppdc":{"sparse_rows":1,"dense_rows":0,"hybrid_bytes":1,
                  "flat_bytes":2,"compression_ratio":2.0},
                "peak_rss_kb":1}]"#,
            )
            .replace(r#""exceeds_hardware":false"#, r#""exceeds_hardware":true"#);
        let report = check(&parse(&full).unwrap(), &Floors::default());
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.notes.len(), 2);
        assert!(report.notes.iter().any(|n| n.contains("oversubscribed")));
        assert!(report.notes.iter().any(|n| n.contains("100k")));
    }
}
