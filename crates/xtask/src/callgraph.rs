//! Per-crate and cross-crate call graph with reachability queries.
//!
//! Edges come from scanning each function's body token range for call
//! shapes — `f(..)`, `a::b::f(..)`, `Type::assoc(..)`, `.method(..)` (with
//! or without turbofish) — and resolving them through
//! [`crate::resolve::Workspace::resolve`]. Because resolution
//! over-approximates ambiguity, reachability is a superset of the true
//! dynamic call relation: rules built on it can flag conservatively but
//! never miss a path the resolver understands.
//!
//! Two query directions serve the flow rules: [`CallGraph::reachable`]
//! (forward, from pipeline entry points — L009/L010) and
//! [`CallGraph::coreachable`] (reverse, "can this function reach a
//! serialization sink?" — L008).

use crate::resolve::{CallRef, Workspace};
use crate::tokens::{Tok, TokKind};

/// Keywords that look like `ident (`-call heads but are control flow.
const NON_CALL_KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "in", "match", "return", "loop", "fn", "let", "as", "move",
    "unsafe", "await", "dyn", "impl", "ref", "mut", "pub", "where", "break", "continue",
];

/// The workspace call graph over [`Workspace::fns`] indices.
pub struct CallGraph {
    /// Forward adjacency: `edges[f]` lists callees of `f` (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    /// Reverse adjacency: `redges[f]` lists callers of `f`.
    pub redges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph by extracting and resolving every call reference in
    /// every function body.
    #[must_use]
    pub fn build(ws: &Workspace) -> CallGraph {
        let n = ws.fns.len();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, f) in ws.fns.iter().enumerate() {
            let Some((b0, b1)) = f.body else { continue };
            let file = &ws.files[f.file_idx];
            let calls = extract_calls(&file.src, &file.toks, b0, b1);
            let mut targets: Vec<usize> =
                calls.iter().flat_map(|c| ws.resolve_from(id, c)).collect();
            targets.sort_unstable();
            targets.dedup();
            edges[id] = targets;
        }
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (from, outs) in edges.iter().enumerate() {
            for &to in outs {
                redges[to].push(from);
            }
        }
        CallGraph { edges, redges }
    }

    /// Forward reachability: every function reachable from `seeds`
    /// (inclusive) following call edges.
    #[must_use]
    pub fn reachable(&self, seeds: &[usize]) -> Vec<bool> {
        bfs(&self.edges, seeds)
    }

    /// Reverse reachability: every function that can *reach* one of
    /// `seeds` (inclusive) — i.e. BFS over the reversed edges.
    #[must_use]
    pub fn coreachable(&self, seeds: &[usize]) -> Vec<bool> {
        bfs(&self.redges, seeds)
    }
}

fn bfs(adj: &[Vec<usize>], seeds: &[usize]) -> Vec<bool> {
    let mut seen = vec![false; adj.len()];
    let mut queue: Vec<usize> = Vec::new();
    for &s in seeds {
        if s < seen.len() && !seen[s] {
            seen[s] = true;
            queue.push(s);
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        for &next in &adj[cur] {
            if !seen[next] {
                seen[next] = true;
                queue.push(next);
            }
        }
    }
    seen
}

/// Skips a turbofish / generic-argument run starting at the `<` at `i`;
/// returns the index one past the matching `>`. Sub-delimiters are matched
/// balanced.
fn skip_angle(src: &str, toks: &[Tok], mut i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text(src) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                "(" | "[" | "{" => {
                    i = skip_delim(src, toks, i, end);
                    continue;
                }
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn skip_delim(src: &str, toks: &[Tok], mut i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    while i < end {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text(src) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Extracts every call reference in the token range `[start, end)`.
/// Returned in source order; duplicates are kept (callers dedup after
/// resolution).
#[must_use]
pub fn extract_calls(src: &str, toks: &[Tok], start: usize, end: usize) -> Vec<CallRef> {
    extract_calls_at(src, toks, start, end)
        .into_iter()
        .map(|(call, _)| call)
        .collect()
}

/// Like [`extract_calls`], but each reference carries the 1-based source
/// line of its call head — used by rules that anchor a violation to the
/// exact call site (L012) rather than the caller's declaration.
#[must_use]
pub fn extract_calls_at(src: &str, toks: &[Tok], start: usize, end: usize) -> Vec<(CallRef, u32)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // `.method(` and `.method::<T>(`.
        if t.is_punct(src, ".") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let name = toks[i + 1].text(src);
            let line = toks[i + 1].line;
            let mut j = i + 2;
            if j + 1 < end && toks[j].is_punct(src, "::") && toks[j + 1].is_punct(src, "<") {
                j = skip_angle(src, toks, j + 1, end);
            }
            if j < end && toks[j].is_punct(src, "(") {
                let recv_is_self = i
                    .checked_sub(1)
                    .and_then(|p| toks.get(p))
                    .is_some_and(|p| p.is_ident(src, "self"));
                if recv_is_self {
                    out.push((CallRef::SelfMethod(name.to_owned()), line));
                } else {
                    out.push((CallRef::Method(name.to_owned()), line));
                }
            }
            i += 2;
            continue;
        }
        // Path heads: an identifier not preceded by `.` or `::`.
        if t.kind == TokKind::Ident {
            let prev_connects = i
                .checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_some_and(|p| p.is_punct(src, ".") || p.is_punct(src, "::"));
            let head = t.text(src);
            if !prev_connects && !NON_CALL_KEYWORDS.contains(&head) {
                let line = t.line;
                let mut segs = vec![head.to_owned()];
                let mut j = i + 1;
                while j + 1 < end
                    && toks[j].is_punct(src, "::")
                    && toks[j + 1].kind == TokKind::Ident
                {
                    segs.push(toks[j + 1].text(src).to_owned());
                    j += 2;
                }
                // Optional turbofish before the argument list.
                if j + 1 < end && toks[j].is_punct(src, "::") && toks[j + 1].is_punct(src, "<") {
                    j = skip_angle(src, toks, j + 1, end);
                }
                if j < end && toks[j].is_punct(src, "(") {
                    out.push((CallRef::Path(segs), line));
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Workspace;

    fn graph_for(src: &str) -> (Workspace, CallGraph) {
        let ws = Workspace::from_sources("testcrate", &[("src/lib.rs", src)]);
        let g = CallGraph::build(&ws);
        (ws, g)
    }

    fn id_of(ws: &Workspace, suffix: &str) -> usize {
        let ids = ws.match_suffix(suffix);
        assert_eq!(ids.len(), 1, "{suffix} must be unique: {ids:?}");
        ids[0]
    }

    #[test]
    fn direct_call_reachability() {
        let (ws, g) = graph_for("fn a() { b(); }\nfn b() {}\nfn c() {}\n");
        let reach = g.reachable(&[id_of(&ws, "a")]);
        assert!(reach[id_of(&ws, "b")]);
        assert!(!reach[id_of(&ws, "c")]);
    }

    #[test]
    fn indirect_call_chain() {
        let (ws, g) = graph_for(
            "fn entry() { middle(); }\nfn middle() { deep(); }\nfn deep() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        );
        let reach = g.reachable(&[id_of(&ws, "entry")]);
        for f in ["middle", "deep", "leaf"] {
            assert!(reach[id_of(&ws, f)], "{f} must be reachable");
        }
        assert!(!reach[id_of(&ws, "island")]);
    }

    #[test]
    fn method_and_assoc_calls_resolve_through_impls() {
        let src = "pub struct W;\nimpl W {\n  pub fn new() -> W { W }\n  pub fn go(&self) { helper(); }\n}\nfn helper() {}\nfn caller() { let w = W::new(); w.go(); }\n";
        let (ws, g) = graph_for(src);
        let reach = g.reachable(&[id_of(&ws, "caller")]);
        assert!(reach[id_of(&ws, "W::new")], "assoc fn edge");
        assert!(reach[id_of(&ws, "W::go")], "method edge");
        assert!(reach[id_of(&ws, "helper")], "transitive through method");
    }

    #[test]
    fn trait_method_calls_over_approximate_to_all_impls() {
        let src = "trait T { fn act(&self); }\nstruct A; struct B;\n\
                   impl T for A { fn act(&self) { a_only(); } }\n\
                   impl T for B { fn act(&self) { b_only(); } }\n\
                   fn a_only() {}\nfn b_only() {}\n\
                   fn driver(x: &dyn T) { x.act(); }\n";
        let (ws, g) = graph_for(src);
        let reach = g.reachable(&[id_of(&ws, "driver")]);
        assert!(reach[id_of(&ws, "a_only")], "impl A reachable");
        assert!(reach[id_of(&ws, "b_only")], "impl B reachable");
    }

    #[test]
    fn ambiguous_names_resolve_to_every_candidate() {
        let src = "mod m1 { pub fn shared() { super::one(); } }\n\
                   mod m2 { pub fn shared() { super::two(); } }\n\
                   fn one() {}\nfn two() {}\n\
                   fn caller() { shared(); }\n";
        let (ws, g) = graph_for(src);
        let reach = g.reachable(&[id_of(&ws, "caller")]);
        // Unqualified ambiguous call: both candidates (and their callees)
        // are conservatively reachable.
        assert!(reach[id_of(&ws, "one")]);
        assert!(reach[id_of(&ws, "two")]);
    }

    #[test]
    fn qualified_module_calls_stay_precise() {
        let src = "mod m1 { pub fn shared() { super::one(); } }\n\
                   mod m2 { pub fn shared() { super::two(); } }\n\
                   fn one() {}\nfn two() {}\n\
                   fn caller() { m1::shared(); }\n";
        let (ws, g) = graph_for(src);
        let reach = g.reachable(&[id_of(&ws, "caller")]);
        assert!(reach[id_of(&ws, "one")], "m1::shared resolves into m1");
        assert!(!reach[id_of(&ws, "two")], "m2 stays unreachable");
    }

    #[test]
    fn coreachability_finds_sink_feeders() {
        let (ws, g) = graph_for(
            "fn writer() {}\nfn builds() { writer(); }\nfn feeds() { builds(); }\nfn unrelated() {}\n",
        );
        let can_reach = g.coreachable(&[id_of(&ws, "writer")]);
        assert!(can_reach[id_of(&ws, "feeds")]);
        assert!(can_reach[id_of(&ws, "builds")]);
        assert!(!can_reach[id_of(&ws, "unrelated")]);
    }

    #[test]
    fn std_type_calls_produce_no_edges() {
        let (ws, g) = graph_for("fn f() { let v: Vec<u8> = Vec::new(); let _ = v.len(); }\n");
        assert!(
            g.edges[id_of(&ws, "f")].is_empty(),
            "Vec::new must not edge"
        );
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let src = "fn generic<T>() {}\nfn caller() { generic::<u32>(); helper::<Vec<u8>>(); }\nfn helper<T>() {}\n";
        let (ws, g) = graph_for(src);
        let reach = g.reachable(&[id_of(&ws, "caller")]);
        assert!(reach[id_of(&ws, "generic")]);
        assert!(reach[id_of(&ws, "helper")]);
    }
}
