//! Minimal recursive-descent JSON reader.
//!
//! The workspace's vendored `serde_json` is serialize-only (the pipeline
//! writes artifacts but never reads them back), so xtask brings its own tiny
//! parser for cross-checking persisted `results/*.json` manifests. It
//! accepts standard JSON; numbers are kept as `f64`, which is sufficient for
//! reading label names and counts out of observability manifests.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => parse_array(b, pos),
        Some(b'{') => parse_object(b, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!(
            "unexpected byte `{}` at {pos}",
            *c as char,
            pos = *pos
        )),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are rare in manifests; map lone
                        // surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-borrow the original UTF-8: step back and take one char.
                let rest = std::str::from_utf8(&b[*pos - 1..]).map_err(|_| "invalid UTF-8")?;
                let ch = rest.chars().next().ok_or("unexpected end in string")?;
                out.push(ch);
                *pos += ch.len_utf8() - 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid UTF-8 in number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}`"))
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, ":")?;
        let value = parse_value(b, pos)?;
        out.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").expect("valid"), Json::Null);
        assert_eq!(parse(" true ").expect("valid"), Json::Bool(true));
        assert_eq!(parse("-1.5e2").expect("valid"), Json::Num(-150.0));
        assert_eq!(
            parse(r#""a\nbA""#).expect("valid"),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"stages":[{"name":"scenario_run/generate","counters":{"topology_ases":100}}],"seed":42}"#;
        let v = parse(doc).expect("valid");
        let stages = v.get("stages").and_then(Json::as_arr).expect("array");
        assert_eq!(
            stages[0].get("name").and_then(Json::as_str),
            Some("scenario_run/generate")
        );
        assert_eq!(v.get("seed"), Some(&Json::Num(42.0)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(
            parse(r#""Tier-1 – héllo""#).expect("valid"),
            Json::Str("Tier-1 – héllo".into())
        );
    }
}
