//! The project lint rules (L001–L007) and the malformed-pragma check (L000).
//!
//! | rule | invariant |
//! |------|-----------|
//! | L000 | every `breval-lint:` pragma parses and carries a `-- <reason>` |
//! | L001 | no `.unwrap()` / message-less `.expect()` in non-test library code |
//! | L002 | every crate root carries `#![forbid(unsafe_code)]` |
//! | L003 | every obs span/counter label literal is in `crates/obs/labels.txt` |
//! | L004 | no `std::time` (`Instant`/`SystemTime`) outside `crates/obs` |
//! | L005 | no `println!`/`eprintln!` in library code (`report.rs` exempt) |
//! | L006 | crate dependencies resolve through `[workspace.dependencies]` |
//! | L007 | every workflow `uses:` pins an exact version (tag or commit SHA) |
//!
//! All source rules honour the waiver pragma
//! `// breval-lint: allow(L00X) -- <reason>` on the offending line or the
//! line directly above it; the reason is mandatory (L000).

use crate::lexer::ScannedFile;
use breval_obs::LabelRegistry;
use std::path::Path;

/// What kind of compilation target a file belongs to — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a `[lib]` target.
    Lib,
    /// A binary root (`src/main.rs`, `src/bin/*.rs`).
    Bin,
    /// An example under `examples/`.
    Example,
    /// Integration tests, benches, or fixtures.
    Test,
}

impl FileKind {
    /// Classifies a repo-relative path.
    #[must_use]
    pub fn classify(path: &Path) -> FileKind {
        let p = path.to_string_lossy().replace('\\', "/");
        if p.contains("/tests/") || p.starts_with("tests/") || p.contains("/benches/") {
            FileKind::Test
        } else if p.contains("/examples/") || p.starts_with("examples/") {
            FileKind::Example
        } else if p.ends_with("src/main.rs") || p.contains("/src/bin/") {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id, e.g. `L001`.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file context the rules need beyond the scanned source.
pub struct FileContext<'a> {
    /// Repo-relative path.
    pub path: &'a Path,
    /// Target classification.
    pub kind: FileKind,
    /// `true` for files in `crates/obs` (exempt from L003/L004 — it defines
    /// the instrumentation and legitimately owns the clock).
    pub is_obs_crate: bool,
    /// The parsed obs label registry.
    pub registry: &'a LabelRegistry,
}

fn push(
    violations: &mut Vec<Violation>,
    ctx: &FileContext,
    line: usize,
    rule: &'static str,
    message: String,
) {
    violations.push(Violation {
        file: ctx.path.to_string_lossy().into_owned(),
        line: line + 1,
        rule,
        message,
    });
}

/// Runs every source-level rule over one scanned file.
#[must_use]
pub fn check_source(ctx: &FileContext, scanned: &ScannedFile) -> Vec<Violation> {
    let mut out = Vec::new();
    check_pragmas(ctx, scanned, &mut out);
    check_l001(ctx, scanned, &mut out);
    check_l003(ctx, scanned, &mut out);
    check_l004(ctx, scanned, &mut out);
    check_l005(ctx, scanned, &mut out);
    out
}

/// L000 — malformed pragmas are reported wherever they occur (a waiver that
/// silently fails to parse would otherwise *hide* violations).
fn check_pragmas(ctx: &FileContext, scanned: &ScannedFile, out: &mut Vec<Violation>) {
    for (i, info) in scanned.lines.iter().enumerate() {
        if let Some(err) = &info.malformed_pragma {
            push(
                out,
                ctx,
                i,
                "L000",
                format!("malformed waiver pragma: {err}"),
            );
        }
    }
}

/// Finds occurrences of `needle` in `code` at token boundaries (the char
/// before the match must not be part of an identifier).
fn token_occurrences(code: &str, needle: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let boundary = at == 0 || {
            let prev = bytes[at - 1] as char;
            !(prev.is_alphanumeric() || prev == '_')
        };
        if boundary {
            found.push(at);
        }
        from = at + needle.len();
    }
    found
}

/// L001 — no `.unwrap()`, and `.expect(…)` must carry a non-empty string
/// literal naming the violated invariant. Applies to non-test library and
/// binary code.
fn check_l001(ctx: &FileContext, scanned: &ScannedFile, out: &mut Vec<Violation>) {
    if matches!(ctx.kind, FileKind::Test | FileKind::Example) {
        return;
    }
    for (i, info) in scanned.lines.iter().enumerate() {
        if info.in_test || scanned.waived(i, "L001") {
            continue;
        }
        if info.code.contains(".unwrap()") {
            push(
                out,
                ctx,
                i,
                "L001",
                "`.unwrap()` in non-test code — return a Result or use \
                 `.expect(\"<invariant>\")` naming the invariant"
                    .to_owned(),
            );
        }
        for at in info.code.match_indices(".expect(").map(|(p, _)| p) {
            let arg = scanned.string_arg_at(i, at + ".expect(".len());
            let ok = arg.is_some_and(|s| !s.trim().is_empty());
            if !ok {
                push(
                    out,
                    ctx,
                    i,
                    "L001",
                    "`.expect()` without a string-literal invariant message".to_owned(),
                );
            }
        }
    }
}

/// The obs entry points whose first argument is a label; call-site literals
/// are checked against the registry (L003).
const OBS_LABEL_CALLS: [&str; 7] = [
    "breval_obs::span!(",
    "breval_obs::span(",
    "breval_obs::counter(",
    "breval_obs::gauge_set(",
    "breval_obs::histogram_record(",
    "breval_obs::histogram_merge(",
    "breval_obs::journal_span(",
];

/// Read-side obs entry points: their literals don't *create* labels but do
/// prove a label is alive, so the stale-label sweep counts them as uses.
const OBS_LABEL_READS: [&str; 1] = ["breval_obs::span_wall_ms("];

/// L003 — every label literal passed to an obs entry point must be in the
/// registry; non-literal (dynamic) labels need a waiver explaining which
/// registry wildcard covers them.
fn check_l003(ctx: &FileContext, scanned: &ScannedFile, out: &mut Vec<Violation>) {
    if ctx.is_obs_crate || ctx.kind == FileKind::Test {
        return;
    }
    for (i, info) in scanned.lines.iter().enumerate() {
        if info.in_test || scanned.waived(i, "L003") {
            continue;
        }
        for call in OBS_LABEL_CALLS {
            for at in info.code.match_indices(call).map(|(p, _)| p) {
                match scanned.string_arg_at(i, at + call.len()) {
                    Some(label) if ctx.registry.is_registered(label) => {}
                    Some(label) => push(
                        out,
                        ctx,
                        i,
                        "L003",
                        format!(
                            "obs label \"{label}\" is not in crates/obs/labels.txt — \
                             register it to keep the manifest schema stable"
                        ),
                    ),
                    None => push(
                        out,
                        ctx,
                        i,
                        "L003",
                        format!(
                            "dynamic obs label in `{}…)` cannot be checked statically — \
                             add a registry wildcard and waive with a pragma",
                            call.trim_end_matches('(')
                        ),
                    ),
                }
            }
        }
    }
}

/// Collects every label literal passed to an obs entry point (writes *and*
/// reads, tests included — a label exercised only by a test is still alive)
/// in one scanned file, feeding the workspace-wide stale-label sweep.
pub fn collect_emitted_labels(
    scanned: &ScannedFile,
    into: &mut std::collections::BTreeSet<String>,
) {
    for (i, info) in scanned.lines.iter().enumerate() {
        for call in OBS_LABEL_CALLS.iter().chain(OBS_LABEL_READS.iter()) {
            for at in info.code.match_indices(call).map(|(p, _)| p) {
                if let Some(label) = scanned.string_arg_at(i, at + call.len()) {
                    // Span-path arguments (`a/b/c`) prove each segment alive.
                    for seg in label.split('/') {
                        into.insert(seg.to_owned());
                    }
                }
            }
        }
    }
}

/// L003 (stale direction) — every *exact* entry in `crates/obs/labels.txt`
/// must be emitted by some call site, or carry an inline
/// `# keep: <reason>` annotation (the waiver path for labels built
/// dynamically, e.g. `format!("infer_{name}")`). Wildcard entries are
/// implicitly kept — they exist precisely for dynamic suffixes. Runs only
/// on whole-workspace lints: a partial file list cannot prove staleness.
#[must_use]
pub fn check_stale_labels(
    registry_text: &str,
    registry_file: &str,
    emitted: &std::collections::BTreeSet<String>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, raw) in registry_text.lines().enumerate() {
        let (entry, comment) = match raw.split_once('#') {
            Some((e, c)) => (e.trim(), c.trim()),
            None => (raw.trim(), ""),
        };
        if entry.is_empty() || entry.ends_with('*') {
            continue;
        }
        if let Some(rest) = comment.strip_prefix("keep:") {
            let reason = rest.trim();
            if reason.is_empty() {
                out.push(Violation {
                    file: registry_file.to_owned(),
                    line: i + 1,
                    rule: "L003",
                    message: format!("label \"{entry}\" has a `# keep:` with no reason"),
                });
            }
            continue;
        }
        if !emitted.contains(entry) {
            out.push(Violation {
                file: registry_file.to_owned(),
                line: i + 1,
                rule: "L003",
                message: format!(
                    "label \"{entry}\" is registered but never emitted — remove it or \
                     annotate `# keep: <reason>` if it is built dynamically"
                ),
            });
        }
    }
    out
}

/// L004 — wall-clock access (`std::time::Instant` / `SystemTime`) is only
/// allowed inside `crates/obs`: everything else must stay deterministic.
fn check_l004(ctx: &FileContext, scanned: &ScannedFile, out: &mut Vec<Violation>) {
    if ctx.is_obs_crate || ctx.kind == FileKind::Test {
        return;
    }
    for (i, info) in scanned.lines.iter().enumerate() {
        if info.in_test || scanned.waived(i, "L004") {
            continue;
        }
        for needle in ["Instant", "SystemTime"] {
            if !token_occurrences(&info.code, needle).is_empty() {
                push(
                    out,
                    ctx,
                    i,
                    "L004",
                    format!(
                        "`{needle}` outside crates/obs breaks determinism — route timing \
                         through breval_obs spans"
                    ),
                );
            }
        }
    }
}

/// L005 — no `println!`/`eprintln!` (or `print!`/`eprint!`) in library code.
/// Binaries, examples, and the report renderers (`core/src/report.rs`) are
/// exempt — they exist to produce output.
fn check_l005(ctx: &FileContext, scanned: &ScannedFile, out: &mut Vec<Violation>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    if ctx.path.to_string_lossy().ends_with("core/src/report.rs") {
        return;
    }
    for (i, info) in scanned.lines.iter().enumerate() {
        if info.in_test || scanned.waived(i, "L005") {
            continue;
        }
        for needle in ["println!(", "eprintln!(", "print!(", "eprint!("] {
            if !token_occurrences(&info.code, needle).is_empty() {
                push(
                    out,
                    ctx,
                    i,
                    "L005",
                    format!(
                        "`{}` in a library crate — return data, let binaries print",
                        needle.trim_end_matches('(')
                    ),
                );
                break;
            }
        }
    }
}

/// L002 — a crate-root file must carry `#![forbid(unsafe_code)]`.
#[must_use]
pub fn check_l002(path: &Path, scanned: &ScannedFile) -> Vec<Violation> {
    let found = scanned
        .lines
        .iter()
        .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if found {
        Vec::new()
    } else {
        vec![Violation {
            file: path.to_string_lossy().into_owned(),
            line: 1,
            rule: "L002",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
        }]
    }
}

/// L006 — every entry in a crate's `[dependencies]` / `[dev-dependencies]` /
/// `[build-dependencies]` must resolve through `[workspace.dependencies]`
/// (i.e. carry `workspace = true`), so versions/paths are set in one place.
#[must_use]
pub fn check_l006(path: &Path, toml_text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (i, raw) in toml_text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_dep_section = matches!(
                line,
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
            );
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // `foo.workspace = true`, `foo = { workspace = true, … }`.
        let uses_workspace = line.contains("workspace = true") || line.contains("workspace=true");
        if !uses_workspace {
            out.push(Violation {
                file: path.to_string_lossy().into_owned(),
                line: i + 1,
                rule: "L006",
                message: format!(
                    "dependency `{}` bypasses [workspace.dependencies] — declare it there \
                     and use `workspace = true`",
                    line.split(['=', '.']).next().unwrap_or(line).trim()
                ),
            });
        }
    }
    out
}

/// `true` if a workflow `@ref` is an exact pin: a 40-hex commit SHA or a
/// fully qualified release tag (`v1.2.3` / `1.2.3` — at least three numeric
/// components, optional leading `v`).
fn exact_action_ref(r: &str) -> bool {
    if r.len() == 40 && r.chars().all(|c| c.is_ascii_hexdigit()) {
        return true;
    }
    let parts: Vec<&str> = r.strip_prefix('v').unwrap_or(r).split('.').collect();
    parts.len() >= 3
        && parts
            .iter()
            .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
}

/// L007 — every `uses:` in a GitHub workflow must pin an exact version:
/// a full release tag (`@v4.2.2`) or a 40-hex commit SHA. Floating majors
/// (`@v4`), branch refs (`@main`), or missing refs let the action drift
/// under the workflow silently. Local composite actions (`./…`) are exempt
/// — they version with the repository itself.
#[must_use]
pub fn check_l007(path: &Path, yaml_text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, raw) in yaml_text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let line = line.strip_prefix("- ").unwrap_or(line).trim();
        let Some(rest) = line.strip_prefix("uses:") else {
            continue;
        };
        let action = rest.trim().trim_matches(|c| c == '"' || c == '\'');
        if action.starts_with("./") {
            continue;
        }
        let pinned = action
            .rsplit_once('@')
            .is_some_and(|(_, r)| exact_action_ref(r));
        if !pinned {
            out.push(Violation {
                file: path.to_string_lossy().into_owned(),
                line: i + 1,
                rule: "L007",
                message: format!(
                    "workflow action `{action}` is not pinned to an exact version — \
                     use `@vX.Y.Z` or a 40-hex commit SHA"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn ctx<'a>(path: &'a Path, registry: &'a LabelRegistry) -> FileContext<'a> {
        FileContext {
            path,
            kind: FileKind::classify(path),
            is_obs_crate: false,
            registry,
        }
    }

    #[test]
    fn l001_flags_unwrap_but_not_unwrap_or() {
        let reg = LabelRegistry::default();
        let path = Path::new("crates/foo/src/lib.rs");
        let c = ctx(path, &reg);
        let v = check_source(&c, &scan("let x = y.unwrap();\n"));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L001");
        assert!(check_source(&c, &scan("let x = y.unwrap_or(0);\n")).is_empty());
        assert!(check_source(&c, &scan("let x = y.unwrap_or_else(|| 0);\n")).is_empty());
    }

    #[test]
    fn l001_expect_requires_message() {
        let reg = LabelRegistry::default();
        let path = Path::new("crates/foo/src/lib.rs");
        let c = ctx(path, &reg);
        assert!(check_source(&c, &scan("y.expect(\"pool is non-empty\");\n")).is_empty());
        assert_eq!(check_source(&c, &scan("y.expect(&msg);\n")).len(), 1);
        assert_eq!(check_source(&c, &scan("y.expect(\"\");\n")).len(), 1);
    }

    #[test]
    fn l001_waiver_suppresses() {
        let reg = LabelRegistry::default();
        let path = Path::new("crates/foo/src/lib.rs");
        let c = ctx(path, &reg);
        let src = "// breval-lint: allow(L001) -- prototyping, tracked in ROADMAP\ny.unwrap();\n";
        assert!(check_source(&c, &scan(src)).is_empty());
    }

    #[test]
    fn l003_checks_registry_membership() {
        let reg = LabelRegistry::parse("known_label\ndyn_prefix.*\n");
        let path = Path::new("crates/foo/src/lib.rs");
        let c = ctx(path, &reg);
        assert!(check_source(&c, &scan("breval_obs::counter(\"known_label\", 1);\n")).is_empty());
        let v = check_source(&c, &scan("breval_obs::counter(\"rogue\", 1);\n"));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L003");
        // Dynamic labels need a waiver.
        let v = check_source(&c, &scan("breval_obs::span(&format!(\"x_{n}\"));\n"));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn emitted_labels_cover_writes_reads_and_path_segments() {
        let src = "breval_obs::span!(\"alpha\");\n\
                   breval_obs::journal_span(\"beta\");\n\
                   breval_obs::histogram_merge(\"gamma\", &h);\n\
                   breval_obs::span_wall_ms(\"delta/epsilon\");\n\
                   breval_obs::counter(&format!(\"dyn_{n}\"), 1);\n";
        let mut emitted = std::collections::BTreeSet::new();
        collect_emitted_labels(&scan(src), &mut emitted);
        for label in ["alpha", "beta", "gamma", "delta", "epsilon"] {
            assert!(emitted.contains(label), "{label} not collected");
        }
        assert_eq!(emitted.len(), 5, "dynamic labels must not be collected");
    }

    #[test]
    fn stale_labels_flagged_unless_kept_or_wildcard() {
        let registry = "# header\nalive\ndead_label\n\
                        dyn_built  # keep: format!-constructed\n\
                        bad_keep  # keep:\n\
                        prefix.*\n";
        let emitted: std::collections::BTreeSet<String> =
            std::iter::once("alive".to_owned()).collect();
        let v = check_stale_labels(registry, "crates/obs/labels.txt", &emitted);
        assert_eq!(v.len(), 2, "got: {v:?}");
        assert!(v[0].message.contains("dead_label"));
        assert!(v[0].message.contains("never emitted"));
        assert_eq!(v[0].line, 3);
        assert!(v[1].message.contains("bad_keep"));
        assert!(v[1].message.contains("no reason"));
    }

    #[test]
    fn l004_and_l005() {
        let reg = LabelRegistry::default();
        let path = Path::new("crates/foo/src/lib.rs");
        let c = ctx(path, &reg);
        assert_eq!(
            check_source(&c, &scan("let t = std::time::Instant::now();\n"))[0].rule,
            "L004"
        );
        assert_eq!(
            check_source(&c, &scan("println!(\"hi\");\n"))[0].rule,
            "L005"
        );
        // println in a binary is fine.
        let bin = Path::new("crates/foo/src/main.rs");
        let cb = ctx(bin, &reg);
        assert!(check_source(&cb, &scan("println!(\"hi\");\n")).is_empty());
    }

    #[test]
    fn l002_detects_missing_forbid() {
        let ok = scan("#![forbid(unsafe_code)]\npub fn f() {}\n");
        assert!(check_l002(Path::new("crates/foo/src/lib.rs"), &ok).is_empty());
        let bad = scan("pub fn f() {}\n");
        assert_eq!(
            check_l002(Path::new("crates/foo/src/lib.rs"), &bad).len(),
            1
        );
    }

    #[test]
    fn l007_requires_exact_action_pins() {
        let path = Path::new(".github/workflows/ci.yml");
        let good = "jobs:\n  build:\n    steps:\n      - uses: actions/checkout@v4.2.2\n      \
                    - uses: dtolnay/rust-toolchain@1.95.0\n      \
                    - uses: foo/bar@0123456789abcdef0123456789abcdef01234567 # v2\n      \
                    - uses: ./.github/actions/local-setup\n      \
                    - uses: \"Swatinem/rust-cache@v2.7.8\"\n";
        assert!(check_l007(path, good).is_empty());
        let bad = "steps:\n  - uses: actions/checkout@v4\n  - uses: foo/bar@main\n  \
                   - uses: baz/qux\n  - uses: a/b@1.2\n  - uses: c/d@deadbeef\n";
        let v = check_l007(path, bad);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|x| x.rule == "L007"));
        assert!(v[0].message.contains("actions/checkout@v4"));
    }

    #[test]
    fn l006_requires_workspace_deps() {
        let good = "[dependencies]\nserde.workspace = true\nfoo = { workspace = true }\n";
        assert!(check_l006(Path::new("crates/foo/Cargo.toml"), good).is_empty());
        let bad = "[dependencies]\nserde = \"1.0\"\n\n[lib]\nname = \"x\"\n";
        let v = check_l006(Path::new("crates/foo/Cargo.toml"), bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L006");
    }
}
