//! A lightweight token-level scanner for Rust sources.
//!
//! The lint rules (see [`crate::rules`]) don't need a full parse — they need
//! to know, per line, (a) which characters are *code* (as opposed to comment
//! or string-literal content), (b) which string literals appear and where,
//! (c) whether the line sits inside test-only code (`#[cfg(test)]` items),
//! and (d) which waiver pragmas apply. This module produces exactly that
//! view with a single character-level state machine, handling nested block
//! comments, raw strings, char literals, and lifetimes.

/// A waiver pragma: `// breval-lint: allow(L001,L005) -- reason text`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule identifiers the waiver covers, e.g. `["L001"]`.
    pub rules: Vec<String>,
    /// The mandatory human-written justification.
    pub reason: String,
}

impl Waiver {
    /// `true` if this waiver suppresses `rule` (exact id match).
    #[must_use]
    pub fn covers(&self, rule: &str) -> bool {
        self.rules.iter().any(|r| r == rule)
    }
}

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// The line with comment content and string/char literal *bodies*
    /// replaced by spaces (delimiters kept), so token searches never match
    /// inside prose. Same length as the original line.
    pub code: String,
    /// String literals on this line as `(column_of_opening_quote, body)`.
    pub strings: Vec<(usize, String)>,
    /// `true` if the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Waivers that apply to this line (from a trailing pragma on the same
    /// line or a pragma-only line immediately above).
    pub waivers: Vec<Waiver>,
    /// Set when the line carries a `breval-lint:` pragma that could not be
    /// parsed (missing reason, bad syntax) — surfaced as its own violation.
    pub malformed_pragma: Option<String>,
}

/// A fully scanned source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Lines, index 0 = line 1.
    pub lines: Vec<LineInfo>,
}

impl ScannedFile {
    /// `true` if any waiver on `line` (0-based) covers `rule`.
    #[must_use]
    pub fn waived(&self, line: usize, rule: &str) -> bool {
        self.lines
            .get(line)
            .is_some_and(|l| l.waivers.iter().any(|w| w.covers(rule)))
    }

    /// The string literal that is the first argument starting at or after
    /// `(line, col)` — used to resolve `.expect(` / label arguments. Looks
    /// past whitespace on the same line, then on the next line (call sites
    /// wrapped by rustfmt).
    #[must_use]
    pub fn string_arg_at(&self, line: usize, col: usize) -> Option<&str> {
        for (offset, info) in self.lines.iter().enumerate().skip(line).take(2) {
            let start = if offset == line { col } else { 0 };
            let code = info.code.as_bytes();
            let mut i = start;
            while i < code.len() && (code[i] as char).is_whitespace() {
                i += 1;
            }
            if i >= code.len() {
                continue; // argument continues on the next line
            }
            if code[i] == b'"' {
                return info
                    .strings
                    .iter()
                    .find(|(c, _)| *c == i)
                    .map(|(_, s)| s.as_str());
            }
            return None; // first argument is not a string literal
        }
        None
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scans `text` into per-line code/string/test/waiver information.
#[must_use]
pub fn scan(text: &str) -> ScannedFile {
    let raw_lines: Vec<&str> = text.split('\n').collect();
    let mut lines: Vec<LineInfo> = Vec::with_capacity(raw_lines.len());

    let mut state = State::Normal;
    // Stack of brace depths at which a `#[cfg(test)]` item's block opened.
    let mut depth: i64 = 0;
    let mut test_regions: Vec<i64> = Vec::new();
    // A `#[cfg(test)]` attribute was seen and its item's `{` is pending.
    let mut pending_test_attr = false;

    for raw in &raw_lines {
        let chars: Vec<char> = raw.chars().collect();
        let mut code: Vec<char> = Vec::with_capacity(chars.len());
        let mut strings: Vec<(usize, String)> = Vec::new();
        let mut cur_string: Option<(usize, String)> = None;
        let mut comment_text = String::new();

        if state == State::LineComment {
            state = State::Normal;
        }
        // A string (normal or raw) continuing from the previous line: start a
        // fresh fragment at column 0 so *every* line's literal content is
        // recorded, not just the opening line's (the AST token stream needs
        // full fidelity for multi-line literals).
        if matches!(state, State::Str | State::RawStr(_)) {
            cur_string = Some((0, String::new()));
        }

        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Normal => {
                    if c == '/' && next == Some('/') {
                        state = State::LineComment;
                        comment_text = chars[i..].iter().collect();
                        code.resize(chars.len(), ' ');
                        i = chars.len();
                        continue;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    } else if c == '"' {
                        state = State::Str;
                        cur_string = Some((i, String::new()));
                        code.push('"');
                    } else if c == 'r'
                        && matches!(next, Some('"') | Some('#'))
                        && raw_str_boundary(&chars, i)
                    {
                        // Possible raw string r"…" / r#"…"# (also the tail of
                        // `br"…"` — the leading `b` lexes as ordinary code).
                        // An identifier merely *ending* in `r` (`var"x"`)
                        // must not open a raw string: see raw_str_boundary.
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            state = State::RawStr(hashes);
                            cur_string = Some((j, String::new()));
                            code.resize(j + 1, ' ');
                            i = j + 1;
                            continue;
                        }
                        code.push(c);
                    } else if c == '\'' {
                        // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                        let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                            && chars.get(i + 2) != Some(&'\'');
                        if is_lifetime {
                            code.push(c);
                        } else {
                            state = State::Char;
                            code.push('\'');
                        }
                    } else {
                        code.push(c);
                    }
                }
                State::BlockComment(d) => {
                    if c == '*' && next == Some('/') {
                        state = if d > 1 {
                            State::BlockComment(d - 1)
                        } else {
                            State::Normal
                        };
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(d + 1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    code.push(' ');
                }
                State::Str => {
                    if c == '\\' {
                        if let Some((_, s)) = cur_string.as_mut() {
                            s.push(c);
                            if let Some(n) = next {
                                s.push(n);
                            }
                        }
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                            continue;
                        }
                    } else if c == '"' {
                        state = State::Normal;
                        if let Some(done) = cur_string.take() {
                            strings.push(done);
                        }
                        code.push('"');
                    } else {
                        if let Some((_, s)) = cur_string.as_mut() {
                            s.push(c);
                        }
                        code.push(' ');
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            state = State::Normal;
                            if let Some(done) = cur_string.take() {
                                strings.push(done);
                            }
                            code.resize(code.len() + hashes as usize + 1, ' ');
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    if let Some((_, s)) = cur_string.as_mut() {
                        s.push(c);
                    }
                    code.push(' ');
                }
                State::Char => {
                    if c == '\\' {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                            continue;
                        }
                    } else if c == '\'' {
                        state = State::Normal;
                        code.push('\'');
                    } else {
                        code.push(' ');
                    }
                }
                // breval-lint: allow(L009) -- LineComment state is reset at each line start and cannot persist here
                State::LineComment => unreachable!("reset at line start"),
            }
            i += 1;
        }

        // Char literals cannot span lines; string literals (normal and raw)
        // can — keep their state, recording only the first-line fragment.
        if state == State::Char {
            state = State::Normal;
        }
        if matches!(state, State::Str | State::RawStr(_)) {
            if let Some((col, s)) = cur_string.take() {
                strings.push((col, s));
            }
        }

        let code: String = code.into_iter().collect();

        // Test-region tracking over the cleaned code.
        let trimmed = code.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            pending_test_attr = true;
        }
        let in_test_now = !test_regions.is_empty() || pending_test_attr;
        // `#[cfg(test)]` on a brace-less item (`use`, type alias) scopes to
        // that single item: consume the pending flag at its semicolon.
        if pending_test_attr
            && !trimmed.starts_with("#[")
            && !code.contains('{')
            && code.contains(';')
        {
            pending_test_attr = false;
        }
        let mut opened_at: Option<i64> = None;
        for ch in code.chars() {
            if ch == '{' {
                if pending_test_attr && opened_at.is_none() {
                    opened_at = Some(depth);
                    test_regions.push(depth);
                    pending_test_attr = false;
                }
                depth += 1;
            } else if ch == '}' {
                depth -= 1;
                if test_regions.last().is_some_and(|d| *d >= depth) {
                    test_regions.pop();
                }
            }
        }

        // Pragma parsing. A waiver must be the whole comment — `breval-lint:`
        // directly after `//` — so prose that merely *mentions* the pragma
        // syntax (docs, this comment) is never mistaken for one. Doc
        // comments (`///`, `//!`) are documentation, not directives.
        let mut waivers = Vec::new();
        let mut malformed = None;
        let after_marker = comment_text.strip_prefix("//").unwrap_or("");
        if !after_marker.starts_with('/') && !after_marker.starts_with('!') {
            if let Some(tail) = after_marker.trim_start().strip_prefix("breval-lint:") {
                match parse_pragma(tail) {
                    Ok(w) => waivers.push(w),
                    Err(e) => malformed = Some(e),
                }
            }
        }

        lines.push(LineInfo {
            code,
            strings,
            in_test: in_test_now,
            waivers,
            malformed_pragma: malformed,
        });
    }

    // A pragma on a comment-only line applies to the next line with code.
    let mut carried: Vec<Waiver> = Vec::new();
    for info in &mut lines {
        let has_code = !info.code.trim().is_empty();
        let own: Vec<Waiver> = info.waivers.clone();
        if has_code {
            info.waivers.append(&mut carried);
        } else if !own.is_empty() {
            carried.extend(own);
        }
    }

    ScannedFile { lines }
}

/// `true` if the `r` at `chars[i]` can start a raw string: the preceding
/// character must not be part of an identifier (so `var"x"` stays an ident
/// followed by a plain string), except for a lone `b` prefix (`br#"…"#`)
/// which must itself sit at an identifier boundary.
fn raw_str_boundary(chars: &[char], i: usize) -> bool {
    let ident_char = |c: char| c.is_alphanumeric() || c == '_';
    match i.checked_sub(1).map(|p| chars[p]) {
        None => true,
        Some('b') => i < 2 || !ident_char(chars[i - 2]),
        Some(prev) => !ident_char(prev),
    }
}

/// Parses the tail of a pragma after `breval-lint:`. Expected form:
/// `allow(L001,L003) -- reason text`.
fn parse_pragma(tail: &str) -> Result<Waiver, String> {
    let tail = tail.trim();
    let Some(rest) = tail.strip_prefix("allow(") else {
        return Err(format!("expected `allow(<rules>)`, got `{tail}`"));
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` in pragma".to_owned());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() || !rules.iter().all(|r| is_rule_id(r)) {
        return Err(format!("bad rule list `{}`", &rest[..close]));
    }
    let after = rest[close + 1..].trim();
    let Some(reason) = after.strip_prefix("--") else {
        return Err("waiver is missing a `-- <reason>` justification".to_owned());
    };
    let reason = reason.trim();
    if reason.len() < 10 {
        return Err("waiver reason must be a real justification (≥ 10 chars)".to_owned());
    }
    Ok(Waiver {
        rules,
        reason: reason.to_owned(),
    })
}

fn is_rule_id(s: &str) -> bool {
    s.len() == 4 && s.starts_with('L') && s[1..].chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let f = scan("let x = \"unwrap() inside\"; // .unwrap() in comment\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert_eq!(f.lines[0].strings[0].1, "unwrap() inside");
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = scan("let s = r#\"a \"quoted\" b\"#; let c = '\\''; let l: &'static str = s;\n");
        assert_eq!(f.lines[0].strings[0].1, "a \"quoted\" b");
        assert!(f.lines[0].code.contains("&'static"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scan("/* outer /* inner */ still comment .unwrap() */ let y = 1;\nlet z = 2;\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("let y"));
        assert!(f.lines[1].code.contains("let z"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test, "region must close with the mod brace");
    }

    #[test]
    fn pragma_parses_and_carries_to_next_line() {
        let src = "// breval-lint: allow(L001) -- intentionally partial fixture\nx.unwrap();\n";
        let f = scan(src);
        assert!(f.waived(1, "L001"));
        assert!(!f.waived(1, "L005"));
    }

    #[test]
    fn pragma_without_reason_is_malformed() {
        let f = scan("x.unwrap(); // breval-lint: allow(L001)\n");
        assert!(f.lines[0].malformed_pragma.is_some());
        let f2 = scan("x.unwrap(); // breval-lint: allow(L001) -- short\n");
        assert!(f2.lines[0].malformed_pragma.is_some());
    }

    #[test]
    fn multiline_string_continuation_fragments_are_recorded() {
        // Regression: only the opening line's fragment used to be kept.
        let f = scan("let s = r###\"line1 \"##\nline2\"### ;\n");
        assert_eq!(f.lines[0].strings[0].1, "line1 \"##");
        assert_eq!(f.lines[1].strings[0], (0, "line2".to_owned()));
        let f = scan("let s = \"one\\\ntwo\";\n");
        assert_eq!(f.lines[1].strings[0].1, "two");
    }

    #[test]
    fn ident_ending_in_r_does_not_open_raw_string() {
        // Regression: `var"x"` mis-lexed the trailing `r` as a raw-string
        // sigil and blanked it out of the code view.
        let f = scan("let x = var\"oops\";\n");
        assert!(f.lines[0].code.contains("var"));
        assert_eq!(f.lines[0].strings[0].1, "oops");
        // …while a real byte-raw-string prefix still lexes as one.
        let f = scan("let z = br#\"raw \"bytes\"\"#;\n");
        assert_eq!(f.lines[0].strings[0].1, "raw \"bytes\"");
    }

    #[test]
    fn deeply_nested_block_comments_blank_exactly() {
        let f = scan("/* aa /* bb /* cc */ dd */ ee */ let q = 1;\n");
        for blanked in ["aa", "bb", "cc", "dd", "ee"] {
            assert!(!f.lines[0].code.contains(blanked), "{blanked} not blanked");
        }
        assert!(f.lines[0].code.contains("let q = 1;"));
        // Multi-line nesting: depth carries across lines.
        let f = scan("/* x /* y\n z */ still */ let w = 2;\nlet v = 3;\n");
        assert!(f.lines[0].code.trim().is_empty());
        assert!(!f.lines[1].code.contains("still"));
        assert!(f.lines[1].code.contains("let w = 2;"));
        assert!(f.lines[2].code.contains("let v = 3;"));
    }

    #[test]
    fn string_arg_resolution() {
        let f = scan("foo.expect(\n    \"the invariant message\",\n);\n");
        let col = f.lines[0].code.find(".expect(").unwrap() + ".expect(".len();
        assert_eq!(f.string_arg_at(0, col), Some("the invariant message"));
    }
}
