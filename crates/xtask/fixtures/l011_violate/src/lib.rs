//! L011 fixture: the closure handed to `parallel_map` takes a lock —
//! cross-worker contention the pool is designed to avoid.

use std::sync::Mutex;

pub fn parallel_map<T>(n: usize, f: impl Fn(usize) -> T) -> Vec<T> {
    (0..n).map(f).collect()
}

pub fn fanout(m: &Mutex<u32>) -> Vec<u32> {
    parallel_map(4, |i| {
        if let Ok(mut g) = m.lock() {
            *g += i as u32;
        }
        i as u32
    })
}
