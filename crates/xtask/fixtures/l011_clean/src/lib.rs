//! L011 clean fixture: the parallel closure is a pure per-item computation
//! with no locks, spans, or interior-mutability writes.

pub fn parallel_map<T>(n: usize, f: impl Fn(usize) -> T) -> Vec<T> {
    (0..n).map(f).collect()
}

pub fn fanout(xs: &[u32]) -> Vec<u32> {
    parallel_map(xs.len(), |i| xs[i] * 2)
}
