//! L009 fixture: an `unwrap()` in the entry itself plus a literal index in
//! a transitively reachable helper — both can abort the pipeline.

pub fn run(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    first + helper(xs)
}

fn helper(xs: &[u32]) -> u32 {
    xs[0]
}
