//! L009 clean fixture: windows-bound literal indexing (in bounds by
//! construction) and an `expect` with an invariant message are allowed.

pub fn run(xs: &[u32]) -> u32 {
    let mut acc = 0;
    for w in xs.windows(2) {
        acc += w[0] + w[1];
    }
    acc + helper(xs)
}

fn helper(xs: &[u32]) -> u32 {
    xs.iter().copied().max().expect("invariant: caller passes a non-empty slice")
}
