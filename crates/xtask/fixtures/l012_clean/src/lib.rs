//! L012 clean fixture: the deprecated wrapper delegates to its
//! replacement, tests still exercise it, and a reasoned waiver covers the
//! one sanctioned compatibility caller — none of which may fire.

pub fn legacy_cones(n: usize) -> usize {
    modern_cones(n)
}

pub fn modern_cones(n: usize) -> usize {
    n * 2
}

pub fn analysis(n: usize) -> usize {
    modern_cones(n)
}

pub fn compat_entry(n: usize) -> usize {
    // breval-lint: allow(L012) -- compatibility shim kept for external callers
    legacy_cones(n)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_the_wrapper() {
        assert_eq!(super::legacy_cones(2), 4);
    }
}
