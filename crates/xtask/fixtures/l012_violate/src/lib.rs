//! L012 fixture: non-test code calls a registered deprecated wrapper.

pub fn legacy_cones(n: usize) -> usize {
    n * 2
}

pub fn analysis(n: usize) -> usize {
    legacy_cones(n)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_the_wrapper() {
        assert_eq!(super::legacy_cones(2), 4);
    }
}
