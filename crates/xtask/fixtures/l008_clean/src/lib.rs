//! L008 clean fixture: the same shape as `l008_violate`, but the map is a
//! `BTreeMap`, so iteration order is deterministic.

use std::collections::BTreeMap;

pub fn run() {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    m.insert(1, 2);
    let mut total = 0;
    for (k, v) in m.iter() {
        total += k + v;
    }
    emit(total);
}

pub fn emit(total: u32) {
    let _ = total;
}
