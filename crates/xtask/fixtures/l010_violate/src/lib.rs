//! L010 fixture: the registered kernel allocates directly (`push`) and
//! transitively (`format!` in a callee).

pub fn kernel(buf: &mut Vec<u32>) {
    buf.push(1);
    helper();
}

fn helper() {
    let _s = format!("x");
}
