//! L010 clean fixture: the kernel writes into caller-provided storage and
//! never allocates.

pub fn kernel(buf: &mut [u32]) {
    for (i, v) in buf.iter_mut().enumerate() {
        *v = i as u32;
    }
}
