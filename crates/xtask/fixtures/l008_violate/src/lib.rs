//! L008 fixture: iterates a `HashMap` in a function from which the
//! registered sink is coreachable — emitted order depends on hasher state.

use std::collections::HashMap;

pub fn run() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let mut total = 0;
    for (k, v) in m.iter() {
        total += k + v;
    }
    emit(total);
}

pub fn emit(total: u32) {
    let _ = total;
}
