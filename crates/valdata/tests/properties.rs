//! Property tests for the validation-data substrate.

use asgraph::Asn;
use proptest::prelude::*;
use valdata::rpsl::{AutNum, PolicyLine};
use valdata::ValDataConfig;

fn arb_rel(owner: u32, neighbor: u32) -> impl Strategy<Value = asgraph::Rel> {
    prop_oneof![
        Just(asgraph::Rel::P2p),
        Just(asgraph::Rel::S2s),
        Just(asgraph::Rel::P2c {
            provider: Asn(owner)
        }),
        Just(asgraph::Rel::P2c {
            provider: Asn(neighbor)
        }),
    ]
}

proptest! {
    /// RPSL objects round-trip through their text form for arbitrary policy
    /// sets.
    #[test]
    fn autnum_roundtrip(
        owner in 1u32..100_000,
        neighbors in prop::collection::btree_set(100_001u32..200_000, 0..12),
        rel_seed in any::<u64>(),
    ) {
        let neighbors: Vec<u32> = neighbors.into_iter().collect();
        let mut policies = Vec::new();
        for (i, n) in neighbors.iter().enumerate() {
            // Deterministic pseudo-choice of relationship per neighbor.
            let pick = (rel_seed.wrapping_mul(i as u64 + 1)) % 4;
            let rel = match pick {
                0 => asgraph::Rel::P2p,
                1 => asgraph::Rel::S2s,
                2 => asgraph::Rel::P2c { provider: Asn(owner) },
                _ => asgraph::Rel::P2c { provider: Asn(*n) },
            };
            policies.push(PolicyLine { neighbor: Asn(*n), rel });
        }
        let obj = AutNum {
            asn: Asn(owner),
            mntner: "MNT-TEST".into(),
            changed: "20160101".into(),
            policies,
        };
        let parsed = AutNum::parse(&obj.to_rpsl()).unwrap();
        prop_assert_eq!(parsed, obj);
    }

    /// The RPSL parser never panics on arbitrary text.
    #[test]
    fn autnum_parse_never_panics(text in "\\PC*") {
        let _ = AutNum::parse(&text);
    }

    /// Rel strategies sanity (exercise the helper; avoids dead code).
    #[test]
    fn rel_strategy_is_valid(owner in 1u32..100, neighbor in 101u32..200, rel in (1u32..2).prop_flat_map(|_| arb_rel(1, 101))) {
        let link = asgraph::Link::new(Asn(owner), Asn(neighbor));
        prop_assert!(link.is_some());
        // Every generated rel with matching endpoints is valid for its link.
        if let Some(l) = asgraph::Link::new(Asn(1), Asn(101)) {
            prop_assert!(rel.is_valid_for(l));
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Compilation is insensitive to observation order: shuffling the
    /// snapshot's observations yields the same label set.
    #[test]
    fn compile_is_order_insensitive(seed in 0u64..20, swap_seed in any::<u64>()) {
        let topo = topogen::generate(&topogen::TopologyConfig::small(seed));
        let snap = bgpsim::simulate(&topo);
        let cfg = ValDataConfig::default();
        let a = valdata::compile_communities(&topo, &snap, &cfg);

        let mut shuffled = snap.clone();
        // Deterministic Fisher–Yates with a splitmix-style stream.
        let mut s = swap_seed | 1;
        let n = shuffled.observations.len();
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let j = (s as usize) % (i + 1);
            shuffled.observations.swap(i, j);
        }
        let b = valdata::compile_communities(&topo, &shuffled, &cfg);
        // Record order *within* a link legitimately follows observation
        // order (the §4.2 "first label" policies depend on it); the
        // label *sets* must be order-insensitive.
        prop_assert_eq!(a.entries.len(), b.entries.len());
        for (link, records_a) in &a.entries {
            let mut sa: Vec<String> = records_a.iter().map(|r| format!("{r:?}")).collect();
            let mut sb: Vec<String> = b
                .entries
                .get(link)
                .map(|rs| rs.iter().map(|r| format!("{r:?}")).collect())
                .unwrap_or_default();
            sa.sort();
            sb.sort();
            prop_assert_eq!(sa, sb, "label set differs on {}", link);
        }
    }
}
