//! Directly-reported relationships: a small, unbiased, correct sample of the
//! ground truth (operators submitting through a web form / survey, the §7
//! "active collaboration" channel).

use crate::config::ValDataConfig;
use crate::set::{LabelSource, ValidationSet};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topogen::Topology;

/// Samples `cfg.direct_report_count` links uniformly and labels them with the
/// ground truth (reports are assumed accurate; they are also *unbiased* —
/// which is exactly what the community source is not).
#[must_use]
pub fn direct_reports(topology: &Topology, cfg: &ValDataConfig) -> ValidationSet {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5245_504F);
    let mut links: Vec<_> = topology.links.iter().collect();
    links.shuffle(&mut rng);
    let mut set = ValidationSet::new();
    for (link, gt) in links.into_iter().take(cfg.direct_report_count) {
        set.add(*link, gt.base, LabelSource::DirectReport);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    #[test]
    fn reports_are_correct_and_bounded() {
        let topo = topogen::generate(&TopologyConfig::small(51));
        let cfg = ValDataConfig {
            direct_report_count: 100,
            ..ValDataConfig::default()
        };
        let set = direct_reports(&topo, &cfg);
        assert_eq!(set.len(), 100);
        for (link, records) in &set.entries {
            let gt = topo.gt_rel(*link).unwrap();
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].rel, gt.base);
            assert_eq!(records[0].source, LabelSource::DirectReport);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let topo = topogen::generate(&TopologyConfig::small(51));
        let cfg = ValDataConfig::default();
        assert_eq!(direct_reports(&topo, &cfg), direct_reports(&topo, &cfg));
    }
}
