//! The validation dataset: per-link label records with provenance.

use asgraph::{Asn, Link, Rel, RelClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Where a label came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LabelSource {
    /// Decoded from published BGP-community dictionaries (the "best-effort"
    /// source all recent evaluations use).
    Communities,
    /// Extracted from RPSL `aut-num` routing-policy objects.
    Rpsl,
    /// Reported directly by an operator.
    DirectReport,
}

impl LabelSource {
    fn as_str(self) -> &'static str {
        match self {
            LabelSource::Communities => "communities",
            LabelSource::Rpsl => "rpsl",
            LabelSource::DirectReport => "direct",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "communities" => Some(LabelSource::Communities),
            "rpsl" => Some(LabelSource::Rpsl),
            "direct" => Some(LabelSource::DirectReport),
            _ => None,
        }
    }
}

/// One validation label for a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelRecord {
    /// The asserted relationship.
    pub rel: Rel,
    /// Provenance.
    pub source: LabelSource,
}

/// The compiled validation dataset: links may carry multiple (possibly
/// disagreeing) labels — §4.2's "ambiguous label treatment" operates on this.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationSet {
    /// Per-link label records in insertion order.
    pub entries: BTreeMap<Link, Vec<LabelRecord>>,
}

impl ValidationSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a label, deduplicating identical records.
    pub fn add(&mut self, link: Link, rel: Rel, source: LabelSource) {
        let records = self.entries.entry(link).or_default();
        let rec = LabelRecord { rel, source };
        if !records.contains(&rec) {
            records.push(rec);
        }
    }

    /// Merges another set into this one.
    pub fn merge(&mut self, other: ValidationSet) {
        for (link, records) in other.entries {
            for r in records {
                self.add(link, r.rel, r.source);
            }
        }
    }

    /// Number of links with at least one label.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no labels exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All labels for a link.
    #[must_use]
    pub fn labels(&self, link: Link) -> &[LabelRecord] {
        self.entries.get(&link).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Links with more than one *distinct relationship* asserted (the
    /// ambiguous entries of §4.2).
    #[must_use]
    pub fn multi_label_links(&self) -> Vec<Link> {
        self.entries
            .iter()
            .filter(|(_, records)| {
                let mut rels: Vec<Rel> = records.iter().map(|r| r.rel).collect();
                rels.dedup();
                rels.sort_by_key(|r| format!("{r}"));
                rels.dedup();
                rels.len() > 1
            })
            .map(|(l, _)| *l)
            .collect()
    }

    /// Restricts to a single source.
    #[must_use]
    pub fn only_source(&self, source: LabelSource) -> ValidationSet {
        let mut out = ValidationSet::new();
        for (link, records) in &self.entries {
            for r in records {
                if r.source == source {
                    out.add(*link, r.rel, r.source);
                }
            }
        }
        out
    }

    /// Counts labels per relationship class (first label per link).
    #[must_use]
    pub fn class_counts(&self) -> BTreeMap<RelClass, usize> {
        let mut out = BTreeMap::new();
        for records in self.entries.values() {
            if let Some(first) = records.first() {
                *out.entry(first.rel.class()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Serialises to a CAIDA-like pipe format:
    /// `a|b|rel|source` with `rel ∈ {-1 = a provider, 1 = b provider, 0 = p2p, 2 = s2s}`.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "# a|b|rel|source  (-1: a provider of b, 1: b provider of a, 0: p2p, 2: s2s)\n",
        );
        for (link, records) in &self.entries {
            for r in records {
                let code = match r.rel {
                    Rel::P2c { provider } if provider == link.a() => "-1",
                    Rel::P2c { .. } => "1",
                    Rel::P2p => "0",
                    Rel::S2s => "2",
                };
                let _ = writeln!(
                    out,
                    "{}|{}|{}|{}",
                    link.a().0,
                    link.b().0,
                    code,
                    r.source.as_str()
                );
            }
        }
        out
    }

    /// Parses the [`ValidationSet::to_text`] format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut out = ValidationSet::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').collect();
            if fields.len() != 4 {
                return Err(format!("line {}: expected 4 fields", i + 1));
            }
            let a: u32 = fields[0]
                .parse()
                .map_err(|_| format!("line {}: bad ASN", i + 1))?;
            let b: u32 = fields[1]
                .parse()
                .map_err(|_| format!("line {}: bad ASN", i + 1))?;
            let link = Link::new(Asn(a), Asn(b)).ok_or(format!("line {}: self loop", i + 1))?;
            let rel = match fields[2] {
                "-1" => Rel::P2c { provider: link.a() },
                "1" => Rel::P2c { provider: link.b() },
                "0" => Rel::P2p,
                "2" => Rel::S2s,
                other => return Err(format!("line {}: bad rel {other:?}", i + 1)),
            };
            let source =
                LabelSource::parse(fields[3]).ok_or(format!("line {}: bad source", i + 1))?;
            out.add(link, rel, source);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32) -> Link {
        Link::new(Asn(a), Asn(b)).unwrap()
    }

    #[test]
    fn add_and_dedup() {
        let mut v = ValidationSet::new();
        v.add(link(1, 2), Rel::P2p, LabelSource::Communities);
        v.add(link(1, 2), Rel::P2p, LabelSource::Communities);
        assert_eq!(v.labels(link(1, 2)).len(), 1);
        v.add(link(1, 2), Rel::P2p, LabelSource::Rpsl);
        assert_eq!(v.labels(link(1, 2)).len(), 2);
        assert!(
            v.multi_label_links().is_empty(),
            "same rel twice ≠ ambiguous"
        );
    }

    #[test]
    fn multi_label_detection() {
        let mut v = ValidationSet::new();
        v.add(link(1, 2), Rel::P2p, LabelSource::Communities);
        v.add(
            link(1, 2),
            Rel::P2c { provider: Asn(1) },
            LabelSource::Communities,
        );
        v.add(link(3, 4), Rel::P2p, LabelSource::Communities);
        assert_eq!(v.multi_label_links(), vec![link(1, 2)]);
    }

    #[test]
    fn source_filter() {
        let mut v = ValidationSet::new();
        v.add(link(1, 2), Rel::P2p, LabelSource::Communities);
        v.add(link(3, 4), Rel::P2p, LabelSource::Rpsl);
        let c = v.only_source(LabelSource::Communities);
        assert_eq!(c.len(), 1);
        assert!(!c.entries.contains_key(&link(3, 4)));
    }

    #[test]
    fn text_roundtrip() {
        let mut v = ValidationSet::new();
        v.add(
            link(1, 2),
            Rel::P2c { provider: Asn(1) },
            LabelSource::Communities,
        );
        v.add(link(1, 2), Rel::P2p, LabelSource::Rpsl);
        v.add(
            link(5, 9),
            Rel::P2c { provider: Asn(9) },
            LabelSource::DirectReport,
        );
        v.add(link(5, 7), Rel::S2s, LabelSource::Rpsl);
        let parsed = ValidationSet::parse(&v.to_text()).unwrap();
        assert_eq!(v, parsed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ValidationSet::parse("1|2|0\n").is_err());
        assert!(ValidationSet::parse("1|2|9|communities\n").is_err());
        assert!(ValidationSet::parse("1|1|0|communities\n").is_err());
        assert!(ValidationSet::parse("a|2|0|communities\n").is_err());
        assert!(ValidationSet::parse("1|2|0|psychic\n").is_err());
        assert!(ValidationSet::parse("# only comments\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn class_counts_use_first_label() {
        let mut v = ValidationSet::new();
        v.add(link(1, 2), Rel::P2p, LabelSource::Communities);
        v.add(link(1, 2), Rel::P2c { provider: Asn(1) }, LabelSource::Rpsl);
        v.add(
            link(3, 4),
            Rel::P2c { provider: Asn(3) },
            LabelSource::Communities,
        );
        let counts = v.class_counts();
        assert_eq!(counts[&RelClass::P2p], 1);
        assert_eq!(counts[&RelClass::P2c], 1);
    }
}
