//! RPSL `aut-num` routing-policy objects (RFC 2622 subset).
//!
//! WHOIS databases carry voluntarily-maintained policy records whose
//! import/export lines encode relationships:
//!
//! * provider: `import: from ASx accept ANY` (we accept everything from them),
//! * customer: `export: to ASx announce ANY` (we give them everything),
//! * peer: symmetric `accept <their-as-set>` / `announce <our-as-set>`.
//!
//! Records go stale (§3.2): a configurable share of lines still describes a
//! relationship that no longer matches the ground truth.

use crate::config::ValDataConfig;
use crate::set::{LabelSource, ValidationSet};
use asgraph::{Asn, Link, Rel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use topogen::Topology;

/// One policy line of an `aut-num` object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyLine {
    /// The neighbor the policy applies to.
    pub neighbor: Asn,
    /// The relationship the line pair encodes, from the object owner's view.
    pub rel: Rel,
}

/// A simplified `aut-num` object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutNum {
    /// The object's AS.
    pub asn: Asn,
    /// Maintainer handle.
    pub mntner: String,
    /// Last-modified date, `YYYYMMDD`.
    pub changed: String,
    /// Policy lines.
    pub policies: Vec<PolicyLine>,
}

impl AutNum {
    /// Renders the object in RPSL syntax.
    #[must_use]
    pub fn to_rpsl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "aut-num:    AS{}", self.asn.0);
        let _ = writeln!(out, "as-name:    AS{}-NET", self.asn.0);
        let _ = writeln!(out, "mnt-by:     {}", self.mntner);
        let _ = writeln!(
            out,
            "changed:    noc@as{}.example {}",
            self.asn.0, self.changed
        );
        for p in &self.policies {
            let n = p.neighbor.0;
            match p.rel {
                // Neighbor is our provider: accept ANY, announce only ours.
                Rel::P2c { provider } if provider == p.neighbor => {
                    let _ = writeln!(out, "import:     from AS{n} accept ANY");
                    let _ = writeln!(out, "export:     to AS{n} announce AS{}", self.asn.0);
                }
                // Neighbor is our customer: accept theirs, announce ANY.
                Rel::P2c { .. } => {
                    let _ = writeln!(out, "import:     from AS{n} accept AS{n}");
                    let _ = writeln!(out, "export:     to AS{n} announce ANY");
                }
                Rel::P2p => {
                    let _ = writeln!(out, "import:     from AS{n} accept AS-SET-{n}");
                    let _ = writeln!(out, "export:     to AS{n} announce AS-SET-{}", self.asn.0);
                }
                Rel::S2s => {
                    let _ = writeln!(out, "import:     from AS{n} accept ANY");
                    let _ = writeln!(out, "export:     to AS{n} announce ANY");
                }
            }
        }
        out.push_str("source:     BREVALDB\n");
        out
    }

    /// Parses one object back from RPSL text (subset grammar; tolerant of
    /// unknown attributes).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut asn: Option<Asn> = None;
        let mut mntner = String::new();
        let mut changed = String::new();
        // neighbor -> (accepts_any, announces_any, seen)
        let mut imports: Vec<(Asn, bool)> = Vec::new();
        let mut exports: Vec<(Asn, bool)> = Vec::new();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            match key.trim() {
                "aut-num" => {
                    asn = Some(
                        value
                            .parse::<Asn>()
                            .map_err(|e| format!("bad aut-num: {e}"))?,
                    );
                }
                "mnt-by" => mntner = value.to_owned(),
                "changed" => {
                    changed = value.split_whitespace().last().unwrap_or("").to_owned();
                }
                "import" => {
                    // from ASx accept (ANY | …)
                    let mut words = value.split_whitespace();
                    if words.next() != Some("from") {
                        continue;
                    }
                    let Some(neighbor) = words.next().and_then(|w| w.parse::<Asn>().ok()) else {
                        continue;
                    };
                    let accept_any = value.ends_with("ANY");
                    imports.push((neighbor, accept_any));
                }
                "export" => {
                    let mut words = value.split_whitespace();
                    if words.next() != Some("to") {
                        continue;
                    }
                    let Some(neighbor) = words.next().and_then(|w| w.parse::<Asn>().ok()) else {
                        continue;
                    };
                    let announce_any = value.ends_with("ANY");
                    exports.push((neighbor, announce_any));
                }
                _ => {}
            }
        }
        let asn = asn.ok_or("missing aut-num attribute")?;
        let mut policies = Vec::new();
        for (neighbor, accept_any) in &imports {
            let announce_any = exports
                .iter()
                .find(|(n, _)| n == neighbor)
                .map(|(_, a)| *a)
                .unwrap_or(false);
            let rel = match (accept_any, announce_any) {
                (true, true) => Rel::S2s,
                (true, false) => Rel::P2c {
                    provider: *neighbor,
                },
                (false, true) => Rel::P2c { provider: asn },
                (false, false) => Rel::P2p,
            };
            policies.push(PolicyLine {
                neighbor: *neighbor,
                rel,
            });
        }
        Ok(AutNum {
            asn,
            mntner,
            changed,
            policies,
        })
    }
}

/// Generates `aut-num` objects for a share of publishing ASes, with
/// configurable staleness.
#[must_use]
pub fn generate_autnums(topology: &Topology, cfg: &ValDataConfig) -> Vec<AutNum> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x5250_534C);
    let graph = match topology.ground_truth_graph() {
        Ok(g) => g,
        Err(_) => return Vec::new(),
    };
    let mut out = Vec::new();
    for info in topology.ases.values() {
        if !info.publishes_communities || !rng.random_bool(cfg.rpsl_coverage) {
            continue;
        }
        let asn = info.asn;
        let mut policies = Vec::new();
        let mut push = |neighbor: Asn, rel: Rel, rng: &mut ChaCha8Rng| {
            // Staleness: the line pair describes an outdated relationship.
            let rel = if rng.random_bool(cfg.rpsl_stale_prob) {
                match rel {
                    Rel::P2p => Rel::P2c { provider: asn },
                    Rel::P2c { .. } => Rel::P2p,
                    Rel::S2s => Rel::S2s,
                }
            } else {
                rel
            };
            policies.push(PolicyLine { neighbor, rel });
        };
        for p in graph.providers(asn) {
            push(p, Rel::P2c { provider: p }, &mut rng);
        }
        for c in graph.customers(asn) {
            push(c, Rel::P2c { provider: asn }, &mut rng);
        }
        for p in graph.peers(asn) {
            push(p, Rel::P2p, &mut rng);
        }
        if policies.is_empty() {
            continue;
        }
        out.push(AutNum {
            asn,
            mntner: format!("MNT-{}", info.org.0.trim_start_matches('@').to_uppercase()),
            changed: "20160115".into(), // records lag the snapshot
            policies,
        });
    }
    out
}

/// Extracts validation labels from `aut-num` objects.
#[must_use]
pub fn labels_from_autnums(objects: &[AutNum], _cfg: &ValDataConfig) -> ValidationSet {
    let mut set = ValidationSet::new();
    for obj in objects {
        for p in &obj.policies {
            if let Some(link) = Link::new(obj.asn, p.neighbor) {
                set.add(link, p.rel, LabelSource::Rpsl);
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    #[test]
    fn rpsl_roundtrip() {
        let obj = AutNum {
            asn: Asn(64_900),
            mntner: "MNT-EXAMPLE".into(),
            changed: "20160115".into(),
            policies: vec![
                PolicyLine {
                    neighbor: Asn(174),
                    rel: Rel::P2c { provider: Asn(174) },
                },
                PolicyLine {
                    neighbor: Asn(1000),
                    rel: Rel::P2c {
                        provider: Asn(64_900),
                    },
                },
                PolicyLine {
                    neighbor: Asn(2000),
                    rel: Rel::P2p,
                },
                PolicyLine {
                    neighbor: Asn(3000),
                    rel: Rel::S2s,
                },
            ],
        };
        let text = obj.to_rpsl();
        assert!(text.contains("import:     from AS174 accept ANY"));
        assert!(text.contains("export:     to AS1000 announce ANY"));
        let parsed = AutNum::parse(&text).unwrap();
        assert_eq!(parsed, obj);
    }

    #[test]
    fn parse_tolerates_unknown_attributes() {
        let text = "aut-num: AS65001\nremarks: hi there\ndescr: a network\n";
        let obj = AutNum::parse(text).unwrap();
        assert_eq!(obj.asn, Asn(65_001));
        assert!(obj.policies.is_empty());
        assert!(AutNum::parse("as-name: NO-AUTNUM\n").is_err());
    }

    #[test]
    fn generated_autnums_mostly_match_ground_truth() {
        let topo = topogen::generate(&TopologyConfig::small(41));
        let cfg = ValDataConfig {
            rpsl_stale_prob: 0.0,
            rpsl_coverage: 1.0,
            ..ValDataConfig::default()
        };
        let objects = generate_autnums(&topo, &cfg);
        assert!(!objects.is_empty());
        let labels = labels_from_autnums(&objects, &cfg);
        let mut total = 0;
        let mut correct = 0;
        for (link, records) in &labels.entries {
            let Some(gt) = topo.gt_rel(*link) else {
                continue;
            };
            for r in records {
                total += 1;
                if r.rel == gt.base {
                    correct += 1;
                }
            }
        }
        assert!(total > 100);
        assert_eq!(correct, total, "no staleness ⇒ all labels correct");
    }

    #[test]
    fn staleness_introduces_disagreements() {
        let topo = topogen::generate(&TopologyConfig::small(41));
        let cfg = ValDataConfig {
            rpsl_stale_prob: 0.5,
            rpsl_coverage: 1.0,
            ..ValDataConfig::default()
        };
        let labels = labels_from_autnums(&generate_autnums(&topo, &cfg), &cfg);
        let mut wrong = 0;
        for (link, records) in &labels.entries {
            let Some(gt) = topo.gt_rel(*link) else {
                continue;
            };
            wrong += records.iter().filter(|r| r.rel != gt.base).count();
        }
        assert!(wrong > 50, "expected many stale labels, got {wrong}");
    }

    #[test]
    fn objects_round_trip_through_text() {
        let topo = topogen::generate(&TopologyConfig::small(41));
        let cfg = ValDataConfig::default();
        for obj in generate_autnums(&topo, &cfg).iter().take(50) {
            let parsed = AutNum::parse(&obj.to_rpsl()).unwrap();
            assert_eq!(&parsed, obj);
        }
    }
}
