//! The community-based validation compiler (the Luckie et al. §5.3 method,
//! re-run by every recent evaluation — the paper's central object of study).
//!
//! For every collector-visible route, decode each community whose AS part
//! belongs to a *publishing* AS using that AS's documented scheme, locate the
//! tagging AS on the path, and label the link towards the neighbor it learned
//! the route from.

use crate::config::ValDataConfig;
use crate::set::{LabelSource, ValidationSet};
use asgraph::{asn::AS_TRANS, Asn, Link, Rel};
use bgpsim::communities::{scheme_of, AnyCommunity, IngressRel};
use bgpsim::RibSnapshot;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use topogen::Topology;

/// Deterministic per-item coin flip (order-independent).
fn det_hash(seed: u64, a: u64, b: u64) -> u64 {
    // SplitMix64 over the packed inputs.
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Base observations per parallel work item in [`compile_communities`]. The
/// effective chunk is `breval_par::input_scaled_chunk(len, OBS_CHUNK)` — a
/// function of the observation count only (never the thread count), so the
/// chunk boundaries — and with them the merged label order — are identical
/// at any thread count while the chunk count stays bounded at scale.
const OBS_CHUNK: usize = 256;

/// Shared read-only inputs of the per-observation decoding loop.
struct DecodeContext<'a> {
    topology: &'a Topology,
    cfg: &'a ValDataConfig,
    publishers: BTreeSet<Asn>,
    stale_dicts: BTreeSet<Asn>,
    two_byte_vps: BTreeSet<Asn>,
}

/// Decodes one observation's communities into `(link, rel)` labels, in the
/// order the sequential loop would have produced them.
fn decode_observation(
    ctx: &DecodeContext<'_>,
    obs: &bgpsim::RouteObservation,
    out: &mut Vec<(Link, Rel)>,
) {
    // The decoding pipeline sees the path as extracted from MRT data:
    // modern view normally, legacy view (AS_TRANS substituted) for
    // 16-bit collector sessions when the legacy pipeline is active.
    let legacy = ctx.cfg.legacy_pipeline && ctx.two_byte_vps.contains(&obs.vp);
    let mut hops: Vec<Asn> = if legacy {
        obs.path
            .iter()
            .map(|a| if a.is_four_byte() { AS_TRANS } else { *a })
            .collect()
    } else {
        obs.path.clone()
    };
    hops.dedup();

    // Communities travel on the wire unaffected by the AS_PATH encoding.
    let communities = bgpsim::communities::collector_communities(ctx.topology, &obs.path);
    for community in communities {
        let tagger = Asn(community.asn_part());
        if !ctx.publishers.contains(&tagger) {
            // 16-bit alias check: a classic community's AS part could
            // belong to a *publishing* 16-bit AS even though the tagger
            // was someone else — we only decode documented values, so
            // nothing happens here unless the value also matches, which
            // the per-AS schemes make rare.
            continue;
        }
        let scheme = scheme_of(tagger);
        let value = match community {
            AnyCommunity::Classic(c) => u32::from(c.value),
            AnyCommunity::Large(lc) => lc.local2,
        };
        let Ok(value16) = u16::try_from(value) else {
            continue;
        };
        // The 3356:666 ambiguity (§3.2): value 666 doubles as the
        // informal blackhole convention. A conservative pipeline skips
        // it even when the dictionary defines it.
        if ctx.cfg.skip_666_as_blackhole && value16 == 666 {
            continue;
        }
        let Some(mut ingress) = scheme.decode(value16) else {
            continue;
        };
        // Stale documentation: peer value documented as customer.
        if ctx.stale_dicts.contains(&tagger) && ingress == IngressRel::Peer {
            ingress = IngressRel::Customer;
        }
        // Locate the tagger on the (pipeline-visible) path and find the
        // neighbor it learned the route from.
        let Some(pos) = hops.iter().position(|h| *h == tagger) else {
            continue; // tagger hidden behind AS_TRANS in the legacy view
        };
        let Some(&neighbor) = hops.get(pos + 1) else {
            continue;
        };
        let Some(link) = Link::new(tagger, neighbor) else {
            continue;
        };
        let mut rel = match ingress {
            IngressRel::Customer => Rel::P2c { provider: tagger },
            IngressRel::Peer => Rel::P2p,
            IngressRel::Provider => Rel::P2c { provider: neighbor },
        };
        // Hybrid links: a share of observations reflects the minority
        // PoP's relationship, producing genuinely ambiguous multi-label
        // entries. Deterministic per (link, vp, origin) — which PoP a
        // route crosses varies per prefix.
        if let Some(gt) = ctx.topology.gt_rel(link) {
            if let Some(alt) = gt.hybrid_alt {
                let flip = det_hash(
                    ctx.cfg.seed ^ 0x4879,
                    u64::from(link.a().0) << 32 | u64::from(link.b().0),
                    u64::from(obs.vp.0) << 32 | u64::from(obs.origin.0),
                ) % 10_000
                    < (ctx.cfg.hybrid_minority_share * 10_000.0) as u64;
                if flip {
                    rel = alt;
                }
            }
        }
        out.push((link, rel));
    }
}

/// Compiles community-based validation labels from a RIB snapshot.
///
/// The per-observation decoding is sharded across the worker pool in
/// fixed-size chunks; merging the chunk label lists in chunk order makes
/// the resulting set byte-identical to a sequential pass at any thread
/// count (the set's per-link record order follows insertion order).
#[must_use]
pub fn compile_communities(
    topology: &Topology,
    snapshot: &RibSnapshot,
    cfg: &ValDataConfig,
) -> ValidationSet {
    let mut set = ValidationSet::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Publishers and their (possibly stale) dictionaries.
    let publishers: BTreeSet<Asn> = topology
        .ases
        .values()
        .filter(|i| i.publishes_communities)
        .map(|i| i.asn)
        .collect();
    // Stale dictionaries: the published 'peer' meaning actually decodes as
    // customer (operator updated the scheme but not the documentation).
    let stale_dicts: BTreeSet<Asn> = publishers
        .iter()
        .copied()
        .filter(|p| {
            det_hash(cfg.seed ^ 0x5741, u64::from(p.0), 0) % 10_000
                < (cfg.stale_dict_prob * 10_000.0) as u64
        })
        .collect();

    let two_byte_vps: BTreeSet<Asn> = snapshot
        .collector_peers
        .iter()
        .filter(|cp| cp.two_byte_only)
        .map(|cp| cp.asn)
        .collect();

    let ctx = DecodeContext {
        topology,
        cfg,
        publishers,
        stale_dicts,
        two_byte_vps,
    };
    let observations = &snapshot.observations;
    let obs_chunk = breval_par::input_scaled_chunk(observations.len(), OBS_CHUNK);
    let chunks = observations.len().div_ceil(obs_chunk);
    {
        // Sub-span around the parallel chunk decode: the trace separates
        // it from the sequential leak/label bookkeeping in this function.
        let _decode = breval_obs::span!("compile_observations");
        let chunk_labels = breval_par::parallel_map(chunks, |c| {
            let lo = c * obs_chunk;
            let hi = (lo + obs_chunk).min(observations.len());
            let mut out = Vec::new();
            for obs in &observations[lo..hi] {
                decode_observation(&ctx, obs, &mut out);
            }
            out
        });
        for labels in chunk_labels {
            for (link, rel) in labels {
                set.add(link, rel, LabelSource::Communities);
            }
        }
    }

    // Private-ASN route leaks: labels whose neighbor is a reserved ASN.
    // Stays sequential: the injection consumes the RNG stream in order.
    let publisher_vec: Vec<Asn> = ctx.publishers.iter().copied().collect();
    let mut injected = 0usize;
    while injected < cfg.reserved_leak_count && !publisher_vec.is_empty() {
        let tagger = publisher_vec[rng.random_range(0..publisher_vec.len())];
        let private = Asn(64_512 + rng.random_range(0..1_000u32));
        if let Some(link) = Link::new(tagger, private) {
            set.add(
                link,
                Rel::P2c { provider: tagger },
                LabelSource::Communities,
            );
            injected += 1;
        }
    }

    set
}

/// Summary census of a compiled set against a topology — used by tests and
/// the §4.2 cleaning experiment.
#[must_use]
pub fn label_census(topology: &Topology, set: &ValidationSet) -> BTreeMap<&'static str, usize> {
    let mut out: BTreeMap<&'static str, usize> = BTreeMap::new();
    out.insert("total_links", set.len());
    out.insert(
        "as_trans_links",
        set.entries
            .keys()
            .filter(|l| l.a().is_as_trans() || l.b().is_as_trans())
            .count(),
    );
    out.insert(
        "reserved_links",
        set.entries
            .keys()
            .filter(|l| l.involves_reserved() && !(l.a().is_as_trans() || l.b().is_as_trans()))
            .count(),
    );
    out.insert("multi_label_links", set.multi_label_links().len());
    let org = topology.as2org();
    out.insert(
        "sibling_links",
        set.entries
            .keys()
            .filter(|l| org.is_sibling_link(**l))
            .count(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen::TopologyConfig;

    fn world() -> (Topology, RibSnapshot) {
        let topo = topogen::generate(&TopologyConfig::small(31));
        let snap = bgpsim::simulate(&topo);
        (topo, snap)
    }

    #[test]
    fn labels_are_mostly_correct() {
        let (topo, snap) = world();
        let cfg = ValDataConfig {
            reserved_leak_count: 0,
            legacy_pipeline: false,
            stale_dict_prob: 0.0,
            hybrid_minority_share: 0.0,
            ..ValDataConfig::default()
        };
        let set = compile_communities(&topo, &snap, &cfg);
        assert!(set.len() > 100, "too few labels: {}", set.len());
        let mut correct = 0usize;
        let mut total = 0usize;
        for (link, records) in &set.entries {
            let Some(gt) = topo.gt_rel(*link) else {
                continue;
            };
            for r in records {
                total += 1;
                if gt.observable_labels().contains(&r.rel) {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 > 0.99 * total as f64,
            "only {correct}/{total} labels correct"
        );
    }

    #[test]
    fn coverage_requires_publication() {
        let (topo, snap) = world();
        let set = compile_communities(&topo, &snap, &ValDataConfig::default());
        // Every genuine (non-injected) label involves a publishing AS.
        for link in set.entries.keys() {
            if link.involves_reserved() {
                continue; // injected leak labels
            }
            let a_pub = topo.info(link.a()).map(|i| i.publishes_communities);
            let b_pub = topo.info(link.b()).map(|i| i.publishes_communities);
            assert!(
                a_pub == Some(true) || b_pub == Some(true),
                "label on {link} without publisher"
            );
        }
    }

    #[test]
    fn legacy_pipeline_produces_as_trans_labels() {
        // Plenty of 16-bit collector sessions so the artefact is guaranteed
        // even at the small test scale.
        let topo = topogen::generate(&TopologyConfig {
            vp_two_byte_share: 0.4,
            ..TopologyConfig::small(31)
        });
        let snap = bgpsim::simulate(&topo);
        let with = compile_communities(&topo, &snap, &ValDataConfig::default());
        let without = compile_communities(
            &topo,
            &snap,
            &ValDataConfig {
                legacy_pipeline: false,
                ..ValDataConfig::default()
            },
        );
        let census_with = label_census(&topo, &with);
        let census_without = label_census(&topo, &without);
        assert!(
            census_with["as_trans_links"] > 0,
            "legacy pipeline must leak AS_TRANS labels"
        );
        assert_eq!(census_without["as_trans_links"], 0);
    }

    #[test]
    fn reserved_leaks_injected() {
        let (topo, snap) = world();
        let set = compile_communities(&topo, &snap, &ValDataConfig::default());
        let census = label_census(&topo, &set);
        assert!(census["reserved_links"] >= 100);
    }

    #[test]
    fn hybrid_links_get_multiple_labels() {
        // Crank the hybrid share so enough hybrid links land on publishing
        // taggers even in the small topology.
        let topo = topogen::generate(&TopologyConfig {
            hybrid_link_share: 0.30,
            ..TopologyConfig::small(31)
        });
        let snap = bgpsim::simulate(&topo);
        let set = compile_communities(&topo, &snap, &ValDataConfig::default());
        let multi = set.multi_label_links();
        assert!(!multi.is_empty(), "expected ambiguous multi-label entries");
        // Some multi-label links must be genuine hybrids; the others are
        // AS_TRANS aliasing artefacts (two different 4-byte neighbors
        // collapsing onto AS23456) — both real phenomena.
        let hybrid_multi = multi
            .iter()
            .filter(|l| {
                topo.gt_rel(**l)
                    .map(|r| r.hybrid_alt.is_some())
                    .unwrap_or(false)
            })
            .count();
        assert!(
            hybrid_multi >= 1,
            "no hybrid link produced a multi-label entry ({multi:?})"
        );
    }

    #[test]
    fn blackhole_convention_skips_666_taggers() {
        let (topo, snap) = world();
        let base = compile_communities(&topo, &snap, &ValDataConfig::default());
        let conservative = compile_communities(
            &topo,
            &snap,
            &ValDataConfig {
                skip_666_as_blackhole: true,
                ..ValDataConfig::default()
            },
        );
        // Scheme-2 publishers tag peering with :666; the conservative
        // pipeline must lose some of their P2P labels.
        let count_p2p = |set: &ValidationSet| {
            set.entries
                .values()
                .flatten()
                .filter(|r| r.rel == asgraph::Rel::P2p)
                .count()
        };
        assert!(
            count_p2p(&conservative) < count_p2p(&base),
            "skipping :666 must cost peering labels ({} vs {})",
            count_p2p(&conservative),
            count_p2p(&base)
        );
        // And it never invents anything new.
        for link in conservative.entries.keys() {
            assert!(base.entries.contains_key(link));
        }
    }

    #[test]
    fn deterministic() {
        let (topo, snap) = world();
        let a = compile_communities(&topo, &snap, &ValDataConfig::default());
        let b = compile_communities(&topo, &snap, &ValDataConfig::default());
        assert_eq!(a, b);
    }
}
