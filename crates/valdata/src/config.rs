//! Compiler configuration.

use serde::{Deserialize, Serialize};

/// Knobs for validation-data compilation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValDataConfig {
    /// Snapshot date recorded on every label, `YYYYMMDD`.
    pub snapshot_date: String,
    /// Seed for the compiler's own randomness (staleness, leaks).
    pub seed: u64,

    // ---- community source ---------------------------------------------------
    /// If `true`, observations arriving over 16-bit-only collector sessions
    /// are decoded from the *legacy* path view (no `AS4_PATH`
    /// reconstruction), yielding labels that involve `AS_TRANS`.
    pub legacy_pipeline: bool,
    /// Number of fabricated labels involving reserved/private ASNs (models
    /// private-ASN route leaks reaching the decoding pipeline).
    pub reserved_leak_count: usize,
    /// Probability that a publisher's dictionary has one stale/wrong entry
    /// (its peer value decodes as customer) — the paper's "inaccurate
    /// validation data" case.
    pub stale_dict_prob: f64,
    /// For hybrid (per-PoP) links: probability that one observation's ingress
    /// tag reflects the minority relationship → multi-label entries.
    pub hybrid_minority_share: f64,
    /// If `true`, the compiler refuses to decode any community whose value
    /// part is `666`: the informal blackhole convention collides with some
    /// published dictionaries (the paper's 3356:666 example — Lumen uses it
    /// to tag *peering* routes). Skipping loses their coverage; decoding
    /// risks misinterpretation elsewhere. Default: decode per dictionary.
    pub skip_666_as_blackhole: bool,

    // ---- RPSL source ----------------------------------------------------------
    /// Share of community-publishing ASes that also maintain `aut-num`
    /// objects.
    pub rpsl_coverage: f64,
    /// Probability an `aut-num` policy line is stale (disagrees with ground
    /// truth).
    pub rpsl_stale_prob: f64,

    // ---- direct reports --------------------------------------------------------
    /// Number of directly-reported (unbiased, correct) link labels.
    pub direct_report_count: usize,
}

impl Default for ValDataConfig {
    fn default() -> Self {
        ValDataConfig {
            snapshot_date: "20180401".into(),
            seed: 2018,
            legacy_pipeline: true,
            reserved_leak_count: 112,
            stale_dict_prob: 0.01,
            hybrid_minority_share: 0.3,
            skip_666_as_blackhole: false,
            rpsl_coverage: 0.35,
            rpsl_stale_prob: 0.08,
            direct_report_count: 150,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_scale() {
        let c = ValDataConfig::default();
        assert_eq!(c.reserved_leak_count, 112);
        assert!(c.legacy_pipeline);
        assert_eq!(c.snapshot_date, "20180401");
    }
}
